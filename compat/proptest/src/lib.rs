//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API used by this workspace's
//! property tests:
//!
//! * the [`proptest!`] macro with `name in strategy` and `name: Type`
//!   parameter forms,
//! * range strategies (`0u16..1024`, `0u8..=255`, `-1e3f64..1e3`),
//!   tuples of strategies, [`any`], and [`collection::vec`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from real proptest: no shrinking (a failing case prints
//! its inputs via the assertion message and the case seed), and the
//! case count defaults to 64 (override with the `PROPTEST_CASES`
//! environment variable). Each test's RNG is seeded from the test name
//! so runs are deterministic.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng as _, SeedableRng as _};

/// Why a test case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw new ones.
    Reject,
    /// The property failed with a message.
    Fail(String),
}

impl TestCaseError {
    /// A failed test case, as `TestCaseError::fail("reason")` upstream.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }
}

/// Number of cases each property runs (`PROPTEST_CASES`, default 64).
#[must_use]
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test RNG, seeded from the test's name.
#[must_use]
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// String strategy from a regex-like pattern, as in real proptest
/// (`name in "[a-z]{0,16}"`). Supports the subset used in this
/// workspace: literal characters, character classes with ranges
/// (`[a-zA-Z0-9 _-]`), and `{n}` / `{n,m}` quantifiers.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        // One atom: a character class or a literal character.
        let alternatives: Vec<char> = if c == '[' {
            let mut class = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                match chars.next() {
                    Some(']') => break,
                    Some('-') if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                        let lo = prev.take().expect("range start");
                        let hi = chars.next().expect("range end");
                        class.extend((lo..=hi).filter(|ch| ch.is_ascii()));
                    }
                    Some(ch) => {
                        if let Some(p) = prev.replace(ch) {
                            class.push(p);
                        }
                    }
                    None => panic!("unterminated character class in pattern {pattern:?}"),
                }
            }
            class.extend(prev);
            class
        } else {
            vec![c]
        };
        // Optional {n} / {n,m} quantifier; both bounds inclusive, as
        // in regex semantics.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let spec: String = chars.by_ref().take_while(|&ch| ch != '}').collect();
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier min"),
                    hi.trim().parse().expect("quantifier max"),
                ),
                None => {
                    let n: usize = spec.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let count = rng.gen_range(min..=max);
        for _ in 0..count {
            let idx = rng.gen_range(0..alternatives.len());
            out.push(alternatives[idx]);
        }
    }
    out
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_std!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// Strategy over a type's whole domain. Construct with [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The whole-domain strategy for `T` (`any::<u8>()` etc.).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`], as in `proptest::collection::SizeRange`
    /// (so `2..200`, `0..=8` and bare `5` all work as the size argument).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        pub min: usize,
        /// Exclusive upper bound.
        pub end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                min: r.start,
                end: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                end: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                min: len,
                end: len + 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with length drawn from `size` and
    /// elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Strategy, TestCaseError,
    };
}

/// Defines property tests. See the crate docs for the supported forms.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut completed = 0usize;
            let mut rejected = 0usize;
            while completed < $crate::cases() {
                // An immediately-called closure so `prop_assume!` can
                // early-return out of the case body via `?`-style flow.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $crate::__proptest_bind!(rng; $($params)*);
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => completed += 1,
                    Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 10_000,
                            "prop_assume! rejected 10000 candidate inputs"
                        );
                    }
                    Err($crate::TestCaseError::Fail(reason)) => {
                        panic!("property failed: {reason}");
                    }
                }
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Internal: binds one `proptest!` parameter list entry at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $rng);
    };
    ($rng:ident; $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// `assert!` inside a property (no shrinking; panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current inputs and redraws (bounded at 10 000 rejects).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0u16..1024, f in -2.0f64..2.0, b: bool) {
            prop_assert!(x < 1024);
            prop_assert!((-2.0..2.0).contains(&f));
            let _ = b;
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn tuple_strategies(pair in (0u8..=6, 0u16..1024)) {
            prop_assert!(pair.0 <= 6 && pair.1 < 1024);
        }

        #[test]
        fn pattern_strategy(s in "[a-c]{2,5}", t in "x[0-9]") {
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert_eq!(t.len(), 2);
            prop_assert!(t.starts_with('x') && t.ends_with(|c: char| c.is_ascii_digit()));
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::RngCore as _;
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        let mut c = crate::rng_for("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(b.next_u64(), c.next_u64());
    }
}
