//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small slice of rayon's surface this workspace uses —
//! a work-stealing scoped thread pool, a deterministic parallel map,
//! and a configurable global pool — on top of `std` only, because
//! crates.io is unavailable in the build environment.
//!
//! # Design
//!
//! A [`ThreadPool`] built for `n` jobs spawns `n - 1` worker threads;
//! the thread that opens a [`scope`] is the n-th lane: while waiting
//! for its spawned jobs it *helps*, draining the same queues the
//! workers drain. That caller-helps rule is what makes the pool safe
//! at any size: a pool built with `num_threads(1)` has zero workers
//! and degenerates to strict in-order inline execution, and nested
//! scopes (a job that itself opens a scope) can never deadlock because
//! every blocked waiter is also an executor.
//!
//! Each worker owns a local deque (LIFO pop for cache locality) and
//! falls back to the shared injector queue, then to stealing from
//! sibling deques (FIFO steal). Panics inside spawned jobs are caught,
//! stored, and re-thrown from the scope caller once all jobs in the
//! scope have finished — matching rayon's contract.
//!
//! # Determinism
//!
//! [`par_map`] writes each result into the slot matching its input
//! index, so the output order never depends on thread count or
//! scheduling. Callers remain responsible for making each unit of work
//! self-contained (own RNG seed, no shared mutable state) — the
//! workspace convention documented in `DESIGN.md`.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A unit of queued work: the erased closure plus the scope it
/// belongs to (for completion accounting and panic storage).
struct Job {
    state: Arc<ScopeState>,
    run: Box<dyn FnOnce() + Send>,
}

/// Per-scope bookkeeping shared by the caller and every queued job.
struct ScopeState {
    /// Jobs spawned but not yet finished.
    pending: AtomicUsize,
    /// First panic payload from any job in this scope.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Wakes the scope caller when `pending` may have hit zero.
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

impl ScopeState {
    fn new() -> Self {
        Self {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    /// Records a job's completion, waking the scope caller on the last
    /// one.
    fn complete(&self, panic: Option<Box<dyn Any + Send>>) {
        if let Some(p) = panic {
            let mut slot = self.panic.lock().expect("panic slot poisoned");
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        // ORDERING: AcqRel — the Release half publishes this job's
        // writes to whoever observes pending hit zero; the Acquire
        // half makes every prior job's writes visible to the thread
        // that takes the count to zero and wakes the waiter.
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done_lock.lock().expect("done lock poisoned");
            self.done_cv.notify_all();
        }
    }
}

/// Queues and worker coordination shared by all threads of one pool.
struct PoolShared {
    /// Overflow / external submission queue.
    injector: Mutex<VecDeque<Job>>,
    /// One local deque per worker thread.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Parked workers wait here (paired with `injector`'s mutex).
    wake_cv: Condvar,
    shutdown: AtomicBool,
}

impl PoolShared {
    /// Pushes a job, preferring the current worker's own deque.
    fn push(&self, job: Job) {
        let here = WORKER.with(std::cell::Cell::get);
        if let Some((pool, index)) = here {
            // `&self` of an `Arc<PoolShared>` is the allocation's data
            // pointer, i.e. the same address workers registered.
            if pool == std::ptr::from_ref(self) as usize {
                self.locals[index]
                    .lock()
                    .expect("local deque poisoned")
                    .push_back(job);
                self.wake_cv.notify_all();
                return;
            }
        }
        self.injector
            .lock()
            .expect("injector poisoned")
            .push_back(job);
        self.wake_cv.notify_all();
    }

    /// Takes one job from anywhere: injector first (fairness for
    /// externally submitted work), then steal the oldest job from a
    /// sibling deque.
    fn pop_any(&self, skip_local: Option<usize>) -> Option<Job> {
        if let Some(job) = self.injector.lock().expect("injector poisoned").pop_front() {
            return Some(job);
        }
        for (i, local) in self.locals.iter().enumerate() {
            if Some(i) == skip_local {
                continue;
            }
            if let Some(job) = local.lock().expect("local deque poisoned").pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Takes the oldest queued job belonging to `state`, scanning the
    /// injector and every local deque. Used by scope waiters, which
    /// only help with their own scope's jobs — helping with arbitrary
    /// work would charge unrelated jobs' runtime to the waiter (and
    /// nest scopes without bound).
    fn pop_scoped(&self, state: &Arc<ScopeState>) -> Option<Job> {
        let take = |queue: &Mutex<VecDeque<Job>>| {
            let mut q = queue.lock().expect("job queue poisoned");
            q.iter()
                .position(|job| Arc::ptr_eq(&job.state, state))
                .and_then(|i| q.remove(i))
        };
        take(&self.injector).or_else(|| self.locals.iter().find_map(take))
    }
}

thread_local! {
    /// Identity of the current thread within a pool: the pool's shared
    /// state pointer plus this worker's index, if the thread is a pool
    /// worker.
    static WORKER: std::cell::Cell<Option<(usize, usize)>> = const { std::cell::Cell::new(None) };
}

/// Runs one job, catching panics and reporting completion.
fn run_job(job: Job) {
    let Job { state, run } = job;
    let result = catch_unwind(AssertUnwindSafe(run));
    state.complete(result.err());
}

fn worker_loop(shared: &Arc<PoolShared>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(shared) as usize, index))));
    loop {
        // Own deque first: newest job (LIFO) for locality.
        let job = shared.locals[index]
            .lock()
            .expect("local deque poisoned")
            .pop_back();
        if let Some(job) = job {
            run_job(job);
            continue;
        }
        if let Some(job) = shared.pop_any(Some(index)) {
            run_job(job);
            continue;
        }
        // ORDERING: Acquire pairs with the Release store in
        // `ThreadPool::drop`; it orders the flag read before the
        // worker exits so no queued job published before shutdown is
        // missed.
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Park until new work is pushed; the timeout is belt and
        // braces against a missed wakeup, not a correctness
        // requirement.
        let guard = shared.injector.lock().expect("injector poisoned");
        // ORDERING: Acquire pairs with the Release store in
        // `ThreadPool::drop`, re-checked under the injector lock so a
        // shutdown signalled between the first check and parking is
        // not slept through.
        if guard.is_empty() && !shared.shutdown.load(Ordering::Acquire) {
            let _ = shared
                .wake_cv
                .wait_timeout(guard, Duration::from_millis(10))
                .expect("injector poisoned");
        }
    }
}

/// A work-stealing thread pool with scoped spawning.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    num_threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.num_threads)
            .finish_non_exhaustive()
    }
}

impl ThreadPool {
    /// Builds a pool that executes work on `num_threads` lanes: the
    /// scope caller plus `num_threads - 1` background workers.
    ///
    /// `num_threads == 1` spawns no threads at all and runs every job
    /// inline, in spawn order, on the caller.
    #[must_use]
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        let workers = num_threads - 1;
        let shared = Arc::new(PoolShared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            wake_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rayon-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            num_threads,
        }
    }

    /// Number of execution lanes (workers + the helping caller).
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Creates a scope in which borrowed work can be spawned onto the
    /// pool. Blocks (helping with queued work) until every job spawned
    /// in the scope has finished; re-throws the first job panic.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::clone(&state),
            _env: std::marker::PhantomData,
        };
        // Run the scope body. If it panics we must still wait for
        // already-spawned jobs — they borrow from the caller's stack.
        let body = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait_scope(&state);
        let job_panic = state.panic.lock().expect("panic slot poisoned").take();
        match body {
            Err(p) => resume_unwind(p),
            Ok(r) => {
                if let Some(p) = job_panic {
                    resume_unwind(p);
                }
                r
            }
        }
    }

    /// Caller-helps wait: drain this scope's queued jobs until its
    /// count is zero. Every queued job of the scope is reachable from
    /// here (injector or any local deque), so the wait makes progress
    /// even on a pool with no worker threads; jobs of *other* scopes
    /// are left to the workers so a waiter's wall clock measures its
    /// own scope.
    fn wait_scope(&self, state: &Arc<ScopeState>) {
        loop {
            // ORDERING: Acquire pairs with the AcqRel fetch_sub in
            // `ScopeState::complete`; seeing zero here makes every
            // completed job's writes visible to the waiter.
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(job) = self.shared.pop_scoped(state) {
                run_job(job);
                continue;
            }
            // Nothing queued but jobs still in flight on workers.
            let guard = state.done_lock.lock().expect("done lock poisoned");
            // ORDERING: Acquire, same pairing as above — re-checked
            // under done_lock so a completion signalled between the
            // first check and the wait cannot be slept through.
            if state.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            let _ = state
                .done_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("done lock poisoned");
        }
    }

    /// Deterministic parallel map: applies `f` to every item, writing
    /// each result into the slot matching its input index. Output is
    /// identical for any thread count.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        let f = &f;
        self.scope(|s| {
            for (slot, item) in slots.iter_mut().zip(items) {
                s.spawn(move |_| {
                    *slot = Some(f(item));
                });
            }
        });
        slots
            .into_iter()
            .map(|r| r.expect("par_map job completed without a result"))
            .collect()
    }

    /// Chunked parallel map over a slice: `f` sees `(start_index,
    /// chunk)` and returns one result per element. Chunk boundaries
    /// depend only on `chunk_size`, never on thread count, so results
    /// are deterministic.
    pub fn par_chunk_map<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> Vec<R> + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let chunks: Vec<(usize, &[T])> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, c)| (i * chunk_size, c))
            .collect();
        let nested = self.par_map(chunks, |(start, chunk)| {
            let out = f(start, chunk);
            assert_eq!(
                out.len(),
                chunk.len(),
                "par_chunk_map closure must return one result per element"
            );
            out
        });
        nested.into_iter().flatten().collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // ORDERING: Release pairs with the Acquire loads in
        // `worker_loop`; everything enqueued before shutdown is
        // visible to workers that observe the flag.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of execution lanes (0 = auto).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Infallible here (kept `Result` for API
    /// compatibility with the real crate).
    ///
    /// # Errors
    ///
    /// Never fails in this stand-in.
    pub fn build(self) -> Result<ThreadPool, std::convert::Infallible> {
        Ok(ThreadPool::new(
            self.num_threads.unwrap_or_else(default_num_threads),
        ))
    }
}

/// A scope handle: lets jobs borrow from the enclosing stack frame.
///
/// `'env` is invariant (crossbeam-style) so a scope can never be
/// smuggled into a longer-lived context.
pub struct Scope<'env> {
    shared: Arc<PoolShared>,
    state: Arc<ScopeState>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

impl<'env> Scope<'env> {
    /// Spawns a job that may borrow from `'env`. The job may itself
    /// spawn further jobs via the `&Scope` argument.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        // ORDERING: AcqRel — the increment is published before the
        // job is pushed (Release), and pairs with the Acquire loads
        // in `wait_scope` so the waiter can never observe the queue
        // push without the count.
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let child = Scope {
            shared: Arc::clone(&self.shared),
            state: Arc::clone(&self.state),
            _env: std::marker::PhantomData,
        };
        let run: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            // Hand the job its own Scope handle over the same state so
            // nested spawns join the same completion count.
            f(&child);
        });
        // SAFETY: `ThreadPool::scope` does not return until
        // `state.pending` reaches zero, i.e. until this closure (and
        // every nested spawn, each counted in the same state) has run
        // to completion. All `'env` borrows therefore strictly outlive
        // the closure's execution, so erasing the lifetime to
        // `'static` for queue storage cannot produce a dangling
        // reference.
        let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(run) };
        self.shared.push(Job {
            state: Arc::clone(&self.state),
            run,
        });
    }
}

/// Default lane count: `PS3_JOBS` if set and valid, else available
/// parallelism, else 1.
#[must_use]
pub fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var("PS3_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The global pool, replaceable at runtime so a process can switch
/// between serial and parallel execution (the determinism tests do).
static GLOBAL: Mutex<Option<Arc<ThreadPool>>> = Mutex::new(None);

/// Returns the global pool, creating it with [`default_num_threads`]
/// lanes on first use.
#[must_use]
pub fn global() -> Arc<ThreadPool> {
    let mut guard = GLOBAL.lock().expect("global pool poisoned");
    Arc::clone(guard.get_or_insert_with(|| Arc::new(ThreadPool::new(default_num_threads()))))
}

/// Replaces the global pool with one of `num_threads` lanes
/// (0 = auto). In-flight scopes on the old pool finish normally — they
/// hold their own `Arc`.
pub fn configure_global(num_threads: usize) {
    let n = if num_threads == 0 {
        default_num_threads()
    } else {
        num_threads
    };
    let mut guard = GLOBAL.lock().expect("global pool poisoned");
    *guard = Some(Arc::new(ThreadPool::new(n)));
}

/// Lane count of the global pool.
#[must_use]
pub fn current_num_threads() -> usize {
    global().current_num_threads()
}

/// Scoped spawning on the global pool.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    global().scope(f)
}

/// [`ThreadPool::par_map`] on the global pool.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    global().par_map(items, f)
}

/// [`ThreadPool::par_chunk_map`] on the global pool.
pub fn par_chunk_map<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> Vec<R> + Sync,
{
    global().par_chunk_map(items, chunk_size, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            for i in 0..8 {
                let order = &order;
                s.spawn(move |_| order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn par_map_preserves_input_order() {
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let items: Vec<u64> = (0..100).collect();
            let out = pool.par_map(items, |x| x * x);
            let expected: Vec<u64> = (0..100).map(|x| x * x).collect();
            assert_eq!(out, expected, "threads {threads}");
        }
    }

    #[test]
    fn par_map_empty_input() {
        let pool = ThreadPool::new(4);
        let out: Vec<u32> = pool.par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_chunk_map_matches_serial() {
        let pool = ThreadPool::new(3);
        let items: Vec<u64> = (0..37).collect();
        let out = pool.par_chunk_map(&items, 5, |start, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(i, x)| x + (start + i) as u64)
                .collect()
        });
        let expected: Vec<u64> = (0..37).map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn panic_in_job_propagates_after_all_jobs_finish() {
        let pool = ThreadPool::new(4);
        let done = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..16 {
                    let done = &done;
                    s.spawn(move |_| {
                        if i == 7 {
                            panic!("job seven exploded");
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = result.expect_err("scope should rethrow the job panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(msg.contains("job seven"), "payload {msg:?}");
        // All non-panicking jobs ran to completion before the rethrow.
        assert_eq!(done.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn panic_propagates_on_single_thread_pool_too() {
        let pool = ThreadPool::new(1);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| s.spawn(|_| panic!("inline boom")));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        for threads in [1, 2, 4] {
            let pool = ThreadPool::new(threads);
            let total = AtomicU64::new(0);
            pool.scope(|s| {
                for _ in 0..4 {
                    let total = &total;
                    let pool = &pool;
                    s.spawn(move |_| {
                        // A nested scope opened from inside a job.
                        pool.scope(|inner| {
                            for _ in 0..4 {
                                inner.spawn(|_| {
                                    total.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    });
                }
            });
            assert_eq!(total.load(Ordering::Relaxed), 16, "threads {threads}");
        }
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let pool = ThreadPool::new(2);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            let total = &total;
            s.spawn(move |s| {
                s.spawn(move |_| {
                    total.fetch_add(1, Ordering::Relaxed);
                });
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn stress_many_small_jobs() {
        let pool = ThreadPool::new(8);
        let total = AtomicU64::new(0);
        pool.scope(|s| {
            for i in 0..10_000u64 {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 10_000 * 9_999 / 2);
    }

    #[test]
    fn global_pool_is_reconfigurable() {
        configure_global(3);
        assert_eq!(current_num_threads(), 3);
        let out = par_map(vec![1u32, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
        configure_global(1);
        assert_eq!(current_num_threads(), 1);
        let out = par_map(vec![1u32, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn scope_body_panic_still_waits_for_jobs() {
        let pool = ThreadPool::new(4);
        let done = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..8 {
                    let done = &done;
                    s.spawn(move |_| {
                        std::thread::sleep(Duration::from_millis(1));
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("body panic");
            });
        }));
        assert!(result.is_err());
        assert_eq!(done.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn builder_defaults_and_explicit() {
        let pool = ThreadPoolBuilder::new().num_threads(5).build().unwrap();
        assert_eq!(pool.current_num_threads(), 5);
        let auto = ThreadPoolBuilder::new().build().unwrap();
        assert!(auto.current_num_threads() >= 1);
    }
}
