//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment has no crates.io access, so this crate
//! provides the pieces of `rand` the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256\*\*
//! seeded via SplitMix64 — deterministic per seed, statistically solid
//! for simulation and tests, *not* cryptographic.
//!
//! Streams differ from the real `StdRng` (ChaCha12), so absolute noise
//! values change across the swap; all workspace tests assert on
//! statistics or determinism, never on specific draws.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is
/// provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from the half-open range `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from the closed range `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = widening_reduce(rng.next_u64(), span);
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = widening_reduce(rng.next_u64(), span);
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a uniform `u64` onto `[0, span)` with a widening multiply
/// (Lemire reduction without the rejection step; the bias is ≤ 2⁻⁶⁴
/// per bucket, irrelevant for simulation work).
fn widening_reduce(word: u64, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u128::from(u64::MAX) + 1);
    (u128::from(word) * span) >> 64
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                low + (high - low) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() as f64 / u64::MAX as f64) as $t;
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (uniform over the type's
    /// domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* (not the real
    /// `rand` `StdRng`, see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix_stream(seed: u64) -> [u64; 4] {
            let mut x = seed;
            core::array::from_fn(|_| {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            })
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self {
                s: Self::splitmix_stream(seed),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling helpers.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(13);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
