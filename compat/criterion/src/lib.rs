//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`Throughput`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`] — backed
//! by a simple wall-clock harness: each benchmark runs a short warm-up,
//! then a fixed measurement window, and prints mean time per iteration
//! (plus throughput when configured). There is no statistical analysis,
//! HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measurement_time: Duration,
    /// (iterations, elapsed) of the measurement window.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine`, running it repeatedly for the measurement
    /// window after a short warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate.
        let warmup_end = Instant::now() + Duration::from_millis(50);
        let mut warmup_iters: u64 = 0;
        while Instant::now() < warmup_end {
            black_box(routine());
            warmup_iters += 1;
        }
        // Measure in batches so the clock is not read too often for
        // nanosecond-scale routines.
        let batch = warmup_iters.clamp(1, 1 << 20);
        let mut iters: u64 = 0;
        let start = Instant::now();
        let deadline = start + self.measurement_time;
        while Instant::now() < deadline {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.result = Some((iters, start.elapsed()));
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; command-line configuration is
    /// not implemented.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the measurement window.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Display,
        routine: F,
    ) -> &mut Self {
        let window = self.measurement_time;
        run_one(&name.to_string(), window, None, routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            measurement_time,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (this harness is time-bounded,
    /// not sample-bounded).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Overrides the group's measurement window. The stand-in harness
    /// caps it at one second per benchmark to keep `cargo bench` quick.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration.min(Duration::from_secs(1));
        self
    }

    /// Sets the throughput annotation used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        routine: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.measurement_time, self.throughput, routine);
        self
    }

    /// Runs one benchmark that receives an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.measurement_time, self.throughput, |b| {
            routine(b, input);
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut routine: F,
) {
    let mut bencher = Bencher {
        measurement_time,
        result: None,
    };
    routine(&mut bencher);
    match bencher.result {
        Some((iters, elapsed)) if iters > 0 => {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!(", {:.3e} elem/s", n as f64 / per_iter)
                }
                Some(Throughput::Bytes(n)) => {
                    format!(", {:.3} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
                }
                None => String::new(),
            };
            println!("bench {label}: {:.1} ns/iter{rate}", per_iter * 1e9);
        }
        _ => println!("bench {label}: no measurement (b.iter never called)"),
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default().measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut ran = false;
        fast_criterion().bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = fast_criterion();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .measurement_time(Duration::from_millis(5))
            .throughput(Throughput::Bytes(128));
        g.bench_function("one", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
