//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no access to
//! crates.io, so the handful of `parking_lot` primitives the workspace
//! uses are provided here on top of `std::sync`. The semantic
//! differences that matter to callers are preserved:
//!
//! * [`Mutex::lock`] returns the guard directly (no poisoning — a
//!   panicked holder does not poison the lock for everyone else).
//! * [`Condvar::wait_for`] takes the guard by `&mut` and returns a
//!   [`WaitTimeoutResult`] rather than consuming and re-yielding the
//!   guard.
//!
//! Fairness, inline-ness and micro-contention behaviour of the real
//! crate are *not* reproduced; none of the workspace code depends on
//! them.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning `lock()` like
/// `parking_lot::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed — the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// Internally holds an `Option` so [`Condvar::wait_for`] can move the
/// underlying std guard out and back while blocking.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with `parking_lot`'s `&mut`-guard API.
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: StdCondvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!r.timed_out(), "missed notification");
        }
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
