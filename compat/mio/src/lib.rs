//! Offline stand-in for the `mio` crate.
//!
//! Implements the small slice of mio's surface the stream daemon's
//! event loop uses — [`Poll`] / [`Registry`] / [`Events`] / [`Token`]
//! / [`Interest`] / [`Waker`] — on top of `std` only, because
//! crates.io is unavailable in the build environment.
//!
//! # Design
//!
//! Readiness notification goes through one of two backends, both in
//! [`sys`]:
//!
//! * **epoll** (Linux, the default there): one `epoll` instance per
//!   [`Poll`]; sockets register level-triggered so the caller never
//!   has to drain-to-`WouldBlock` to stay correct, and the [`Waker`]'s
//!   `eventfd` registers edge-triggered so its counter never needs
//!   reading.
//! * **poll(2)** (every other Unix; also compiled and tested on Linux
//!   so the fallback cannot rot): the [`Registry`] keeps a mutexed
//!   fd → (token, interest) table, each `select` snapshots it into a
//!   `pollfd` array, and the waker is a classic self-pipe whose read
//!   end is drained by the selector before the event is reported.
//!
//! Error (`EPOLLERR`) and hang-up (`EPOLLHUP`/`POLLHUP`) conditions
//! are folded into readable *and* writable readiness, mio-style, so a
//! connection state machine discovers the failure from the `io::Error`
//! of its next read or write rather than needing a third code path.
//!
//! This is the **only crate in the workspace allowed `unsafe`**: the
//! raw `epoll`/`poll`/`eventfd`/`pipe` and socket-option calls live
//! here (see [`net`]), every block carries a `// SAFETY:` comment, and
//! `ps3-lint`'s `forbid-unsafe` rule holds every other crate to
//! `#![forbid(unsafe_code)]`.

pub mod net;
pub mod sys;

use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Identifies a registered event source; returned in every [`Event`].
/// An opaque `usize` the caller maps back to its own connection table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both (`|` them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness (incoming data, accepts, peer close).
    pub const READABLE: Interest = Interest(0b01);
    /// Interest in write readiness (send buffer has room again).
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests (same as `|`, usable in `const`).
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether this interest includes read readiness.
    #[must_use]
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Whether this interest includes write readiness.
    #[must_use]
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl core::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness event delivered by [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub(crate) token: usize,
    pub(crate) readable: bool,
    pub(crate) writable: bool,
    pub(crate) error: bool,
    pub(crate) read_closed: bool,
}

impl Event {
    /// The token the source was registered with.
    #[must_use]
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// Read readiness (includes errors, hang-ups and peer close, so a
    /// state machine discovers failures from its next read).
    #[must_use]
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Write readiness (includes errors and hang-ups).
    #[must_use]
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    /// An error condition was signalled on the source.
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.error
    }

    /// The peer closed its write half (or the connection hung up).
    #[must_use]
    pub fn is_read_closed(&self) -> bool {
        self.read_closed
    }
}

/// Buffer of events filled by [`Poll::poll`]; reused across calls.
#[derive(Debug)]
pub struct Events {
    pub(crate) inner: Vec<Event>,
    pub(crate) capacity: usize,
}

impl Events {
    /// An event buffer that returns at most `capacity` events per poll.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity),
            capacity: capacity.max(1),
        }
    }

    /// Iterates the events from the last poll.
    pub fn iter(&self) -> core::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Whether the last poll returned no events (timeout).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Discards buffered events (also done by the next poll).
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = core::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Registration handle: maps event sources to tokens on the backend
/// selector. Cloned-by-`Arc` inside [`Waker`]; obtained from
/// [`Poll::registry`].
#[derive(Debug)]
pub struct Registry {
    selector: Arc<sys::Selector>,
}

impl Registry {
    /// Starts delivering `interest` readiness for `source` under
    /// `token`.
    ///
    /// # Errors
    ///
    /// Backend registration failures (bad fd, duplicate registration).
    pub fn register<S: Source + ?Sized>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.selector.register(source.raw_fd(), token, interest)
    }

    /// Changes the interest set of an already-registered source.
    ///
    /// # Errors
    ///
    /// Backend failures (source was never registered).
    pub fn reregister<S: Source + ?Sized>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.selector.reregister(source.raw_fd(), token, interest)
    }

    /// Stops delivering events for `source`.
    ///
    /// # Errors
    ///
    /// Backend failures (source was never registered).
    pub fn deregister<S: Source + ?Sized>(&self, source: &S) -> io::Result<()> {
        self.selector.deregister(source.raw_fd())
    }
}

/// An event source that can be registered: anything with a raw fd.
pub trait Source {
    /// The OS handle the backend watches.
    fn raw_fd(&self) -> sys::RawSocketFd;
}

#[cfg(unix)]
impl<T: std::os::fd::AsRawFd> Source for T {
    fn raw_fd(&self) -> sys::RawSocketFd {
        self.as_raw_fd()
    }
}

/// The readiness selector: wraps one backend instance.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a selector on the platform's default backend (epoll on
    /// Linux, poll(2) elsewhere).
    ///
    /// # Errors
    ///
    /// Backend creation failures (fd exhaustion).
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            registry: Registry {
                selector: Arc::new(sys::Selector::new()?),
            },
        })
    }

    /// The registration handle for this selector.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one event is ready, the timeout elapses
    /// (`None` = forever, `Some(ZERO)` = non-blocking check), or a
    /// [`Waker`] fires; fills `events` with what became ready.
    ///
    /// # Errors
    ///
    /// Backend wait failures. `EINTR` is retried internally.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        self.registry.selector.select(events, timeout)
    }
}

/// Cross-thread wakeup for a [`Poll`]: `wake` from any thread makes
/// the next (or current) `poll` return with an event carrying the
/// waker's token. `eventfd` on the epoll backend, a self-pipe on the
/// poll(2) backend.
#[derive(Debug)]
pub struct Waker {
    selector: Arc<sys::Selector>,
    inner: sys::WakerFd,
}

impl Waker {
    /// Creates a waker delivering `token` through `registry`'s
    /// selector.
    ///
    /// # Errors
    ///
    /// fd-pair creation or registration failures.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let inner = sys::WakerFd::new()?;
        registry.selector.register_waker(&inner, token)?;
        Ok(Waker {
            selector: Arc::clone(&registry.selector),
            inner,
        })
    }

    /// Wakes the associated [`Poll`]. Cheap and non-blocking; multiple
    /// wakes before the next poll coalesce into one event.
    ///
    /// # Errors
    ///
    /// Write failures on the wakeup fd (never `WouldBlock`; a full
    /// pipe already implies a pending wakeup and reports success).
    pub fn wake(&self) -> io::Result<()> {
        self.inner.wake()
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        let _ = self.selector.deregister_waker(&self.inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn ready_tokens(events: &Events) -> Vec<usize> {
        let mut t: Vec<usize> = events.iter().map(|e| e.token().0).collect();
        t.sort_unstable();
        t
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let mut poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poll.registry()
            .register(&listener, Token(7), Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty(), "no connection yet");

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(ready_tokens(&events), vec![7]);
        assert!(events.iter().next().unwrap().is_readable());
    }

    #[test]
    fn stream_read_and_write_readiness() {
        let mut poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();
        poll.registry()
            .register(&served, Token(1), Interest::READABLE | Interest::WRITABLE)
            .unwrap();

        // A fresh connection is writable but not readable.
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = *events.iter().next().unwrap();
        assert!(ev.is_writable() && !ev.is_readable());

        // Narrow to READABLE: data from the peer must surface it.
        poll.registry()
            .reregister(&served, Token(1), Interest::READABLE)
            .unwrap();
        client.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.is_readable() && e.token().0 == 1));
        let mut buf = [0u8; 4];
        served.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // Deregistered sources go quiet.
        poll.registry().deregister(&served).unwrap();
        client.write_all(b"more").unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn peer_close_surfaces_as_readable() {
        let mut poll = Poll::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (served, _) = listener.accept().unwrap();
        served.set_nonblocking(true).unwrap();
        poll.registry()
            .register(&served, Token(3), Interest::READABLE)
            .unwrap();
        drop(client);
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token().0 == 3).unwrap();
        assert!(ev.is_readable(), "EOF must be readable so reads see it");
    }

    #[test]
    fn waker_wakes_a_blocked_poll_from_another_thread() {
        let mut poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new(poll.registry(), Token(99)).unwrap());
        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            remote.wake().unwrap();
        });
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        handle.join().unwrap();
        assert_eq!(ready_tokens(&events), vec![99]);

        // Coalesced wakes deliver one event, and the selector is quiet
        // again afterwards.
        waker.wake().unwrap();
        waker.wake().unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(ready_tokens(&events), vec![99]);
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "wakeups must not repeat");
    }

    #[test]
    fn interest_combinators() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }
}
