//! The portable POSIX backend: `poll(2)` over a registration table.
//!
//! The selector keeps a mutexed `fd → (token, interest)` table; each
//! `select` snapshots it into a `pollfd` array (so registrations from
//! other threads never block behind the kernel wait), calls `poll`,
//! and maps revents back to tokens. `poll(2)` is level-triggered with
//! no self-wakeup primitive, so the waker is a classic **self-pipe**:
//! `wake()` writes one byte to the write end, and the selector drains
//! the read end before reporting the waker token — otherwise the
//! level-triggered pipe would report forever.
//!
//! Compiled (and unit-tested) on Linux as well, even though the epoll
//! backend is the default there, so this fallback stays honest.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

use crate::{Event, Events, Interest, Token};

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

const F_SETFD: i32 = 2;
const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const FD_CLOEXEC: i32 = 1;
#[cfg(target_os = "linux")]
const O_NONBLOCK: i32 = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: i32 = 0x4;

/// `struct pollfd`: fd, requested events, returned events.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: core::ffi::c_ulong, timeout: i32) -> i32;
    fn pipe(fds: *mut i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn read(fd: i32, buf: *mut core::ffi::c_void, count: usize) -> isize;
    fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
}

/// One registered source.
#[derive(Clone, Copy)]
struct Entry {
    fd: RawFd,
    token: Token,
    interest: Interest,
    /// Self-pipe read ends get drained before their event is reported.
    waker: bool,
}

/// The poll(2) selector.
#[derive(Debug, Default)]
pub struct Selector {
    entries: Mutex<Vec<Entry>>,
}

impl Selector {
    /// Creates the selector (no kernel object; just the table).
    ///
    /// # Errors
    ///
    /// Never fails; `io::Result` matches the epoll backend.
    pub fn new() -> io::Result<Selector> {
        Ok(Selector::default())
    }

    fn add(&self, entry: Entry) -> io::Result<()> {
        let mut entries = self.entries.lock().unwrap();
        if entries.iter().any(|e| e.fd == entry.fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("fd {} is already registered", entry.fd),
            ));
        }
        entries.push(entry);
        Ok(())
    }

    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.add(Entry {
            fd,
            token,
            interest,
            waker: false,
        })
    }

    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut entries = self.entries.lock().unwrap();
        match entries.iter_mut().find(|e| e.fd == fd) {
            Some(e) => {
                e.token = token;
                e.interest = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} was never registered"),
            )),
        }
    }

    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut entries = self.entries.lock().unwrap();
        let before = entries.len();
        entries.retain(|e| e.fd != fd);
        if entries.len() < before {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} was never registered"),
            ))
        }
    }

    pub fn register_waker(&self, waker: &WakerFd, token: Token) -> io::Result<()> {
        self.add(Entry {
            fd: waker.rx.as_raw_fd(),
            token,
            interest: Interest::READABLE,
            waker: true,
        })
    }

    pub fn deregister_waker(&self, waker: &WakerFd) -> io::Result<()> {
        self.deregister(waker.rx.as_raw_fd())
    }

    pub fn select(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        let snapshot: Vec<Entry> = self.entries.lock().unwrap().clone();
        let mut fds: Vec<PollFd> = snapshot
            .iter()
            .map(|e| {
                let mut bits = 0i16;
                if e.interest.is_readable() {
                    bits |= POLLIN;
                }
                if e.interest.is_writable() {
                    bits |= POLLOUT;
                }
                PollFd {
                    fd: e.fd,
                    events: bits,
                    revents: 0,
                }
            })
            .collect();
        loop {
            // SAFETY: fds is a live, properly laid-out pollfd array
            // whose exact length is passed as nfds.
            let rc = unsafe {
                poll(
                    fds.as_mut_ptr(),
                    fds.len() as core::ffi::c_ulong,
                    super::timeout_ms(timeout),
                )
            };
            if rc >= 0 {
                break;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
        for (entry, pfd) in snapshot.iter().zip(&fds) {
            let bits = pfd.revents;
            if bits == 0 || events.inner.len() >= events.capacity {
                continue;
            }
            if entry.waker {
                drain(entry.fd);
            }
            events.inner.push(Event {
                token: entry.token.0,
                readable: bits & (POLLIN | POLLHUP | POLLERR | POLLNVAL) != 0,
                writable: bits & (POLLOUT | POLLHUP | POLLERR | POLLNVAL) != 0,
                error: bits & (POLLERR | POLLNVAL) != 0,
                read_closed: bits & POLLHUP != 0,
            });
        }
        Ok(())
    }
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Entry")
            .field("fd", &self.fd)
            .field("token", &self.token)
            .field("waker", &self.waker)
            .finish()
    }
}

/// Empties a self-pipe's read end so the level-triggered readiness
/// clears; coalesces any number of queued wakes into the one event
/// being reported.
fn drain(fd: RawFd) {
    let mut buf = [0u8; 64];
    loop {
        // SAFETY: valid fd; buf is 64 writable bytes, matching count.
        let rc = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
        if rc < buf.len() as isize {
            // Error (EAGAIN on the non-blocking pipe), EOF, or a short
            // read: nothing more queued right now.
            return;
        }
    }
}

fn set_nonblocking_cloexec(fd: RawFd) -> io::Result<()> {
    // SAFETY: valid fd; F_GETFL takes no argument (0 is ignored).
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: valid fd; F_SETFL with the int flags argument.
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: valid fd; F_SETFD with the int flags argument.
    if unsafe { fcntl(fd, F_SETFD, FD_CLOEXEC) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// The wakeup fd pair: a non-blocking self-pipe.
#[derive(Debug)]
pub struct WakerFd {
    rx: OwnedFd,
    tx: OwnedFd,
}

impl WakerFd {
    pub fn new() -> io::Result<WakerFd> {
        let mut fds = [0i32; 2];
        // SAFETY: fds is a live 2-element int array for pipe to fill.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: both fds were just returned by pipe and are owned by
        // nobody else; OwnedFd closes them on every path below.
        let (rx, tx) = unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) };
        set_nonblocking_cloexec(rx.as_raw_fd())?;
        set_nonblocking_cloexec(tx.as_raw_fd())?;
        Ok(WakerFd { rx, tx })
    }

    pub fn wake(&self) -> io::Result<()> {
        let one = [1u8];
        // SAFETY: valid fd; buf points at 1 readable byte, matching
        // count.
        let rc = unsafe { write(self.tx.as_raw_fd(), one.as_ptr().cast(), 1) };
        if rc >= 0 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        // A full pipe already has a wakeup pending: success.
        if err.kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(err)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    /// The poll(2) backend, driven directly (on Linux the public
    /// `Poll` uses epoll, so this is the fallback's only coverage).
    #[test]
    fn poll_backend_reports_accept_readiness_and_waker() {
        let selector = Selector::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        selector
            .register(listener.as_raw_fd(), Token(5), Interest::READABLE)
            .unwrap();
        let waker = WakerFd::new().unwrap();
        selector.register_waker(&waker, Token(9)).unwrap();

        let mut events = Events::with_capacity(8);
        selector.select(&mut events, Some(Duration::ZERO)).unwrap();
        assert!(events.is_empty());

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        selector
            .select(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token().0 == 5 && e.is_readable()));

        // The waker delivers once and is drained by the selector.
        waker.wake().unwrap();
        waker.wake().unwrap();
        let (served, _) = listener.accept().unwrap();
        selector.deregister(listener.as_raw_fd()).unwrap();
        selector
            .select(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token().0 == 9 && e.is_readable()));
        selector
            .select(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "drained waker must go quiet");

        // Write readiness through reregister, then peer close → HUP
        // surfaces as readable.
        served.set_nonblocking(true).unwrap();
        selector
            .register(served.as_raw_fd(), Token(2), Interest::WRITABLE)
            .unwrap();
        selector
            .select(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token().0 == 2 && e.is_writable()));
        selector
            .reregister(served.as_raw_fd(), Token(2), Interest::READABLE)
            .unwrap();
        client.write_all(b"x").unwrap();
        drop(client);
        selector
            .select(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token().0 == 2 && e.is_readable()));
    }

    #[test]
    fn duplicate_and_missing_registrations_error() {
        let selector = Selector::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let fd = listener.as_raw_fd();
        selector.register(fd, Token(1), Interest::READABLE).unwrap();
        assert!(selector.register(fd, Token(1), Interest::READABLE).is_err());
        selector.deregister(fd).unwrap();
        assert!(selector.deregister(fd).is_err());
        assert!(selector
            .reregister(fd, Token(1), Interest::READABLE)
            .is_err());
    }
}
