//! Backend selection: epoll on Linux, poll(2) on every other Unix.
//!
//! Both backends expose the same internal surface — `Selector` (the
//! kernel readiness primitive plus waker bookkeeping) and `WakerFd`
//! (the fd pair a [`crate::Waker`] writes to) — so the public types in
//! the crate root are backend-agnostic. On Linux the poll(2) backend
//! is compiled and unit-tested too, so the portable fallback cannot
//! rot unnoticed.

#[cfg(target_os = "linux")]
pub mod epoll;
#[cfg(unix)]
pub mod poll;

/// The raw OS handle event sources are identified by.
#[cfg(unix)]
pub type RawSocketFd = std::os::fd::RawFd;
/// The raw OS handle event sources are identified by.
#[cfg(not(unix))]
pub type RawSocketFd = i32;

#[cfg(target_os = "linux")]
pub use epoll::{Selector, WakerFd};
#[cfg(all(unix, not(target_os = "linux")))]
pub use poll::{Selector, WakerFd};

#[cfg(not(unix))]
compile_error!(
    "compat/mio only implements Unix backends (epoll / poll(2)); \
     no readiness selector exists for this platform"
);

/// Converts an optional timeout to the millisecond convention shared
/// by `epoll_wait` and `poll(2)`: `-1` blocks forever, `0` returns
/// immediately, positive waits at most that long (sub-millisecond
/// remainders round *up* so a 100 µs timeout does not spin).
#[cfg(unix)]
pub(crate) fn timeout_ms(timeout: Option<std::time::Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if std::time::Duration::from_millis(ms as u64) < d {
                ms + 1
            } else {
                ms
            };
            i32::try_from(ms).unwrap_or(i32::MAX)
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::timeout_ms;
    use std::time::Duration;

    #[test]
    fn timeout_conversion_rounds_up_and_clamps() {
        assert_eq!(timeout_ms(None), -1);
        assert_eq!(timeout_ms(Some(Duration::ZERO)), 0);
        assert_eq!(timeout_ms(Some(Duration::from_millis(20))), 20);
        assert_eq!(timeout_ms(Some(Duration::from_micros(100))), 1);
        assert_eq!(timeout_ms(Some(Duration::from_secs(1 << 40))), i32::MAX);
    }
}
