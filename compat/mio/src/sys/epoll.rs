//! The Linux backend: one `epoll` instance per selector.
//!
//! Sockets register **level-triggered**, so callers are never required
//! to drain a source to `WouldBlock` for correctness — unhandled
//! readiness simply reports again on the next wait. The waker's
//! `eventfd` registers **edge-triggered** (`EPOLLET`): every `write`
//! to the counter re-arms one event, so the counter never needs to be
//! read back and `wake()` stays a single syscall.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

use crate::{Event, Events, Interest, Token};

const EPOLL_CLOEXEC: i32 = 0x8_0000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

const EFD_NONBLOCK: i32 = 0o4000;
const EFD_CLOEXEC: i32 = 0x8_0000;

/// `struct epoll_event`. The kernel packs it on x86-64 (no padding
/// between the 32-bit event mask and the 64-bit data word); on other
/// architectures it uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn write(fd: i32, buf: *const core::ffi::c_void, count: usize) -> isize;
}

/// The epoll selector.
#[derive(Debug)]
pub struct Selector {
    epfd: OwnedFd,
}

impl Selector {
    /// Creates the epoll instance.
    ///
    /// # Errors
    ///
    /// `epoll_create1` failures (fd exhaustion).
    pub fn new() -> io::Result<Selector> {
        // SAFETY: plain fd creation; a negative return is an error.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: fd was just returned by epoll_create1 and is owned
        // by nobody else; OwnedFd closes it.
        Ok(Selector {
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: Token) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token.0 as u64,
        };
        // SAFETY: epfd and fd are live fds; ev is a properly laid-out
        // epoll_event that outlives the call.
        let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &raw mut ev) };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.is_readable() {
            bits |= EPOLLIN;
        }
        if interest.is_writable() {
            bits |= EPOLLOUT;
        }
        bits
    }

    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Self::interest_bits(interest), token)
    }

    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Self::interest_bits(interest), token)
    }

    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, Token(0))
    }

    pub fn register_waker(&self, waker: &WakerFd, token: Token) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            waker.fd.as_raw_fd(),
            EPOLLIN | EPOLLET,
            token,
        )
    }

    pub fn deregister_waker(&self, waker: &WakerFd) -> io::Result<()> {
        self.deregister(waker.fd.as_raw_fd())
    }

    pub fn select(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        let cap = events.capacity.min(1024);
        let mut buf = vec![EpollEvent { events: 0, data: 0 }; cap];
        let n = loop {
            // SAFETY: buf is a live, properly laid-out epoll_event
            // array of length cap; the kernel writes at most cap
            // entries.
            let rc = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    buf.as_mut_ptr(),
                    cap as i32,
                    super::timeout_ms(timeout),
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &buf[..n] {
            let (bits, data) = (ev.events, ev.data);
            events.inner.push(Event {
                token: data as usize,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                error: bits & EPOLLERR != 0,
                read_closed: bits & (EPOLLRDHUP | EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

/// The wakeup fd: an `eventfd` counter. Writes re-arm the
/// edge-triggered registration; the counter is never read back (it
/// saturates only after 2^64 − 1 un-polled wakes).
#[derive(Debug)]
pub struct WakerFd {
    fd: OwnedFd,
}

impl WakerFd {
    pub fn new() -> io::Result<WakerFd> {
        // SAFETY: plain fd creation; a negative return is an error.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: fd was just returned by eventfd and is owned by
        // nobody else; OwnedFd closes it.
        Ok(WakerFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    pub fn wake(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: valid fd; buf points at 8 readable bytes (the u64),
        // matching count.
        let rc = unsafe {
            write(
                self.fd.as_raw_fd(),
                (&raw const one).cast(),
                core::mem::size_of::<u64>(),
            )
        };
        if rc >= 0 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        // A saturated counter still has a wakeup pending: success.
        if err.kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(err)
        }
    }
}
