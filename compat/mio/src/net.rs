//! Raw socket plumbing that `std` has no portable surface for.
//!
//! Lives here because this crate is the workspace's one `unsafe`
//! enclave: `ps3-stream`'s `net` module re-exports these and stays
//! `#![forbid(unsafe_code)]`.
//!
//! * [`bind_reusable`]: bind a listener with `SO_REUSEADDR` set
//!   *before* `bind`, so a daemon bounced on the same port (fleet
//!   rig restarts, the reconnect tests) does not race the kernel's
//!   `TIME_WAIT` hold and fail with `EADDRINUSE`.
//!   `std::net::TcpListener::bind` offers no hook to set the option
//!   first, so on Linux this goes through the raw socket calls;
//!   elsewhere it falls back to the plain `std` bind.
//! * [`set_send_buffer`]: cap a socket's kernel send buffer
//!   (`SO_SNDBUF`), which bounds how far a stalled subscriber can
//!   buffer ahead of its eviction.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

/// Binds a TCP listener with `SO_REUSEADDR`, so a just-closed listener
/// on the same address does not block the new bind.
///
/// Resolves `addr` like [`TcpListener::bind`] (first address that
/// binds wins). The returned listener is in the default blocking mode.
///
/// # Errors
///
/// Address resolution and socket bind errors; the error for a bind
/// failure is the raw OS error (callers prepend the address).
pub fn bind_reusable<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
    let mut last_err = None;
    for addr in addr.to_socket_addrs()? {
        match bind_one(addr) {
            Ok(listener) => return Ok(listener),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "could not resolve any address")
    }))
}

#[cfg(target_os = "linux")]
fn bind_one(addr: SocketAddr) -> io::Result<TcpListener> {
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};

    // IPv6 listeners are rare here (every in-repo caller uses v4
    // loopback); take the std path rather than growing a second raw
    // sockaddr layout.
    let SocketAddr::V4(v4) = addr else {
        return TcpListener::bind(addr);
    };

    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0x8_0000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    // Sized for the c10k experiments' connection storms (the kernel
    // clamps to somaxconn); std's own bind uses 128.
    const BACKLOG: i32 = 1024;

    /// `struct sockaddr_in`: family, port (network order), address
    /// (network order), 8 bytes of zero padding.
    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn bind(fd: i32, addr: *const core::ffi::c_void, addrlen: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
    }

    // SAFETY: plain socket creation; a negative return is an error.
    let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: fd was just returned by socket() and is owned by nobody
    // else; OwnedFd closes it on every error path below.
    let fd = unsafe { OwnedFd::from_raw_fd(fd) };

    let on: i32 = 1;
    set_int_option(fd.as_raw_fd(), SOL_SOCKET, SO_REUSEADDR, on)?;

    let sa = SockAddrIn {
        family: AF_INET as u16,
        port: v4.port().to_be(),
        addr: u32::from_be_bytes(v4.ip().octets()).to_be(),
        zero: [0; 8],
    };
    // SAFETY: valid fd; sa is a properly laid-out sockaddr_in whose
    // size is passed as addrlen.
    let rc = unsafe {
        bind(
            fd.as_raw_fd(),
            (&raw const sa).cast(),
            core::mem::size_of::<SockAddrIn>() as u32,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: valid, bound fd.
    if unsafe { listen(fd.as_raw_fd(), BACKLOG) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(TcpListener::from(fd))
}

#[cfg(not(target_os = "linux"))]
fn bind_one(addr: SocketAddr) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// Caps the socket's kernel send buffer. `std` has no portable
/// accessor for `SO_SNDBUF`, so this goes through `setsockopt`
/// directly on Linux and is a no-op elsewhere.
///
/// # Errors
///
/// `setsockopt` failures (closed socket).
#[cfg(target_os = "linux")]
pub fn set_send_buffer(stream: &TcpStream, bytes: usize) -> io::Result<()> {
    use std::os::fd::AsRawFd;
    const SOL_SOCKET: i32 = 1;
    const SO_SNDBUF: i32 = 7;
    let val = i32::try_from(bytes).unwrap_or(i32::MAX);
    set_int_option(stream.as_raw_fd(), SOL_SOCKET, SO_SNDBUF, val)
}

/// Caps the socket's kernel send buffer (no-op off Linux).
///
/// # Errors
///
/// Never fails off Linux.
#[cfg(not(target_os = "linux"))]
pub fn set_send_buffer(_stream: &TcpStream, _bytes: usize) -> io::Result<()> {
    Ok(())
}

#[cfg(target_os = "linux")]
fn set_int_option(fd: i32, level: i32, optname: i32, val: i32) -> io::Result<()> {
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    // SAFETY: valid fd; optval points at an i32 whose size is passed
    // as optlen.
    let rc = unsafe {
        setsockopt(
            fd,
            level,
            optname,
            (&raw const val).cast(),
            core::mem::size_of::<i32>() as u32,
        )
    };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binds_and_accepts() {
        let listener = bind_reusable("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::net::TcpStream::connect(addr).unwrap();
        let (_conn, peer) = listener.accept().unwrap();
        assert_eq!(peer, client.local_addr().unwrap());
    }

    #[test]
    fn rebinds_immediately_after_close() {
        let listener = bind_reusable("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Leave a connection half-open so the old listener's port
        // lingers, then rebind the exact same address straight away.
        let _client = std::net::TcpStream::connect(addr).unwrap();
        let (_conn, _) = listener.accept().unwrap();
        drop(listener);
        let again = bind_reusable(addr).unwrap();
        assert_eq!(again.local_addr().unwrap(), addr);
    }

    #[test]
    fn send_buffer_can_be_capped() {
        let listener = bind_reusable("127.0.0.1:0").unwrap();
        let client = std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        set_send_buffer(&client, 64 * 1024).unwrap();
    }
}
