#!/usr/bin/env bash
# Continuous-integration gate. Run locally before pushing; the GitHub
# Actions workflow (.github/workflows/ci.yml) runs exactly these steps.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> lint-smoke: ps3-lint workspace audit + fixture assertions"
# The workspace must be clean under the project's own static analysis
# (determinism, lock-order, unsafe/atomics, panic-path rules), and
# every rule must demonstrably fire on its planted fixture so a rule
# can't silently rot. Findings land in target/ci-lint/ for artifact
# upload.
rm -rf target/ci-lint && mkdir -p target/ci-lint
if ! ./target/release/ps3-lint check --json >target/ci-lint/findings.json; then
  echo "ps3-lint found violations:"
  ./target/release/ps3-lint check || true
  exit 1
fi
./target/release/ps3-lint list-rules >target/ci-lint/rules.txt
for rule in determinism unsafe-safety forbid-unsafe atomics lock-order \
            panic-path allow-syntax blocking-io; do
  grep -q "^$rule " target/ci-lint/rules.txt \
    || { echo "rule catalog lost \`$rule\`"; exit 1; }
done
./target/release/ps3-lint check --fixtures --json >target/ci-lint/fixtures.json \
  || { echo "planted-violation fixtures did not reconcile:"
       ./target/release/ps3-lint check --fixtures || true; exit 1; }
grep -q '"missing":0,"unexpected":0' target/ci-lint/fixtures.json \
  || { echo "fixture report not clean"; cat target/ci-lint/fixtures.json; exit 1; }
matched=$(grep -o '"matched":[0-9]*' target/ci-lint/fixtures.json | cut -d: -f2)
test "$matched" -ge 8 \
  || { echo "only $matched fixture expectations matched (< 1 per rule)"; exit 1; }

echo "==> bench smoke: repro determinism + BENCH_repro.json"
# Three cheap experiments, serial then 2-way parallel, into separate
# results directories: the run must not panic, must emit the perf
# record, and must produce byte-identical CSV artifacts.
rm -rf target/ci-smoke
PS3_RESULTS_DIR=target/ci-smoke/serial \
  ./target/release/repro --smoke --jobs 1 table2 fig4 archive >/dev/null
PS3_RESULTS_DIR=target/ci-smoke/par \
  ./target/release/repro --smoke --jobs 2 table2 fig4 archive >/dev/null
for f in table2.csv fig4.csv archive.csv; do
  cmp "target/ci-smoke/serial/$f" "target/ci-smoke/par/$f" \
    || { echo "non-deterministic output: $f"; exit 1; }
done
test -s target/ci-smoke/par/BENCH_repro.json \
  || { echo "BENCH_repro.json missing"; exit 1; }
grep -q '"jobs": 2' target/ci-smoke/par/BENCH_repro.json \
  || { echo "BENCH_repro.json lacks jobs field"; exit 1; }
grep -q '"archive_bytes_per_sample"' target/ci-smoke/par/BENCH_repro.json \
  || { echo "BENCH_repro.json lacks archive metrics"; exit 1; }

echo "==> archive smoke: record, kill-and-recover, verify, cat-vs-dump"
# Record a capture through the background archive writer, with the
# live continuous-mode dump of the same frames riding along. The
# archived view must diff clean against the live dump, verify must
# pass, and a torn tail (as a crash would leave) must fail verify
# while the sealed prefix still opens.
rm -rf target/ci-arc && mkdir -p target/ci-arc
./target/release/ps3-arc record --out target/ci-arc/cap.ps3a \
  --dump target/ci-arc/cap-live.txt --frames 4000 --seed 9 \
  --segment-frames 1024 >/dev/null
./target/release/ps3-arc verify target/ci-arc/cap.ps3a >/dev/null \
  || { echo "verify failed on intact archive"; exit 1; }
./target/release/ps3-arc cat target/ci-arc/cap.ps3a >target/ci-arc/cap-cat.txt
diff target/ci-arc/cap-live.txt target/ci-arc/cap-cat.txt \
  || { echo "archived cat differs from the live dump"; exit 1; }
./target/release/ps3-arc export-csv target/ci-arc/cap.ps3a \
  --divisor 100 --out target/ci-arc/cap.csv 2>/dev/null
test -s target/ci-arc/cap.csv || { echo "export-csv produced nothing"; exit 1; }
# Tear the tail off the archive (simulated crash mid-write): verify
# must flag it with a nonzero exit; info must still open the file.
cp target/ci-arc/cap.ps3a target/ci-arc/torn.ps3a
truncate -s -37 target/ci-arc/torn.ps3a
if ./target/release/ps3-arc verify target/ci-arc/torn.ps3a >/dev/null; then
  echo "verify passed on a torn archive"; exit 1
fi
./target/release/ps3-arc info target/ci-arc/torn.ps3a >target/ci-arc/torn-info.txt
grep -q 'unsealed trailing bytes' target/ci-arc/torn-info.txt \
  || { echo "recovery did not report the torn tail"; exit 1; }

echo "==> sim smoke: fixed-seed fault-injection sweep + planted violation"
# A short deterministic sweep across every scenario must come back
# clean, and a replay must be bit-exact. Then a deliberately planted
# defect (unsealed archive tail) must be caught, shrunk to a minimal
# fault plan (<= 5 events), and written out as a failure artifact.
rm -rf target/ci-sim && mkdir -p target/ci-sim
./target/release/ps3-sim sweep --seeds 4 --out target/ci-sim/sweep \
  || { echo "sim sweep found invariant violations"
       cat target/ci-sim/sweep/failure-*.json 2>/dev/null; exit 1; }
./target/release/ps3-sim replay --seed 7 >/dev/null \
  || { echo "sim replay is not bit-exact"; exit 1; }
if ./target/release/ps3-sim sweep --seeds 1 --scenario pipeline \
    --sabotage unsealed-tail --out target/ci-sim/planted >/dev/null; then
  echo "planted unsealed-tail sabotage went undetected"; exit 1
fi
artifact=$(ls target/ci-sim/planted/failure-*.json 2>/dev/null | head -1)
test -n "$artifact" || { echo "no failure artifact written"; exit 1; }
grep -q '"invariant": "archive-seal"' "$artifact" \
  || { echo "artifact lacks the archive-seal violation"; exit 1; }
plan=$(grep -o '"plan": "[^"]*"' "$artifact" | head -1 | cut -d'"' -f4)
if [ "$plan" = "-" ]; then events=0; else
  events=$(($(echo "$plan" | tr -cd ',' | wc -c) + 1)); fi
test "$events" -le 5 \
  || { echo "shrunk plan still has $events events: $plan"; exit 1; }
# Nightly (or on demand): a much longer sweep.
if [ "${PS3_SIM_NIGHTLY:-0}" != "0" ]; then
  echo "==> sim nightly: extended sweep"
  ./target/release/ps3-sim sweep --seeds 64 --out target/ci-sim/nightly \
    || { echo "nightly sim sweep found invariant violations"
         cat target/ci-sim/nightly/failure-*.json 2>/dev/null; exit 1; }
fi

echo "==> probe smoke: RAPL overhead study determinism + probes scenario sweep"
# The measurement-overhead experiment must be bit-identical across
# thread counts, its perturbation/error curves must land in
# BENCH_repro.json, and the PS3-external baseline must perturb the
# workload >= 10x less than the worst on-CPU probe at the highest
# polling rate. The probe contracts themselves are property-tested,
# and the probes sim scenario must survive a seeded fault sweep.
rm -rf target/ci-probe && mkdir -p target/ci-probe
cargo test -q -p ps3-pmt --test probe_props >/dev/null \
  || { echo "probe property tests failed"; exit 1; }
PS3_RESULTS_DIR=target/ci-probe/serial \
  ./target/release/repro --smoke --jobs 1 overhead >/dev/null
PS3_RESULTS_DIR=target/ci-probe/par \
  ./target/release/repro --smoke --jobs 2 overhead >/dev/null
cmp target/ci-probe/serial/overhead.csv target/ci-probe/par/overhead.csv \
  || { echo "non-deterministic overhead artifact"; exit 1; }
grep -q '"overhead_msr_100000hz_inflation_pct"' target/ci-probe/par/BENCH_repro.json \
  || { echo "BENCH_repro.json lacks the perturbation curves"; exit 1; }
grep -q '"overhead_powercap_sysfs_100000hz_err_pct"' target/ci-probe/par/BENCH_repro.json \
  || { echo "BENCH_repro.json lacks the energy-error curves"; exit 1; }
ratio=$(grep -o '"overhead_ps3_ratio_at_max_hz": [0-9.]*' \
  target/ci-probe/par/BENCH_repro.json | awk '{print $2}')
awk -v r="$ratio" 'BEGIN { exit !(r >= 10) }' \
  || { echo "ps3-external only ${ratio}x less perturbation (< 10x)"; exit 1; }
./target/release/ps3-sim sweep --seeds 6 --scenario probes \
  --out target/ci-probe/sweep \
  || { echo "probes scenario sweep found invariant violations"
       cat target/ci-probe/sweep/failure-*.json 2>/dev/null; exit 1; }
./target/release/ps3-sim replay --seed 5 --scenario probes >/dev/null \
  || { echo "probes replay is not bit-exact"; exit 1; }

echo "==> tsdb smoke: compact, retain, pyramid-vs-decode, latency curve"
# Record a many-segment capture, then drive the full tsdb lifecycle:
# the pyramid engine must answer exactly like a full decode before and
# after compaction, compaction must merge the segments and keep verify
# clean, retention must drop exactly the expired whole segments, the
# tsdb bench artifact must be byte-identical across thread counts, and
# the perf record must show the pyramid >= 10x faster than a full scan
# at the largest capture size.
rm -rf target/ci-tsdb && mkdir -p target/ci-tsdb
./target/release/ps3-arc record --out target/ci-tsdb/cap.ps3a \
  --frames 9000 --seed 11 --segment-frames 1000 >/dev/null
./target/release/ps3-arc stats target/ci-tsdb/cap.ps3a --engine pyramid \
  >target/ci-tsdb/stats-pyr.txt
./target/release/ps3-arc stats target/ci-tsdb/cap.ps3a --engine decode \
  >target/ci-tsdb/stats-dec.txt
cmp target/ci-tsdb/stats-pyr.txt target/ci-tsdb/stats-dec.txt \
  || { echo "pyramid and decode engines disagree"; exit 1; }
./target/release/ps3-arc compact target/ci-tsdb/cap.ps3a --target-frames 4500 \
  >target/ci-tsdb/compact.txt
grep -q '9 -> 2 segments' target/ci-tsdb/compact.txt \
  || { echo "compaction did not merge 9 segments into 2"
       cat target/ci-tsdb/compact.txt; exit 1; }
./target/release/ps3-arc verify target/ci-tsdb/cap.ps3a >/dev/null \
  || { echo "verify failed after compaction"; exit 1; }
./target/release/ps3-arc stats target/ci-tsdb/cap.ps3a --engine pyramid \
  >target/ci-tsdb/stats-pyr2.txt
./target/release/ps3-arc stats target/ci-tsdb/cap.ps3a --engine decode \
  >target/ci-tsdb/stats-dec2.txt
cmp target/ci-tsdb/stats-pyr2.txt target/ci-tsdb/stats-dec2.txt \
  || { echo "engines disagree after compaction"; exit 1; }
cmp target/ci-tsdb/stats-pyr.txt target/ci-tsdb/stats-pyr2.txt \
  || { echo "compaction changed the capture's answers"; exit 1; }
./target/release/ps3-arc info target/ci-tsdb/cap.ps3a --json \
  >target/ci-tsdb/info.json
grep -q '"pyramid":{"fresh":true' target/ci-tsdb/info.json \
  || { echo "info --json lacks a fresh pyramid sidecar"
       cat target/ci-tsdb/info.json; exit 1; }
./target/release/ps3-arc retain target/ci-tsdb/cap.ps3a --retain 150000us \
  >target/ci-tsdb/retain.txt
grep -q '2 -> 1 segments' target/ci-tsdb/retain.txt \
  || { echo "retention did not drop the expired segment"
       cat target/ci-tsdb/retain.txt; exit 1; }
./target/release/ps3-arc verify target/ci-tsdb/cap.ps3a >/dev/null \
  || { echo "verify failed after retention"; exit 1; }
./target/release/ps3-arc stats target/ci-tsdb/cap.ps3a --engine pyramid \
  >target/ci-tsdb/tail-pyr.txt
./target/release/ps3-arc stats target/ci-tsdb/cap.ps3a --engine decode \
  >target/ci-tsdb/tail-dec.txt
cmp target/ci-tsdb/tail-pyr.txt target/ci-tsdb/tail-dec.txt \
  || { echo "engines disagree on the retained tail"; exit 1; }
PS3_RESULTS_DIR=target/ci-tsdb/serial \
  ./target/release/repro --smoke --jobs 1 tsdb >/dev/null
PS3_RESULTS_DIR=target/ci-tsdb/par \
  ./target/release/repro --smoke --jobs 2 tsdb >/dev/null
cmp target/ci-tsdb/serial/tsdb.csv target/ci-tsdb/par/tsdb.csv \
  || { echo "non-deterministic tsdb bench artifact"; exit 1; }
grep -q '"tsdb_160000_speedup"' target/ci-tsdb/par/BENCH_repro.json \
  || { echo "BENCH_repro.json lacks the tsdb latency curve"; exit 1; }
speedup=$(grep -o '"tsdb_speedup_at_largest": [0-9.]*' \
  target/ci-tsdb/par/BENCH_repro.json | awk '{print $2}')
awk -v s="$speedup" 'BEGIN { exit !(s >= 10) }' \
  || { echo "pyramid speedup only ${speedup}x (< 10x) at the largest capture"; exit 1; }

echo "==> fleet smoke: 4-rig coordinator, merged subscribe, aggregate query"
# A 4-rig fleet serves for a few seconds on an OS-assigned port; a
# fleet-wide subscriber at reduced rate must drain the merged stream
# gap-free from all 4 rigs, the roster must answer over the wire, and
# after shutdown the archive shards must answer an aggregate query.
rm -rf target/ci-fleet && mkdir -p target/ci-fleet
./target/release/ps3-fleet serve --rigs 4 --bind 127.0.0.1:0 \
  --data target/ci-fleet/data --secs 6 >target/ci-fleet/serve.txt &
fleet_pid=$!
addr=""
for _ in $(seq 1 50); do
  addr=$(grep -o 'listening on [0-9.:]*' target/ci-fleet/serve.txt 2>/dev/null \
    | awk '{print $3}' || true)
  test -n "$addr" && break
  sleep 0.1
done
test -n "$addr" || { echo "fleet coordinator never came up"; kill "$fleet_pid"; exit 1; }
./target/release/ps3-fleet watch --connect "$addr" --secs 2 --divisor 20 \
  >target/ci-fleet/watch.txt \
  || { echo "fleet-wide subscribe failed"; cat target/ci-fleet/watch.txt
       kill "$fleet_pid"; exit 1; }
grep -q 'gaps=0 dropped=0 rigs=4' target/ci-fleet/watch.txt \
  || { echo "merged stream was not gap-free across 4 rigs"
       cat target/ci-fleet/watch.txt; kill "$fleet_pid"; exit 1; }
./target/release/ps3-fleet status --connect "$addr" >target/ci-fleet/status.txt \
  || { echo "fleet status query failed"; kill "$fleet_pid"; exit 1; }
test "$(grep -c ' up ' target/ci-fleet/status.txt)" -eq 4 \
  || { echo "roster does not list 4 live rigs"
       cat target/ci-fleet/status.txt; kill "$fleet_pid"; exit 1; }
wait "$fleet_pid" || { echo "fleet coordinator exited nonzero"; exit 1; }
./target/release/ps3-fleet query --data target/ci-fleet/data --json \
  >target/ci-fleet/query.json
grep -q '"rigs":\[0,1,2,3\]' target/ci-fleet/query.json \
  || { echo "aggregate query lacks the 4-rig roster"
       cat target/ci-fleet/query.json; exit 1; }
grep -q '"energy_j":[0-9]' target/ci-fleet/query.json \
  || { echo "aggregate query reported no energy"
       cat target/ci-fleet/query.json; exit 1; }
# The fleet bench experiment's deterministic artifact must be
# byte-identical across thread counts (throughput lives only in
# BENCH_repro.json).
PS3_RESULTS_DIR=target/ci-fleet/serial \
  ./target/release/repro --smoke --jobs 1 fleet >/dev/null
PS3_RESULTS_DIR=target/ci-fleet/par \
  ./target/release/repro --smoke --jobs 2 fleet >/dev/null
cmp target/ci-fleet/serial/fleet.csv target/ci-fleet/par/fleet.csv \
  || { echo "non-deterministic fleet bench artifact"; exit 1; }
grep -q '"fleet_8_rigs_frames_per_sec"' target/ci-fleet/par/BENCH_repro.json \
  || { echo "BENCH_repro.json lacks the fleet throughput curve"; exit 1; }

echo "==> c10k smoke: 1000-subscriber event-loop streaming bench"
# The stream experiment multiplexes 64/256/1024 concurrent TCP
# subscribers onto the daemon's single event-loop thread. Every point
# must deliver every expected frame with zero gaps/drops/evictions,
# the CSV must be byte-identical across thread counts (wall-clock
# latency lives only in BENCH_repro.json), and the perf record must
# carry the subscribers-vs-latency curve.
rm -rf target/ci-c10k
PS3_RESULTS_DIR=target/ci-c10k/serial \
  ./target/release/repro --smoke --jobs 1 stream >/dev/null
PS3_RESULTS_DIR=target/ci-c10k/par \
  ./target/release/repro --smoke --jobs 2 stream >/dev/null
cmp target/ci-c10k/serial/stream.csv target/ci-c10k/par/stream.csv \
  || { echo "non-deterministic stream bench artifact"; exit 1; }
awk -F, 'NR > 1 {
    if ($1 == 1024) seen1024 = 1
    if ($4 != $1 * $3 || $5 != 0 || $6 != 0 || $7 != 0) {
      printf "subscribers %d: delivered %d of %d (gaps %d, dropped %d, evicted %d)\n", \
        $1, $4, $1 * $3, $5, $6, $7; bad = 1 } }
  END { if (!seen1024) { print "missing the 1024-subscriber point"; bad = 1 }
        exit bad }' target/ci-c10k/par/stream.csv \
  || { echo "stream bench was not gap-free with full delivery"; exit 1; }
grep -q '"stream_1024_subs_p99_ms"' target/ci-c10k/par/BENCH_repro.json \
  || { echo "BENCH_repro.json lacks the subscriber latency curve"; exit 1; }

echo "CI green."
