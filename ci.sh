#!/usr/bin/env bash
# Continuous-integration gate. Run locally before pushing; the GitHub
# Actions workflow (.github/workflows/ci.yml) runs exactly these steps.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "==> bench smoke: repro determinism + BENCH_repro.json"
# Two cheap experiments, serial then 2-way parallel, into separate
# results directories: the run must not panic, must emit the perf
# record, and must produce byte-identical CSV artifacts.
rm -rf target/ci-smoke
PS3_RESULTS_DIR=target/ci-smoke/serial \
  ./target/release/repro --smoke --jobs 1 table2 fig4 >/dev/null
PS3_RESULTS_DIR=target/ci-smoke/par \
  ./target/release/repro --smoke --jobs 2 table2 fig4 >/dev/null
for f in table2.csv fig4.csv; do
  cmp "target/ci-smoke/serial/$f" "target/ci-smoke/par/$f" \
    || { echo "non-deterministic output: $f"; exit 1; }
done
test -s target/ci-smoke/par/BENCH_repro.json \
  || { echo "BENCH_repro.json missing"; exit 1; }
grep -q '"jobs": 2' target/ci-smoke/par/BENCH_repro.json \
  || { echo "BENCH_repro.json lacks jobs field"; exit 1; }

echo "CI green."
