#!/usr/bin/env bash
# Continuous-integration gate. Run locally before pushing; the GitHub
# Actions workflow (.github/workflows/ci.yml) runs exactly these steps.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

echo "CI green."
