//! PowerSensor3 reproduction — facade crate.
//!
//! Re-exports the public API of every subsystem crate so downstream
//! users (and the examples/integration tests in this repository) can
//! depend on a single crate. See the README for an architecture
//! overview and DESIGN.md for the paper-to-module map.

#![forbid(unsafe_code)]

pub use ps3_analysis as analysis;
pub use ps3_archive as archive;
pub use ps3_core as core;
pub use ps3_duts as duts;
pub use ps3_firmware as firmware;
pub use ps3_fleet as fleet;
pub use ps3_pmt as pmt;
pub use ps3_sensors as sensors;
pub use ps3_sim as sim;
pub use ps3_stream as stream;
pub use ps3_testbed as testbed;
pub use ps3_transport as transport;
pub use ps3_tsdb as tsdb;
pub use ps3_tuner as tuner;
pub use ps3_units as units;
