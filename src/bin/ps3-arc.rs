//! `ps3-arc` — inspect and query PowerSensor3 archive files (.ps3a).
//!
//! ```text
//! ps3-arc record --out FILE [--dump FILE] [--frames N] [--seed N]
//!                [--segment-frames N]
//! ps3-arc info FILE [--json]
//! ps3-arc cat FILE [--start US] [--end US]
//! ps3-arc stats FILE [--engine pyramid|decode|archive] [--start US] [--end US]
//! ps3-arc export-csv FILE [--out FILE] [--divisor N] [--start US] [--end US]
//! ps3-arc compact FILE [--target-frames N]
//! ps3-arc retain FILE --retain SPEC
//! ps3-arc verify FILE
//! ```
//!
//! `record` captures a constant-load run on the simulated 12 V
//! accuracy bench through the background archive writer (and, with
//! `--dump`, simultaneously through the live continuous-mode dump so
//! the two can be diffed). `cat` prints an archive range in exactly
//! the live dump text format; `stats` and `export-csv` use the
//! summary-block fast paths (`stats --engine pyramid` answers from the
//! tsdb aggregation pyramid, `--engine decode` from a full frame
//! decode); `compact` merges small sealed segments crash-safely;
//! `retain` drops expired whole segments (`--retain 2h`, `--retain
//! 64mb`); `verify` deep-checks every segment and fails when the file
//! holds damage or an unsealed tail.

use std::io::Write;
use std::process::ExitCode;

use powersensor3::archive::{
    frame_total, Archive, ArchiveWriter, ArchiveWriterOptions, WriterStats,
};
use powersensor3::core::pair_readings;
use powersensor3::duts::LoadProgram;
use powersensor3::firmware::SENSOR_SLOTS;
use powersensor3::sensors::ModuleKind;
use powersensor3::testbed::setups::accuracy_bench;
use powersensor3::tsdb::{
    compact_archive, pyramid_path_for, retain_archive, CompactOptions, Pyramid, PyramidConfig,
    Retention, Tsdb, DEFAULT_COMPACT_TARGET_FRAMES,
};
use powersensor3::units::{Amps, SimDuration, SimTime};

const SENSOR_PAIRS: usize = SENSOR_SLOTS / 2;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ps3-arc record --out FILE [--dump FILE] [--frames N] [--seed N] [--segment-frames N]\n\
         \x20      ps3-arc info FILE [--json]\n\
         \x20      ps3-arc cat FILE [--start US] [--end US]\n\
         \x20      ps3-arc stats FILE [--start US] [--end US]\n\
         \x20      ps3-arc export-csv FILE [--out FILE] [--divisor N] [--start US] [--end US]\n\
         \x20      ps3-arc verify FILE"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        return usage();
    }
    let command = args[0].as_str();
    let rest = &args[1..];
    let result = match command {
        "record" => cmd_record(rest),
        "info" => cmd_info(rest),
        "cat" => cmd_cat(rest),
        "stats" => cmd_stats(rest),
        "export-csv" => cmd_export_csv(rest),
        "compact" => cmd_compact(rest),
        "retain" => cmd_retain(rest),
        "verify" => cmd_verify(rest),
        _ => {
            eprintln!("unknown command '{command}'");
            return usage();
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ps3-arc {command}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_u64(args: &[String], flag: &str) -> Option<u64> {
    flag_value(args, flag).and_then(|s| s.parse().ok())
}

/// The positional FILE argument: the first non-flag token that is not
/// a flag's value.
fn positional(args: &[String]) -> Option<String> {
    let mut skip = false;
    for arg in args {
        if skip {
            skip = false;
            continue;
        }
        if arg.starts_with("--") {
            skip = true;
            continue;
        }
        return Some(arg.clone());
    }
    None
}

fn open(args: &[String]) -> Result<Archive, String> {
    let path = positional(args).ok_or("missing archive path")?;
    Archive::open(&path).map_err(|e| format!("{path}: {e}"))
}

/// The decoded pyramid sidecar, if one exists, plus whether it is
/// fresh for the archive's current contents (a stale sidecar is
/// rebuilt, not served, on the next tsdb open).
fn pyramid_state(archive: &Archive) -> Option<(Pyramid, bool)> {
    let bytes = std::fs::read(pyramid_path_for(archive.path())).ok()?;
    let pyr = Pyramid::decode(&bytes).ok()?;
    let fresh = pyr.matches(archive);
    Some((pyr, fresh))
}

/// The query range: `[--start US, --end US)`, defaulting to the whole
/// archive (end exclusive, so the default end is last-frame + 1 µs).
fn range(args: &[String], archive: &Archive) -> (SimTime, SimTime) {
    let start = flag_u64(args, "--start")
        .map(SimTime::from_micros)
        .or_else(|| archive.start_time())
        .unwrap_or(SimTime::ZERO);
    let end = flag_u64(args, "--end")
        .map(SimTime::from_micros)
        .unwrap_or_else(|| {
            SimTime::from_micros(archive.end_time().map_or(0, |t| t.as_micros() + 1))
        });
    (start, end)
}

fn cmd_record(args: &[String]) -> Result<ExitCode, String> {
    let out = flag_value(args, "--out").ok_or("record needs --out FILE")?;
    let dump = flag_value(args, "--dump");
    let frames = flag_u64(args, "--frames").unwrap_or(12_000);
    let seed = flag_u64(args, "--seed").unwrap_or(7);
    let segment_frames = flag_u64(args, "--segment-frames").unwrap_or(4096) as usize;
    if segment_frames == 0 {
        return Err("--segment-frames must be positive".into());
    }

    let mut tb = accuracy_bench(
        ModuleKind::Slot10A12V,
        LoadProgram::Constant(Amps::new(6.0)),
        seed,
    );
    let ps = tb.connect().map_err(|e| e.to_string())?;
    tb.advance_and_sync(&ps, SimDuration::from_millis(2))
        .map_err(|e| e.to_string())?;

    let writer = ArchiveWriter::spawn(
        &out,
        ps.configs(),
        ArchiveWriterOptions {
            segment_frames,
            queue_capacity: 1 << 20,
        },
    )
    .map_err(|e| e.to_string())?;
    writer.attach(&ps);
    if let Some(dump_path) = &dump {
        let file = std::fs::File::create(dump_path).map_err(|e| e.to_string())?;
        ps.dump_to(file);
    }

    let quarter = SimDuration::from_micros(frames / 4 * 50);
    tb.advance_and_sync(&ps, quarter)
        .map_err(|e| e.to_string())?;
    ps.mark('k').map_err(|e| e.to_string())?;
    tb.advance_and_sync(&ps, quarter * 2)
        .map_err(|e| e.to_string())?;
    ps.mark('e').map_err(|e| e.to_string())?;
    tb.advance_and_sync(&ps, quarter)
        .map_err(|e| e.to_string())?;
    ps.stop_dump();
    let stats = writer.finish().map_err(|e| e.to_string())?;
    if stats.dropped > 0 {
        return Err(format!("archive queue dropped {} frames", stats.dropped));
    }
    println!(
        "recorded {} frames into {out}: {} bytes in {} segments ({:.3} bytes/sample)",
        stats.frames,
        stats.bytes,
        stats.segments,
        if stats.frames == 0 {
            0.0
        } else {
            stats.bytes as f64 / stats.frames as f64
        }
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_info(args: &[String]) -> Result<ExitCode, String> {
    let archive = open(args)?;
    let recovery = archive.recovery();
    // The stats sidecar is written only when the capture's writer
    // finished cleanly; its absence flags a crashed capture.
    let writer = WriterStats::load_for(archive.path());

    if args.iter().any(|a| a == "--json") {
        let segments = archive
            .segments()
            .iter()
            .map(|meta| {
                format!(
                    r#"{{"seq":{},"offset":{},"frames":{},"start_us":{},"end_us":{},"sealed":true}}"#,
                    meta.header.seq,
                    meta.offset,
                    meta.header.frame_count,
                    meta.header.start_us,
                    meta.header.end_us
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let pyramid_json = match pyramid_state(&archive) {
            Some((pyr, fresh)) => {
                let counts = pyr.counts();
                format!(
                    r#"{{"fresh":{fresh},"blocks":{},"tier1_nodes":{},"tier2_nodes":{},"tier1_fanout":{},"tier2_fanout":{}}}"#,
                    counts.blocks,
                    counts.tier1,
                    counts.tier2,
                    pyr.config.tier1_blocks,
                    pyr.config.tier2_nodes
                )
            }
            None => "null".to_owned(),
        };
        let writer_json = writer.map_or("null".to_owned(), |w| {
            format!(
                r#"{{"frames":{},"segments":{},"bytes":{},"dropped":{}}}"#,
                w.frames, w.segments, w.bytes, w.dropped
            )
        });
        println!(
            r#"{{"path":{:?},"frames":{},"used_index":{},"unsealed_trailing_bytes":{},"markers":{},"segments":[{segments}],"pyramid":{pyramid_json},"writer":{writer_json}}}"#,
            archive.path().display().to_string(),
            archive.frames(),
            recovery.used_index,
            recovery.trailing_bytes,
            archive.markers().len(),
        );
        return Ok(ExitCode::SUCCESS);
    }

    println!("{}", archive.path().display());
    println!(
        "  {} frames in {} sealed segments ({})",
        archive.frames(),
        archive.segments().len(),
        if recovery.used_index {
            "via sidecar index".to_owned()
        } else if recovery.trailing_bytes > 0 {
            format!(
                "recovery scan, {} unsealed trailing bytes ignored",
                recovery.trailing_bytes
            )
        } else {
            "recovery scan, clean".to_owned()
        }
    );
    if let (Some(start), Some(end)) = (archive.start_time(), archive.end_time()) {
        println!(
            "  time range {} .. {} us ({:.3} s)",
            start.as_micros(),
            end.as_micros(),
            end.saturating_duration_since(start).as_secs_f64()
        );
    }
    let enabled: Vec<String> = (0..SENSOR_PAIRS)
        .filter(|&p| archive.configs()[2 * p].enabled && archive.configs()[2 * p + 1].enabled)
        .map(|p| format!("{p} ({})", archive.configs()[2 * p].name))
        .collect();
    println!("  enabled pairs: {}", enabled.join(", "));
    match writer {
        Some(w) => println!(
            "  writer: finished cleanly, {} frames dropped at the queue",
            w.dropped
        ),
        None => println!("  writer: drop counter not recorded (no stats sidecar — capture crashed or predates it)"),
    }
    println!("  segments:");
    for meta in archive.segments() {
        println!(
            "    seq {:>4}  {:>7} frames  {:>12} .. {:<12} us  sealed",
            meta.header.seq, meta.header.frame_count, meta.header.start_us, meta.header.end_us
        );
    }
    if recovery.trailing_bytes > 0 {
        println!(
            "    tail      {:>7} bytes  unsealed (ignored)",
            recovery.trailing_bytes
        );
    }
    match pyramid_state(&archive) {
        Some((pyr, fresh)) => {
            let counts = pyr.counts();
            println!(
                "  pyramid: {} blocks -> {} tier-1 -> {} tier-2 nodes (fan-out {}x{}, sidecar {})",
                counts.blocks,
                counts.tier1,
                counts.tier2,
                pyr.config.tier1_blocks,
                pyr.config.tier2_nodes,
                if fresh { "fresh" } else { "STALE" }
            );
        }
        None => println!("  pyramid: no sidecar (built on first tsdb query)"),
    }
    let markers = archive.markers();
    println!("  markers: {}", markers.len());
    for &(t, label) in markers {
        println!("    {t} us  '{label}'");
    }
    Ok(ExitCode::SUCCESS)
}

/// Prints an archived range in exactly the live continuous-mode dump
/// text format (header, data lines, `M` marker lines, seal record), so
/// `ps3-arc cat` of a recorded archive diffs clean against the dump
/// the live sensor wrote at capture time.
fn cmd_cat(args: &[String]) -> Result<ExitCode, String> {
    let archive = open(args)?;
    let (start, end) = range(args, &archive);
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let adc = *archive.adc();
    let configs = archive.configs().clone();

    let emit = (|| -> std::io::Result<u64> {
        writeln!(out, "# PowerSensor3 dump (times in device µs)")?;
        let mut lines = 0u64;
        // Per-pair last readings mirror the live sensor's pair state:
        // a pair's column appears once it has reported at least once.
        let mut last: [Option<f64>; SENSOR_PAIRS] = [None; SENSOR_PAIRS];
        for meta in archive.segments() {
            if meta.header.end_us < start.as_micros() || meta.header.start_us >= end.as_micros() {
                continue;
            }
            let frames = archive
                .decode_segment_frames(meta)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
            for frame in frames {
                if frame.time < start {
                    continue;
                }
                if frame.time >= end {
                    break;
                }
                for pair in 0..SENSOR_PAIRS {
                    let (i_cfg, u_cfg) = (&configs[2 * pair], &configs[2 * pair + 1]);
                    if !(i_cfg.enabled && u_cfg.enabled) {
                        continue;
                    }
                    let both = 0b11 << (2 * pair);
                    if frame.present & both == both {
                        let (_, _, watts) = pair_readings(
                            i_cfg,
                            u_cfg,
                            &adc,
                            frame.raw[2 * pair],
                            frame.raw[2 * pair + 1],
                        );
                        last[pair] = Some(watts.value());
                    }
                }
                let total = frame_total(&configs, &adc, &frame);
                write!(out, "{}", frame.time.as_micros())?;
                for watts in last.iter().flatten() {
                    write!(out, " {watts:.4}")?;
                }
                writeln!(out, " {:.4}", total.value())?;
                if let Some(label) = frame.marker {
                    writeln!(out, "M {} {label}", frame.time.as_micros())?;
                }
                lines += 1;
            }
        }
        writeln!(out, "# end frames={lines}")?;
        out.flush()?;
        Ok(lines)
    })();
    emit.map_err(|e| e.to_string())?;
    Ok(ExitCode::SUCCESS)
}

fn cmd_stats(args: &[String]) -> Result<ExitCode, String> {
    let archive = open(args)?;
    let (start, end) = range(args, &archive);
    let engine = flag_value(args, "--engine").unwrap_or_else(|| "archive".to_owned());
    let (stats, energy, archive) = match engine.as_str() {
        // Summary-block fast path (the default).
        "archive" => (
            archive.stats(start, end).map_err(|e| e.to_string())?,
            archive.energy(start, end).map_err(|e| e.to_string())?,
            archive,
        ),
        // Ground truth: decode every overlapping frame.
        "decode" => (
            archive
                .stats_decoded(start, end)
                .map_err(|e| e.to_string())?,
            archive.energy(start, end).map_err(|e| e.to_string())?,
            archive,
        ),
        // Aggregation-pyramid tier walk (sidecar-backed when fresh).
        "pyramid" => {
            let tsdb = Tsdb::from_archive(archive, PyramidConfig::default());
            let stats = tsdb.stats(start, end).map_err(|e| e.to_string())?;
            let energy = tsdb.energy(start, end).map_err(|e| e.to_string())?;
            (stats, energy, tsdb.into_archive())
        }
        other => {
            return Err(format!(
                "unknown --engine '{other}' (expected pyramid, decode or archive)"
            ))
        }
    };
    println!(
        "range [{}, {}) us: {} samples",
        start.as_micros(),
        end.as_micros(),
        stats.count
    );
    if let Some(mean) = stats.mean_w() {
        println!(
            "  power  mean {mean:.4} W  min {:.4} W  max {:.4} W",
            stats.min_w, stats.max_w
        );
    }
    println!("  energy {:.6} J", energy.value());
    let markers: Vec<String> = archive
        .markers()
        .iter()
        .filter(|(t, _)| *t >= start.as_micros() && *t < end.as_micros())
        .map(|(t, label)| format!("'{label}'@{t}"))
        .collect();
    if !markers.is_empty() {
        println!("  markers {}", markers.join(" "));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_export_csv(args: &[String]) -> Result<ExitCode, String> {
    let archive = open(args)?;
    let (start, end) = range(args, &archive);
    let divisor = flag_u64(args, "--divisor").unwrap_or(1);
    if divisor == 0 {
        return Err("--divisor must be positive".into());
    }
    let trace = archive
        .downsample(start, end, divisor)
        .map_err(|e| e.to_string())?;

    let mut text = String::from("t_us,power_w\n");
    for s in trace.samples() {
        text.push_str(&format!("{},{:.6}\n", s.time.as_micros(), s.power.value()));
    }
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(&path, text).map_err(|e| e.to_string())?;
            eprintln!("wrote {} rows to {path}", trace.len());
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_compact(args: &[String]) -> Result<ExitCode, String> {
    let path = positional(args).ok_or("missing archive path")?;
    let target =
        flag_u64(args, "--target-frames").map_or(DEFAULT_COMPACT_TARGET_FRAMES, |n| n as usize);
    if target == 0 {
        return Err("--target-frames must be positive".into());
    }
    let report = compact_archive(
        &path,
        CompactOptions {
            target_frames: target,
            config: PyramidConfig::default(),
        },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "compacted {path}: {} -> {} segments, {} -> {} bytes",
        report.segments_before, report.segments_after, report.bytes_before, report.bytes_after
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_retain(args: &[String]) -> Result<ExitCode, String> {
    let path = positional(args).ok_or("missing archive path")?;
    let spec =
        flag_value(args, "--retain").ok_or("retain needs --retain SPEC (e.g. 30m, 2h, 64mb)")?;
    let retention = Retention::parse(&spec)?;
    let report =
        retain_archive(&path, retention, PyramidConfig::default()).map_err(|e| e.to_string())?;
    println!(
        "retained {path} ({}): {} -> {} segments, {} -> {} bytes",
        retention.describe(),
        report.segments_before,
        report.segments_after,
        report.bytes_before,
        report.bytes_after
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    let archive = open(args)?;
    let report = archive.verify().map_err(|e| e.to_string())?;
    println!(
        "{}: {} segments, {} frames deep-verified",
        archive.path().display(),
        report.segments_ok,
        report.frames
    );
    for error in &report.errors {
        println!("  DAMAGE: {error}");
    }
    if report.trailing_bytes > 0 {
        println!(
            "  TORN TAIL: {} unsealed trailing bytes (data past the last seal is not served)",
            report.trailing_bytes
        );
    }
    if report.is_clean() {
        println!("  clean");
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::FAILURE)
    }
}
