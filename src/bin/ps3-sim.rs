//! `ps3-sim` — the deterministic simulation & fault-injection harness.
//!
//! Runs the full acquisition→stream→archive stack under seeded
//! byte-level fault plans and checks global invariants. Every failure
//! replays bit-exactly from `(scenario, seed, plan)`.
//!
//! ```text
//! ps3-sim <command> [options]
//!
//! commands:
//!   sweep    [--seeds N] [--start S] [--scenario NAME] [--out DIR]
//!            run N seeds (default 8) across all scenarios, shrink
//!            failures, write one JSON artifact per failure
//!   run      --seed N [--scenario NAME] [--plan P] [--sabotage X]
//!            one run; prints the report, exits nonzero on violations
//!   replay   --seed N [--scenario NAME] [--plan P] [--sabotage X]
//!            run twice and verify the fingerprints are identical
//!   list     print known scenarios and sabotage modes
//!
//! options:
//!   --scenario NAME   pipeline | device-crash | tcp-faults | archive-crash |
//!                     tsdb | fleet | c10k | probes
//!   --plan P          compact plan, e.g. drop@4096,flip@5000:3 (- = empty)
//!   --sabotage X      none | uncounted-drop | unsealed-tail
//!   --out DIR         where sweep writes failure-*.json + summary.json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use powersensor3::sim::{runner, Sabotage, ScenarioReport, SimPlan, SCENARIOS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("usage: ps3-sim <sweep|run|replay|list> [options]");
        return ExitCode::FAILURE;
    };

    let scenario = flag_value(&args, "--scenario");
    let plan = match flag_value(&args, "--plan").map(|p| SimPlan::parse(&p)) {
        None => None,
        Some(Ok(plan)) => Some(plan),
        Some(Err(e)) => {
            eprintln!("ps3-sim: bad --plan: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sabotage = match flag_value(&args, "--sabotage") {
        None => Sabotage::None,
        Some(name) => {
            match Sabotage::parse(&name) {
                Some(s) => s,
                None => {
                    eprintln!("ps3-sim: unknown --sabotage '{name}' (none, uncounted-drop, unsealed-tail)");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    match command {
        "list" => {
            println!("scenarios: {}", SCENARIOS.join(", "));
            println!("sabotage modes: none, uncounted-drop, unsealed-tail");
            ExitCode::SUCCESS
        }
        "sweep" => cmd_sweep(&args, scenario.as_deref(), sabotage),
        "run" => cmd_run(&args, scenario.as_deref(), plan.as_ref(), sabotage),
        "replay" => cmd_replay(&args, scenario.as_deref(), plan.as_ref(), sabotage),
        other => {
            eprintln!("ps3-sim: unknown command '{other}' (sweep, run, replay, list)");
            ExitCode::FAILURE
        }
    }
}

fn cmd_sweep(args: &[String], scenario: Option<&str>, sabotage: Sabotage) -> ExitCode {
    let seeds: u64 = flag_value(args, "--seeds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let start: u64 = flag_value(args, "--start")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let out: Option<PathBuf> = flag_value(args, "--out").map(PathBuf::from);
    let scenarios: Vec<&str> = scenario.map(|s| vec![s]).unwrap_or_default();

    let outcome = match runner::sweep(&scenarios, start..start + seeds, sabotage, out.as_deref()) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("ps3-sim: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = &out {
        if let Err(e) = runner::write_summary(&outcome, dir) {
            eprintln!("ps3-sim: write summary: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "swept {} scenario runs over seeds {}..{}: {} violation(s), {} failing run(s)",
        outcome.scenarios_run,
        start,
        start + seeds,
        outcome.violations,
        outcome.failures.len()
    );
    for failure in &outcome.failures {
        let r = &failure.report;
        println!(
            "  FAIL {} seed {} plan {} ({} violation(s)){}",
            r.scenario,
            r.seed,
            r.plan,
            r.violations.len(),
            failure
                .artifact
                .as_ref()
                .map(|p| format!(" -> {}", p.display()))
                .unwrap_or_default()
        );
        for v in &r.violations {
            println!("       {v}");
        }
    }
    if outcome.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_run(
    args: &[String],
    scenario: Option<&str>,
    plan: Option<&SimPlan>,
    sabotage: Sabotage,
) -> ExitCode {
    let Some(seed) = flag_value(args, "--seed").and_then(|s| s.parse().ok()) else {
        eprintln!("usage: ps3-sim run --seed N [--scenario NAME] [--plan P] [--sabotage X]");
        return ExitCode::FAILURE;
    };
    let scenario = scenario.unwrap_or("pipeline");
    match runner::run_one(scenario, seed, plan, sabotage) {
        Ok(report) => {
            print_report(&report);
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ps3-sim: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_replay(
    args: &[String],
    scenario: Option<&str>,
    plan: Option<&SimPlan>,
    sabotage: Sabotage,
) -> ExitCode {
    let Some(seed) = flag_value(args, "--seed").and_then(|s| s.parse().ok()) else {
        eprintln!("usage: ps3-sim replay --seed N [--scenario NAME] [--plan P] [--sabotage X]");
        return ExitCode::FAILURE;
    };
    let scenario = scenario.unwrap_or("pipeline");
    let first = match runner::run_one(scenario, seed, plan, sabotage) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ps3-sim: {e}");
            return ExitCode::FAILURE;
        }
    };
    let second =
        runner::run_one(scenario, seed, plan, sabotage).expect("scenario ran once already");
    print_report(&first);
    if first.fingerprint == second.fingerprint {
        println!(
            "replay OK: fingerprint {:016x} is identical across two runs",
            first.fingerprint
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "replay MISMATCH: {:016x} vs {:016x} — the run is not deterministic",
            first.fingerprint, second.fingerprint
        );
        ExitCode::FAILURE
    }
}

fn print_report(report: &ScenarioReport) {
    println!(
        "{} seed {} plan {} -> {} frames, fingerprint {:016x}",
        report.scenario, report.seed, report.plan, report.frames, report.fingerprint
    );
    for (k, v) in &report.facts {
        println!("  {k}: {v}");
    }
    if report.violations.is_empty() {
        println!("  invariants: all hold");
    } else {
        for v in &report.violations {
            println!("  VIOLATION {v}");
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
