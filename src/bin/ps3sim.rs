//! `ps3sim` — command-line front end to the simulated PowerSensor3.
//!
//! The real PowerSensor3 ships standalone executables (`psinfo`,
//! `pstest`, `psrun`, `psconfig`); this binary bundles their
//! equivalents behind one CLI, each against a selectable simulated
//! setup:
//!
//! ```text
//! ps3sim <command> [--setup bench|gpu|amd|jetson|ssd|nic] [--seed N]
//!
//! commands:
//!   info                          sensor configuration + live readings
//!   test                          energy/power at increasing intervals
//!   run [--millis N]              measure a canned workload (default 500 ms)
//!   dump [--millis N] [--out F]   continuous-mode capture to a dump file
//!   parse <file>                  analyse a dump file (stats, markers)
//!   calibrate                     one-time calibration on the bench setup
//!   version                       firmware version string
//! ```

use std::process::ExitCode;

use powersensor3::analysis::{parse_dump, SampleStats};
use powersensor3::core::{tools, PowerSensor};
use powersensor3::duts::{
    BenchSetup, Dut, FioJob, GpuKernel, GpuSpec, IoPattern, JetsonSpec, LoadProgram, NicModel,
    NicSpec, RailId, SsdSpec, TrafficLoad,
};
use powersensor3::sensors::ModuleKind;
use powersensor3::testbed::setups;
use powersensor3::testbed::{Testbed, TestbedBuilder};
use powersensor3::units::{Amps, SimDuration, Volts};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprintln!("usage: ps3sim <info|test|run|dump|parse|calibrate|version> [options]");
        return ExitCode::FAILURE;
    };
    let setup = flag_value(&args, "--setup").unwrap_or_else(|| "bench".to_owned());
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let millis: u64 = flag_value(&args, "--millis")
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);

    match command {
        "parse" => {
            let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
                eprintln!("usage: ps3sim parse <dump-file>");
                return ExitCode::FAILURE;
            };
            return cmd_parse(path);
        }
        "calibrate" => return cmd_calibrate(seed),
        _ => {}
    }

    let Some(mut rig) = Rig::build(&setup, seed) else {
        eprintln!("unknown setup '{setup}' (expected bench|gpu|amd|jetson|ssd|nic)");
        return ExitCode::FAILURE;
    };
    match command {
        "info" => {
            rig.warm_up();
            println!("{}", tools::info(&rig.ps));
            ExitCode::SUCCESS
        }
        "test" => cmd_test(&mut rig),
        "run" => cmd_run(&mut rig, millis),
        "dump" => {
            let out = flag_value(&args, "--out").unwrap_or_else(|| "ps3sim_dump.txt".into());
            cmd_dump(&mut rig, millis, &out)
        }
        "version" => match rig.ps.firmware_version() {
            Ok(v) => {
                println!("{v}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("version query failed: {e}");
                ExitCode::FAILURE
            }
        },
        other => {
            eprintln!("unknown command '{other}'");
            ExitCode::FAILURE
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Closure advancing a testbed and syncing the host.
type AdvanceFn = Box<dyn FnMut(&PowerSensor, SimDuration)>;

/// A connected testbed of any setup, with a canned workload trigger.
struct Rig {
    ps: PowerSensor,
    advance: AdvanceFn,
    kick: Box<dyn FnMut(SimDuration)>,
    label: String,
}

impl Rig {
    fn build(setup: &str, seed: u64) -> Option<Rig> {
        fn wire<D: Dut + 'static>(
            mut tb: Testbed<D>,
            label: &str,
            kick: impl FnMut(SimDuration) + 'static,
        ) -> Rig {
            let ps = tb.connect().expect("connect to simulated device");
            let label = label.to_owned();
            Rig {
                ps,
                advance: Box::new(move |ps, d| {
                    tb.advance_and_sync(ps, d).expect("advance testbed");
                }),
                kick: Box::new(kick),
                label,
            }
        }

        Some(match setup {
            "bench" => {
                let tb = setups::accuracy_bench(
                    ModuleKind::Slot10A12V,
                    LoadProgram::Constant(Amps::new(4.0)),
                    seed,
                );
                let dut = tb.dut();
                wire(tb, "12 V bench, 4 A constant load", move |_d| {
                    // The "workload": step the load up for a while.
                    dut.lock()
                        .set_program(LoadProgram::Constant(Amps::new(8.0)));
                })
            }
            "gpu" => {
                let tb = setups::gpu_riser(GpuSpec::rtx4000_ada(), seed);
                let dut = tb.dut();
                wire(tb, "RTX 4000 Ada riser", move |d| {
                    dut.lock().launch(GpuKernel::synthetic_fma(d, 8));
                })
            }
            "amd" => {
                let tb = setups::gpu_riser(GpuSpec::w7700(), seed);
                let dut = tb.dut();
                wire(tb, "AMD W7700 riser", move |d| {
                    dut.lock().launch(GpuKernel::synthetic_fma(d, 8));
                })
            }
            "jetson" => {
                let tb = setups::jetson_usbc(JetsonSpec::agx_orin(), seed);
                let dut = tb.dut();
                wire(tb, "Jetson AGX Orin USB-C", move |d| {
                    dut.lock().launch(GpuKernel::synthetic_fma(d, 4));
                })
            }
            "ssd" => {
                let tb = setups::ssd_riser(SsdSpec::samsung_980_pro(), seed);
                let dut = tb.dut();
                wire(tb, "Samsung 980 PRO riser", move |_d| {
                    dut.lock().start_job(FioJob {
                        pattern: IoPattern::RandRead { block_kib: 128 },
                        queue_depth: 32,
                    });
                })
            }
            "nic" => {
                let nic = NicModel::new(NicSpec::hundred_gbe());
                let tb = TestbedBuilder::new(nic)
                    .attach(ModuleKind::Slot10A3V3, RailId::Slot3V3)
                    .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
                    .seed(seed)
                    .build();
                let dut = tb.dut();
                wire(tb, "100 GbE NIC riser", move |_d| {
                    dut.lock().offer(TrafficLoad {
                        gbps: 80.0,
                        packet_bytes: 512,
                    });
                })
            }
            _ => return None,
        })
    }

    fn warm_up(&mut self) {
        (self.advance)(&self.ps, SimDuration::from_millis(10));
    }
}

fn cmd_test(rig: &mut Rig) -> ExitCode {
    println!("pstest on {}:", rig.label);
    let intervals: Vec<SimDuration> = (0..6).map(|i| SimDuration::from_millis(5 << i)).collect();
    let Rig { ps, advance, .. } = rig;
    match tools::pstest(ps, &intervals, |d| advance(ps, d)) {
        Ok(rows) => {
            for row in rows {
                println!("  {row}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pstest failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_run(rig: &mut Rig, millis: u64) -> ExitCode {
    println!("psrun on {} ({} ms workload):", rig.label, millis);
    rig.warm_up();
    let d = SimDuration::from_millis(millis);
    (rig.kick)(d);
    let Rig { ps, advance, .. } = rig;
    let report = tools::psrun(ps, || {
        advance(ps, d + SimDuration::from_millis(20));
    });
    match report {
        Ok(r) => {
            println!("  {r}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("psrun failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_dump(rig: &mut Rig, millis: u64, out: &str) -> ExitCode {
    let file = match std::fs::File::create(out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    rig.warm_up();
    rig.ps.dump_to(file);
    rig.ps.mark('s').expect("marker");
    let d = SimDuration::from_millis(millis);
    (rig.kick)(d);
    (rig.advance)(&rig.ps, d);
    rig.ps.mark('e').expect("marker");
    (rig.advance)(&rig.ps, SimDuration::from_millis(10));
    rig.ps.stop_dump();
    println!(
        "wrote {} ms of {} at 20 kHz to {out} (markers 's' and 'e')",
        millis, rig.label
    );
    ExitCode::SUCCESS
}

fn cmd_parse(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match parse_dump(&text) {
        Ok(dump) => {
            let stats = SampleStats::from_samples(dump.total.powers());
            println!(
                "{} samples over {}, {} pairs, {} markers",
                dump.total.len(),
                dump.total.span(),
                dump.pairs.len(),
                dump.total.markers().len()
            );
            if let Some(s) = stats {
                println!(
                    "power: mean {:.3} W, min {:.3} W, max {:.3} W, std {:.3} W",
                    s.mean, s.min, s.max, s.std
                );
            }
            println!("energy: {:.4} J", dump.total.energy().value());
            for m in dump.total.markers() {
                println!("marker '{}' at {}", m.label, m.time);
            }
            if let Some(window) = dump.total.between_markers('s', 'e') {
                println!(
                    "between 's' and 'e': {:.4} J over {}",
                    window.energy().value(),
                    window.span()
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("parse error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_calibrate(seed: u64) -> ExitCode {
    // Uncalibrated bench, zero current, known voltage → §III-D.
    let bench = BenchSetup::twelve_volt(LoadProgram::Constant(Amps::zero()));
    let mut tb = TestbedBuilder::new(bench)
        .attach(ModuleKind::Slot10A12V, RailId::Ext12V)
        .factory_calibrated(false)
        .seed(seed)
        .build();
    let dut = tb.dut();
    let ps = tb.connect().expect("connect");
    tb.advance_and_sync(&ps, SimDuration::from_millis(5))
        .expect("settle");
    let reference = dut.lock().reference(tb.device_time()).volts;
    println!("calibrating against {reference:.3} reference, 16384 frames...");
    let reports = tools::autocalibrate(
        &ps,
        &[Some(Volts::new(reference.value())), None, None, None],
        16 * 1024,
        |d| tb.advance(d),
    );
    match reports {
        Ok(reports) => {
            for r in reports {
                println!(
                    "pair {}: removed {:+.4} A offset, gain correction {:+.3}%",
                    r.pair,
                    r.current_offset_amps,
                    (r.voltage_gain_correction - 1.0) * 100.0
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("calibration failed: {e}");
            ExitCode::FAILURE
        }
    }
}
