//! `ps3-streamd` — the PowerSensor3 streaming daemon over a simulated
//! device.
//!
//! Owns the (virtual) sensor and serves its 20 kHz sample stream to
//! any number of TCP subscribers; see `examples/streaming.rs` for the
//! client side. The virtual testbed clock is paced against wall time
//! so remote subscribers observe a live, real-rate stream.
//!
//! ```text
//! ps3-streamd [--bind HOST:PORT] [--setup bench|gpu] [--seed N] [--secs N]
//!             [--persist FILE] [--replay FILE [--speed X]]
//!
//!   --bind     listen address          (default $PS3_BIND, else 127.0.0.1:9421;
//!              --addr is an accepted alias)
//!   --setup    simulated rig           (default bench)
//!   --seed     sensor imperfections    (default 42)
//!   --secs     run duration, 0=forever (default 0)
//!   --persist  archive the live stream to a .ps3a trace store
//!   --replay   serve an archived .ps3a capture instead of a live rig
//!   --speed    replay pacing factor, 0=as fast as possible (default 1)
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use powersensor3::archive::{Archive, ArchiveWriter, ArchiveWriterOptions};
use powersensor3::core::SharedPowerSensor;
use powersensor3::duts::{GpuKernel, GpuSpec, LoadProgram};
use powersensor3::sensors::ModuleKind;
use powersensor3::stream::{resolve_bind, StreamDaemon, StreamDaemonConfig};
use powersensor3::testbed::setups;
use powersensor3::units::{Amps, SimDuration};

/// Wall-clock pacing granularity for the virtual device clock.
const TICK: Duration = Duration::from_millis(50);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: ps3-streamd [--bind HOST:PORT] [--setup bench|gpu] [--seed N] [--secs N]\n\
             \x20                  [--persist FILE] [--replay FILE [--speed X]]\n\
             the listen address falls back to $PS3_BIND, then 127.0.0.1:9421"
        );
        return ExitCode::SUCCESS;
    }
    let addr = resolve_bind(
        flag_value(&args, "--bind").or_else(|| flag_value(&args, "--addr")),
        "127.0.0.1:9421",
    );
    let setup = flag_value(&args, "--setup").unwrap_or_else(|| "bench".to_owned());
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let secs: u64 = flag_value(&args, "--secs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    if let Some(path) = flag_value(&args, "--replay") {
        return run_replay(&path, &addr, &args, secs);
    }

    // Build the simulated rig and a closure that paces its clock.
    let (sensor, mut advance, label): (SharedPowerSensor, AdvanceFn, &str) = match setup.as_str() {
        "bench" => {
            let mut tb = setups::accuracy_bench(
                ModuleKind::Slot10A12V,
                LoadProgram::SquareWave {
                    low: Amps::new(2.0),
                    high: Amps::new(6.0),
                    frequency_hz: 2.0,
                },
                seed,
            );
            let ps = SharedPowerSensor::new(tb.connect().expect("connect"));
            let sensor = ps.clone();
            (
                ps,
                Box::new(move |d| tb.advance_and_sync(&sensor, d).expect("advance")),
                "12 V bench, 2/6 A square wave",
            )
        }
        "gpu" => {
            let mut tb = setups::gpu_riser(GpuSpec::rtx4000_ada(), seed);
            let dut = tb.dut();
            let ps = SharedPowerSensor::new(tb.connect().expect("connect"));
            let sensor = ps.clone();
            let mut next_kick = SimDuration::ZERO;
            let mut elapsed = SimDuration::ZERO;
            (
                ps,
                Box::new(move |d| {
                    // Re-launch a kernel burst every virtual second.
                    if elapsed >= next_kick {
                        dut.lock()
                            .launch(GpuKernel::synthetic_fma(SimDuration::from_millis(600), 8));
                        next_kick = elapsed + SimDuration::from_secs(1);
                    }
                    elapsed += d;
                    tb.advance_and_sync(&sensor, d).expect("advance");
                }),
                "RTX 4000 Ada riser, 600 ms kernel bursts",
            )
        }
        other => {
            eprintln!("unknown setup '{other}' (expected bench|gpu)");
            return ExitCode::FAILURE;
        }
    };

    // Persist mode: archive every acquired frame to a .ps3a trace
    // store alongside serving the live stream.
    let writer = match flag_value(&args, "--persist") {
        Some(path) => {
            match ArchiveWriter::spawn(&path, sensor.configs(), ArchiveWriterOptions::default()) {
                Ok(w) => {
                    w.attach(&sensor);
                    println!("ps3-streamd: persisting to {path}");
                    Some(w)
                }
                Err(e) => {
                    eprintln!("cannot create archive {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    let daemon = match StreamDaemon::start(sensor, &addr[..], StreamDaemonConfig::default()) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{}", powersensor3::stream::bind_error(&addr, &e));
            return ExitCode::FAILURE;
        }
    };
    println!("ps3-streamd: {label}");
    println!(
        "listening on {} (subscribe with powersensor3::stream::StreamClient)",
        daemon.local_addr()
    );

    // Pace the virtual clock against wall time.
    let start = Instant::now();
    let mut ticks = 0u64;
    loop {
        if secs > 0 && start.elapsed() >= Duration::from_secs(secs) {
            break;
        }
        advance(SimDuration::from_nanos(TICK.as_nanos() as u64));
        ticks += 1;
        // Sleep off whatever wall time this tick has not yet used.
        let target = TICK * u32::try_from(ticks).unwrap_or(u32::MAX);
        if let Some(lag) = target.checked_sub(start.elapsed()) {
            std::thread::sleep(lag);
        }
        if ticks.is_multiple_of(200) {
            let s = daemon.stats();
            println!(
                "t={:>5} s  frames={}  subscribers={} (peak {})  accepted={}  gaps={}  evicted={} (gaps {}, stalled {})  sent={} B",
                ticks / 20,
                s.frames_published,
                s.active_subscribers,
                s.active_peak,
                s.accepted,
                s.gap_events,
                s.evicted,
                s.evicted_gaps,
                s.evicted_stalled,
                s.bytes_sent
            );
        }
    }
    let s = daemon.stats();
    println!(
        "done: {} frames served to {} accepted subscribers (peak {} concurrent), {} bytes sent, {} gap events, {} evictions ({} gap-budget, {} stalled-write)",
        s.frames_published,
        s.accepted,
        s.active_peak,
        s.bytes_sent,
        s.gap_events,
        s.evicted,
        s.evicted_gaps,
        s.evicted_stalled
    );
    if let Some(w) = writer {
        match w.finish() {
            Ok(ws) => println!(
                "archived {} frames in {} segments ({} bytes, {} dropped)",
                ws.frames, ws.segments, ws.bytes, ws.dropped
            ),
            Err(e) => {
                eprintln!("archive finalisation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Replay mode: serves an archived capture's frames over the same
/// stream protocol, paced by `--speed` (1 = real rate, 0 = unpaced).
fn run_replay(path: &str, addr: &str, args: &[String], secs: u64) -> ExitCode {
    let speed: f64 = flag_value(args, "--speed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let archive = match Archive::open(path) {
        Ok(a) => Arc::new(a),
        Err(e) => {
            eprintln!("cannot open archive {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let frames = archive.frames();
    let daemon =
        match StreamDaemon::start_replay(archive, None, speed, addr, StreamDaemonConfig::default())
        {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{}", powersensor3::stream::bind_error(addr, &e));
                return ExitCode::FAILURE;
            }
        };
    println!("ps3-streamd: replaying {path} ({frames} frames at {speed}x)");
    println!(
        "listening on {} (subscribe with powersensor3::stream::StreamClient)",
        daemon.local_addr()
    );
    let start = Instant::now();
    let mut last_report = 0u64;
    loop {
        if secs > 0 && start.elapsed() >= Duration::from_secs(secs) {
            break;
        }
        std::thread::sleep(TICK);
        let elapsed = start.elapsed().as_secs();
        if elapsed >= last_report + 10 {
            last_report = elapsed;
            let s = daemon.stats();
            println!(
                "t={elapsed:>5} s  frames={}  subscribers={}  gaps={}",
                s.frames_published, s.active_subscribers, s.gap_events
            );
        }
    }
    let s = daemon.stats();
    println!(
        "done: {} frames served to {} accepted subscribers (peak {} concurrent), {} bytes sent, {} gap events, {} evictions ({} gap-budget, {} stalled-write)",
        s.frames_published,
        s.accepted,
        s.active_peak,
        s.bytes_sent,
        s.gap_events,
        s.evicted,
        s.evicted_gaps,
        s.evicted_stalled
    );
    ExitCode::SUCCESS
}

type AdvanceFn = Box<dyn FnMut(SimDuration)>;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
