//! `ps3-fleet` — many simulated PowerSensor3 rigs behind one
//! coordinator endpoint.
//!
//! ```text
//! ps3-fleet serve  [--rigs N] [--bind HOST:PORT] [--data DIR] [--seed N] [--secs N]
//! ps3-fleet status [--connect HOST:PORT]
//! ps3-fleet watch  [--connect HOST:PORT] [--secs N] [--divisor N]
//! ps3-fleet query  [--data DIR] [--start US] [--end US] [--top K] [--divisor N] [--json]
//!
//!   serve    run N rigs (default 4), archive each to DIR (default ./fleet-data),
//!            and serve rig-routed subscriptions on HOST:PORT
//!            (default $PS3_BIND, else 127.0.0.1:9431)
//!   status   print the per-rig roster of a running coordinator
//!   watch    subscribe fleet-wide to the merged stream for N seconds
//!            (default 2, divisor 20) and report the gap accounting
//!   query    cross-rig aggregates over the archive shards in DIR:
//!            fleet-wide energy/power stats, top-K hottest rigs, and a
//!            rig-joined downsample preview
//! ```

use std::process::ExitCode;
use std::time::{Duration, Instant};

use powersensor3::fleet::{testbed_rig_factory, Fleet, FleetConfig, FleetQuery};
use powersensor3::stream::{
    bind_error, resolve_bind, RigSelector, StreamClient, StreamClientConfig,
};
use powersensor3::units::{SimDuration, SimTime};

/// Wall-clock pacing granularity for the virtual fleet clock.
const TICK: Duration = Duration::from_millis(50);

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    if cmd.is_none() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: ps3-fleet serve  [--rigs N] [--bind HOST:PORT] [--data DIR] [--seed N] [--secs N]\n\
             \x20      ps3-fleet status [--connect HOST:PORT]\n\
             \x20      ps3-fleet watch  [--connect HOST:PORT] [--secs N] [--divisor N]\n\
             \x20      ps3-fleet query  [--data DIR] [--start US] [--end US] [--top K] [--divisor N] [--json]\n\
             the listen address falls back to $PS3_BIND, then 127.0.0.1:9431"
        );
        return ExitCode::SUCCESS;
    }
    match cmd {
        Some("serve") => serve(&args),
        Some("status") => status(&args),
        Some("watch") => watch(&args),
        Some("query") => query(&args),
        Some(other) => {
            eprintln!("unknown subcommand '{other}' (expected serve|status|watch|query)");
            ExitCode::FAILURE
        }
        None => unreachable!("handled above"),
    }
}

fn serve(args: &[String]) -> ExitCode {
    let rigs: u16 = flag_value(args, "--rigs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let addr = resolve_bind(flag_value(args, "--bind"), "127.0.0.1:9431");
    let data = flag_value(args, "--data").unwrap_or_else(|| "fleet-data".to_owned());
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let secs: u64 = flag_value(args, "--secs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if rigs == 0 {
        eprintln!("--rigs must be at least 1");
        return ExitCode::FAILURE;
    }

    let mut fleet = match Fleet::start(
        rigs,
        testbed_rig_factory(seed),
        &addr[..],
        FleetConfig::new(&data),
    ) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{}", bind_error(&addr, &e));
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ps3-fleet: {rigs} rigs, shards under {data}/, listening on {}",
        fleet.local_addr()
    );

    // Pace the virtual fleet clock against wall time (as ps3-streamd
    // does for its single rig).
    let start = Instant::now();
    let mut ticks = 0u64;
    loop {
        if secs > 0 && start.elapsed() >= Duration::from_secs(secs) {
            break;
        }
        fleet.advance(SimDuration::from_nanos(TICK.as_nanos() as u64));
        if let Err(e) = fleet.supervise() {
            eprintln!("rig restart failed: {e}");
            return ExitCode::FAILURE;
        }
        ticks += 1;
        let target = TICK * u32::try_from(ticks).unwrap_or(u32::MAX);
        if let Some(lag) = target.checked_sub(start.elapsed()) {
            std::thread::sleep(lag);
        }
        if ticks.is_multiple_of(200) {
            let s = fleet.stats();
            println!(
                "t={:>5} s  frames={}  subscribers={} (peak {})  accepted={}  gaps={}  evicted={} (gaps {}, stalled {})  sent={} B",
                ticks / 20,
                s.frames_published,
                s.active_subscribers,
                s.active_peak,
                s.accepted,
                s.gap_events,
                s.evicted,
                s.evicted_gaps,
                s.evicted_stalled,
                s.bytes_sent
            );
        }
    }
    let s = fleet.stats();
    print_roster(&fleet.status());
    println!(
        "done: {} frames served to {} accepted subscribers (peak {} concurrent), {} bytes sent, {} gap events, {} evictions ({} gap-budget, {} stalled-write)",
        s.frames_published,
        s.accepted,
        s.active_peak,
        s.bytes_sent,
        s.gap_events,
        s.evicted,
        s.evicted_gaps,
        s.evicted_stalled
    );
    fleet.shutdown();
    ExitCode::SUCCESS
}

fn status(args: &[String]) -> ExitCode {
    let addr = flag_value(args, "--connect").unwrap_or_else(|| "127.0.0.1:9431".to_owned());
    // Any subscription works for control queries; pick the lightest
    // (one rig, heavily downsampled).
    let config = StreamClientConfig {
        rig: Some(RigSelector::One(0)),
        divisor: 20_000,
        ..StreamClientConfig::default()
    };
    let mut client = match StreamClient::connect(&addr[..], config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot reach coordinator at {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.query_fleet(Duration::from_secs(5)) {
        Ok(roster) => {
            print_roster(&roster);
            match client.query_stats(Duration::from_secs(5)) {
                Ok(s) => println!(
                    "stream: {} frames published  {} subscribers (peak {})  {} accepted  {} bytes sent  {} gaps  {} evicted ({} gap-budget, {} stalled-write)",
                    s.frames_published,
                    s.active_subscribers,
                    s.active_peak,
                    s.accepted,
                    s.bytes_sent,
                    s.gap_events,
                    s.evicted,
                    s.evicted_gaps,
                    s.evicted_stalled
                ),
                Err(e) => eprintln!("stream stats query failed: {e}"),
            }
            client.close();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("fleet status query failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn watch(args: &[String]) -> ExitCode {
    let addr = flag_value(args, "--connect").unwrap_or_else(|| "127.0.0.1:9431".to_owned());
    let secs: u64 = flag_value(args, "--secs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let divisor: u32 = flag_value(args, "--divisor")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20)
        .max(1);
    let config = StreamClientConfig {
        rig: Some(RigSelector::All),
        divisor,
        ..StreamClientConfig::default()
    };
    let client = match StreamClient::connect(&addr[..], config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot reach coordinator at {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    std::thread::sleep(Duration::from_secs(secs));
    let mut counts = client.rig_counts();
    counts.sort_by_key(|c| c.rig);
    println!(
        "watched {secs} s at divisor {divisor}: frames={} gaps={} dropped={} rigs={}",
        client.frames_received(),
        client.gap_events(),
        client.dropped_frames(),
        counts.len()
    );
    for c in &counts {
        println!(
            "  rig {:>3}: {:>8} frames  {:>3} gaps  {:>6} dropped",
            c.rig, c.frames, c.gap_events, c.dropped
        );
    }
    if client.is_evicted() {
        eprintln!("evicted by the coordinator: {:?}", client.eviction_reason());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn print_roster(roster: &[powersensor3::stream::RigStatus]) {
    println!("rig   state  restarts  shards      frames  gaps  writer-dropped");
    for rig in roster {
        println!(
            "{:>3}   {:<5}  {:>8}  {:>6}  {:>10}  {:>4}  {:>14}",
            rig.id,
            if rig.alive { "up" } else { "down" },
            rig.restarts,
            rig.shards,
            rig.frames_published,
            rig.gap_events,
            rig.writer_dropped
        );
    }
}

fn query(args: &[String]) -> ExitCode {
    let data = flag_value(args, "--data").unwrap_or_else(|| "fleet-data".to_owned());
    let start = SimTime::from_micros(
        flag_value(args, "--start")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0),
    );
    let end = SimTime::from_micros(
        flag_value(args, "--end")
            .and_then(|s| s.parse().ok())
            .unwrap_or(u64::MAX / 2_000),
    );
    let top: usize = flag_value(args, "--top")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let divisor: u64 = flag_value(args, "--divisor")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let json = args.iter().any(|a| a == "--json");

    let fq = match FleetQuery::open(&data) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("cannot open fleet data dir {data}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (energy, stats, hottest) = match (|| {
        Ok::<_, powersensor3::archive::ArchiveError>((
            fq.total_energy(start, end)?,
            fq.fleet_stats(start, end)?,
            fq.top_k(top, start, end)?,
        ))
    })() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("query failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        let rigs = fq
            .rigs()
            .iter()
            .map(u16::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let tops = hottest
            .iter()
            .map(|r| {
                format!(
                    r#"{{"rig":{},"mean_w":{},"samples":{}}}"#,
                    r.rig,
                    r.mean.value(),
                    r.samples
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        println!(
            r#"{{"shards":{},"rigs":[{rigs}],"energy_j":{},"samples":{},"mean_w":{},"min_w":{},"max_w":{},"top":[{tops}]}}"#,
            fq.shard_count(),
            energy.value(),
            stats.count,
            stats.mean_w().unwrap_or(0.0),
            stats.min_w,
            stats.max_w,
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "fleet of {} rig(s), {} shard(s) under {data}/",
        fq.rigs().len(),
        fq.shard_count()
    );
    println!(
        "energy {:.6} J over {} samples (mean {:.3} W, min {:.3} W, max {:.3} W)",
        energy.value(),
        stats.count,
        stats.mean_w().unwrap_or(0.0),
        stats.min_w,
        stats.max_w
    );
    println!("top {} rigs by mean power:", hottest.len());
    for r in &hottest {
        println!(
            "  rig {:>3}: {:>9.3} W over {} samples",
            r.rig,
            r.mean.value(),
            r.samples
        );
    }
    if divisor > 0 {
        match fq.joined_downsample(start, end, divisor) {
            Ok(joined) => {
                println!(
                    "joined downsample (divisor {divisor}): {} rows x {} rigs",
                    joined.rows.len(),
                    joined.rigs.len()
                );
                for row in joined.rows.iter().take(5) {
                    let cells = row
                        .power
                        .iter()
                        .map(|p| p.map_or("     -".to_owned(), |w| format!("{:6.2}", w.value())))
                        .collect::<Vec<_>>()
                        .join(" ");
                    println!("  t={:>12} us  {cells}", row.time.as_micros());
                }
            }
            Err(e) => {
                eprintln!("joined downsample failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
