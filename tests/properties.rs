//! Property-based tests (proptest) of the core invariants: wire
//! protocol round-trips, timestamp unwrapping, EEPROM records,
//! statistics/averaging identities, Pareto-front correctness, and the
//! error-budget formula.

use proptest::prelude::*;

use powersensor3::analysis::{
    block_average, pareto_front_indices, ParetoPoint, SampleStats, Trace,
};
use powersensor3::firmware::protocol::{
    Command, CommandParser, Packet, StreamDecoder, TimestampUnwrapper,
};
use powersensor3::firmware::SensorConfig;
use powersensor3::sensors::budget::power_error;
use powersensor3::transport::{
    FaultPlan, FaultyTransport, Transport, TransportError, VirtualSerial,
};
use powersensor3::units::{Amps, SimTime, Volts, Watts};

proptest! {
    #[test]
    fn packet_roundtrip(sensor in 0u8..=7, value in 0u16..1024, marker: bool) {
        prop_assume!(!(marker && sensor == 7));
        let p = Packet::Sample { sensor, marker, value };
        prop_assert_eq!(Packet::decode(p.encode()).unwrap(), p);
    }

    #[test]
    fn timestamp_roundtrip(micros in 0u16..1024) {
        let p = Packet::Timestamp { micros };
        prop_assert_eq!(Packet::decode(p.encode()).unwrap(), p);
    }

    #[test]
    fn decoder_recovers_after_arbitrary_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
        value in 0u16..1024,
    ) {
        // After any garbage prefix, a valid packet pair must decode —
        // possibly after one sacrificial packet while framing recovers.
        let mut bytes = garbage;
        let a = Packet::Sample { sensor: 1, marker: false, value };
        let b = Packet::Sample { sensor: 2, marker: false, value };
        bytes.extend_from_slice(&a.encode());
        bytes.extend_from_slice(&b.encode());
        let mut dec = StreamDecoder::new();
        let packets = dec.push_slice(&bytes);
        prop_assert!(packets.contains(&b), "at least the second packet survives");
    }

    #[test]
    fn decoder_identical_regardless_of_chunking(
        packets in proptest::collection::vec((0u8..=6, 0u16..1024), 1..32),
        split in 1usize..16,
    ) {
        let mut bytes = Vec::new();
        for &(sensor, value) in &packets {
            bytes.extend_from_slice(&Packet::Sample { sensor, marker: false, value }.encode());
        }
        let mut whole = StreamDecoder::new();
        let all_at_once = whole.push_slice(&bytes);
        let mut chunked = StreamDecoder::new();
        let mut chunked_out = Vec::new();
        for chunk in bytes.chunks(split) {
            chunked_out.extend(chunked.push_slice(chunk));
        }
        prop_assert_eq!(all_at_once, chunked_out);
    }

    #[test]
    fn unwrapper_is_monotonic_under_regular_frames(
        start in 0u64..100_000,
        steps in proptest::collection::vec(1u64..900, 1..200),
    ) {
        let mut u = TimestampUnwrapper::new();
        let mut t = start;
        let mut last = 0u64;
        for (i, step) in steps.iter().enumerate() {
            let raw = (t % 1024) as u16;
            let abs = u.unwrap(raw);
            if i > 0 {
                prop_assert!(abs >= last, "time went backwards: {abs} < {last}");
            }
            last = abs;
            t += step; // any inter-frame gap below the 1024 µs wrap
        }
    }

    #[test]
    fn sensor_config_roundtrip(
        name in "[a-zA-Z0-9 _-]{0,16}",
        vref in 0.1f32..10.0,
        gain in 0.001f32..100.0,
        enabled: bool,
    ) {
        let cfg = SensorConfig::new(&name, vref, gain, enabled);
        let round = SensorConfig::from_wire(&cfg.to_wire()).unwrap();
        prop_assert_eq!(round, cfg);
    }

    #[test]
    fn command_stream_roundtrip(
        cmds in proptest::collection::vec(0usize..6, 1..20),
    ) {
        let palette = [
            Command::StartStreaming,
            Command::StopStreaming,
            Command::Marker,
            Command::Version,
            Command::ReadConfig,
            Command::WriteConfig {
                sensor: 3,
                config: SensorConfig::new("x", 3.3, 0.12, true),
            },
        ];
        let expect: Vec<Command> = cmds.iter().map(|&i| palette[i].clone()).collect();
        let mut bytes = Vec::new();
        for c in &expect {
            bytes.extend_from_slice(&c.encode());
        }
        let mut parser = CommandParser::new();
        prop_assert_eq!(parser.push_slice(&bytes), expect);
    }

    #[test]
    fn block_average_preserves_mean(
        samples in proptest::collection::vec(-1e6f64..1e6, 1..500),
        block in 1usize..20,
    ) {
        prop_assume!(samples.len() >= block);
        let trimmed = &samples[..(samples.len() / block) * block];
        let avg = block_average(trimmed, block);
        let mean_raw = trimmed.iter().sum::<f64>() / trimmed.len() as f64;
        let mean_avg = avg.iter().sum::<f64>() / avg.len() as f64;
        prop_assert!((mean_raw - mean_avg).abs() < 1e-6 * (1.0 + mean_raw.abs()));
    }

    #[test]
    fn block_average_never_exceeds_extremes(
        samples in proptest::collection::vec(-1e3f64..1e3, 4..200),
        block in 1usize..8,
    ) {
        prop_assume!(samples.len() >= block);
        let stats = SampleStats::from_samples(samples.iter().copied()).unwrap();
        for v in block_average(&samples, block) {
            prop_assert!(v >= stats.min - 1e-9 && v <= stats.max + 1e-9);
        }
    }

    #[test]
    fn stats_bounds_are_consistent(
        samples in proptest::collection::vec(-1e4f64..1e4, 1..300),
    ) {
        let s = SampleStats::from_samples(samples.iter().copied()).unwrap();
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std >= 0.0);
        prop_assert!(s.peak_to_peak() >= 0.0);
        prop_assert!(s.rms + 1e-9 >= s.mean.abs());
        prop_assert_eq!(s.count, samples.len());
    }

    #[test]
    fn pareto_front_is_exactly_the_nondominated_set(
        points in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..60),
    ) {
        let pts: Vec<ParetoPoint> = points.iter().map(|&(x, y)| ParetoPoint::new(x, y)).collect();
        let front = pareto_front_indices(&pts);
        for (i, p) in pts.iter().enumerate() {
            let dominated = pts
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && q.dominates(p));
            prop_assert_eq!(
                front.contains(&i),
                !dominated,
                "index {} misclassified", i
            );
        }
    }

    #[test]
    fn power_error_formula_is_monotonic(
        u in 0.1f64..50.0,
        i in 0.1f64..50.0,
        eu in 0.0f64..1.0,
        ei in 0.0f64..1.0,
        bump in 0.001f64..1.0,
    ) {
        let base = power_error(Volts::new(u), Amps::new(i), Volts::new(eu), Amps::new(ei));
        let worse = power_error(
            Volts::new(u),
            Amps::new(i),
            Volts::new(eu + bump),
            Amps::new(ei + bump),
        );
        prop_assert!(worse >= base);
    }

    #[test]
    fn decoder_survives_faulty_transport_and_resyncs(
        frames in proptest::collection::vec((0u16..1024, 0u16..1024), 1..80),
        drop_p in 0.0f64..0.05,
        corrupt_p in 0.0f64..0.05,
        seed in 0u64..1_000_000,
        chunk in 1usize..64,
        tail in 0u16..1024,
    ) {
        // A frame stream (timestamp + two samples each) crosses a
        // lossy, bit-flipping link and is read in arbitrary partial
        // chunks. The decoder must never panic, never invent more
        // packets than the byte count allows, and resynchronise once
        // clean bytes resume.
        let (host, device) = VirtualSerial::pair();
        let plan = FaultPlan {
            drop_probability: drop_p,
            corrupt_probability: corrupt_p,
        };
        let faulty = FaultyTransport::new(host, plan, seed);
        let mut bytes = Vec::new();
        for (i, &(v1, v2)) in frames.iter().enumerate() {
            let micros = (i as u64 * 50 % 1024) as u16;
            bytes.extend_from_slice(&Packet::Timestamp { micros }.encode());
            bytes.extend_from_slice(&Packet::Sample { sensor: 0, marker: false, value: v1 }.encode());
            bytes.extend_from_slice(&Packet::Sample { sensor: 1, marker: false, value: v2 }.encode());
        }
        device.write_all(&bytes).unwrap();
        drop(device);

        let mut dec = StreamDecoder::new();
        let mut unwrapper = TimestampUnwrapper::new();
        let mut decoded = 0usize;
        let mut buf = vec![0u8; chunk];
        loop {
            match faulty.read(&mut buf, None) {
                Ok(n) => {
                    for p in dec.push_slice(&buf[..n]) {
                        decoded += 1;
                        if let Packet::Timestamp { micros } = p {
                            // Feeding corrupted timestamps must not panic.
                            let _ = unwrapper.unwrap(micros);
                        }
                    }
                }
                Err(TransportError::Disconnected) => break,
                Err(e) => return Err(TestCaseError::fail(format!("transport error: {e}"))),
            }
        }
        // Faults only remove or mangle bytes, never add: the decoder
        // can at most see the packets that were sent.
        prop_assert!(decoded <= frames.len() * 3);
        if drop_p == 0.0 && corrupt_p == 0.0 {
            prop_assert_eq!(decoded, frames.len() * 3);
        }

        // Resync: however mangled the stream left the decoder, a clean
        // packet pair pushed afterwards decodes — at most the first
        // packet is sacrificed to framing recovery.
        let a = Packet::Sample { sensor: 2, marker: false, value: tail };
        let b = Packet::Sample { sensor: 3, marker: false, value: 1023 - tail };
        let mut clean = Vec::new();
        clean.extend_from_slice(&a.encode());
        clean.extend_from_slice(&b.encode());
        let recovered = dec.push_slice(&clean);
        prop_assert!(recovered.contains(&b), "decoder failed to resync: {recovered:?}");
    }

    #[test]
    fn trace_energy_bounded_by_extremes(
        powers in proptest::collection::vec(0.0f64..500.0, 2..200),
    ) {
        let mut trace = Trace::new();
        for (k, p) in powers.iter().enumerate() {
            trace.push(SimTime::from_micros(k as u64 * 50), Watts::new(*p));
        }
        let span_s = trace.span().as_secs_f64();
        let stats = SampleStats::from_samples(powers.iter().copied()).unwrap();
        let e = trace.energy().value();
        prop_assert!(e >= stats.min * span_s - 1e-9);
        prop_assert!(e <= stats.max * span_s + 1e-9);
    }
}
