//! Integration tests of the §III-D calibration procedure against the
//! simulated bench supply.

use powersensor3::core::{calibrate_pair, tools};
use powersensor3::duts::{BenchSetup, LoadProgram, RailId};
use powersensor3::sensors::ModuleKind;
use powersensor3::testbed::TestbedBuilder;
use powersensor3::units::{Amps, SimDuration, Volts};

fn uncalibrated_bench(seed: u64) -> powersensor3::testbed::Testbed<BenchSetup> {
    let bench = BenchSetup::twelve_volt(LoadProgram::Constant(Amps::zero()));
    TestbedBuilder::new(bench)
        .attach(ModuleKind::Slot10A12V, RailId::Ext12V)
        .factory_calibrated(false)
        .seed(seed)
        .build()
}

#[test]
fn calibration_reduces_error_by_an_order_of_magnitude() {
    // Seed chosen so the factory-fresh module draws a large Hall offset
    // and gain error (~3 W at 8 A): the "order of magnitude" criterion
    // then sits well clear of the ~0.3 W single-LSB quantization floor.
    let mut tb = uncalibrated_bench(99);
    let bench = tb.dut();
    let ps = tb.connect().unwrap();

    let measure_error = |amps: f64| -> f64 {
        bench
            .lock()
            .set_program(LoadProgram::Constant(Amps::new(amps)));
        tb.advance_and_sync(&ps, SimDuration::from_millis(20))
            .unwrap();
        let truth = bench.lock().reference(tb.device_time()).watts().value();
        ps.read().total_watts().value() - truth
    };

    let before = measure_error(8.0);
    // A factory-fresh Hall offset of up to ±0.3 A at 12 V plus up to
    // ±2 % gain error is watts of error.
    assert!(before.abs() > 0.3, "seed produced no offset? err {before}");

    // Calibrate: unload, reference the supply voltage.
    bench
        .lock()
        .set_program(LoadProgram::Constant(Amps::zero()));
    tb.advance_and_sync(&ps, SimDuration::from_millis(5))
        .unwrap();
    let reference = bench.lock().reference(tb.device_time()).volts;
    let frames = 16 * 1024;
    let report = std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            calibrate_pair(
                &ps,
                0,
                Volts::new(reference.value()),
                frames,
                std::time::Duration::from_secs(60),
            )
        });
        tb.advance(SimDuration::from_micros(frames as u64 * 50 + 10_000));
        worker.join().unwrap()
    })
    .unwrap();

    assert_eq!(report.pair, 0);
    assert!(report.current_offset_amps.abs() <= 0.31);
    assert!((report.voltage_gain_correction - 1.0).abs() <= 0.025);

    let after = measure_error(8.0);
    assert!(
        after.abs() < before.abs() / 5.0,
        "before {before:+.3} W, after {after:+.3} W"
    );
    assert!(after.abs() < 0.4, "residual {after:+.3} W");
}

#[test]
fn calibration_survives_reconnect() {
    // Corrections live in the device EEPROM: a new host session reads
    // them back.
    let mut tb = uncalibrated_bench(31);
    let bench = tb.dut();
    let ps = tb.connect().unwrap();
    tb.advance_and_sync(&ps, SimDuration::from_millis(5))
        .unwrap();
    let reference = bench.lock().reference(tb.device_time()).volts;
    let frames = 4096;
    let report = std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            calibrate_pair(
                &ps,
                0,
                Volts::new(reference.value()),
                frames,
                std::time::Duration::from_secs(60),
            )
        });
        tb.advance(SimDuration::from_micros(frames as u64 * 50 + 10_000));
        worker.join().unwrap()
    })
    .unwrap();

    // The host's view matches what it wrote.
    let configs = ps.configs();
    assert_eq!(configs[0], report.new_current_config);
    assert_eq!(configs[1], report.new_voltage_config);
}

#[test]
fn autocalibrate_skips_unpopulated_pairs() {
    let mut tb = uncalibrated_bench(8);
    let bench = tb.dut();
    let ps = tb.connect().unwrap();
    tb.advance_and_sync(&ps, SimDuration::from_millis(5))
        .unwrap();
    let reference = bench.lock().reference(tb.device_time()).volts;
    let reports = tools::autocalibrate(
        &ps,
        &[
            Some(Volts::new(reference.value())),
            Some(Volts::new(12.0)), // pair 1 is not populated
            None,
            None,
        ],
        2048,
        |d| tb.advance(d),
    )
    .unwrap();
    assert_eq!(reports.len(), 1, "only the populated pair calibrates");
    assert_eq!(reports[0].pair, 0);
}

#[test]
fn invalid_pair_is_rejected() {
    let mut tb = uncalibrated_bench(9);
    let ps = tb.connect().unwrap();
    let err = calibrate_pair(
        &ps,
        7,
        Volts::new(12.0),
        16,
        std::time::Duration::from_secs(1),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        powersensor3::core::PowerSensorError::InvalidSensor(7)
    ));
}
