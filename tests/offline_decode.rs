//! Capture-once / decode-anywhere: a live session recorded at the
//! transport level must decode offline to the same measurements the
//! live host produced.

use powersensor3::core::{decode_stream, PowerSensor};
use powersensor3::firmware::{Device, Eeprom, SensorConfig};
use powersensor3::transport::{RecordingTransport, Transport, TransportError, VirtualSerial};
use powersensor3::units::{SimDuration, SimTime};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Adapter exposing a shared `RecordingTransport` as a `Transport` by
/// value (the host consumes its transport; the test keeps a handle to
/// read the recording afterwards).
struct ArcTransport(Arc<RecordingTransport<powersensor3::transport::SerialEndpoint>>);

impl Transport for ArcTransport {
    fn write_all(&self, bytes: &[u8]) -> Result<(), TransportError> {
        self.0.write_all(bytes)
    }
    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> Result<usize, TransportError> {
        self.0.read(buf, timeout)
    }
    fn available(&self) -> usize {
        self.0.available()
    }
}

#[test]
fn recorded_session_decodes_to_live_results() {
    // Device thread: exactly 2 A at 12 V on pair 0.
    let (host_end, dev_end) = VirtualSerial::pair();
    let mut eeprom = Eeprom::new();
    eeprom.write(0, SensorConfig::new("I0", 3.3, 0.12, true));
    eeprom.write(1, SensorConfig::new("U0", 3.3, 5.0, true));
    let target = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let (t, s) = (Arc::clone(&target), Arc::clone(&stop));
    let device = std::thread::spawn(move || {
        let mut dev = Device::new(
            |ch: usize, _t: SimTime| match ch {
                0 => 1.65 + 2.0 * 0.12,
                1 => 12.0 / 5.0,
                _ => 0.0,
            },
            eeprom,
        );
        while !s.load(Ordering::SeqCst) {
            let target = SimTime::from_nanos(t.load(Ordering::SeqCst));
            if dev.clock() < target {
                dev.run_until(&dev_end, target);
            } else {
                dev.process_commands(&dev_end);
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    });

    // Live session through a recorder we keep a handle to.
    let recorder = Arc::new(RecordingTransport::new(host_end));
    let ps = PowerSensor::connect(ArcTransport(Arc::clone(&recorder))).unwrap();
    let configs = ps.configs();
    ps.begin_trace();
    target.fetch_add(SimDuration::from_millis(100).as_nanos(), Ordering::SeqCst);
    ps.wait_for_frames(1990, Duration::from_secs(30)).unwrap();
    let live_trace = ps.end_trace();
    stop.store(true, Ordering::SeqCst);
    device.join().unwrap();
    drop(ps);

    // Offline decode of the raw byte capture. The recording starts
    // with the connect-time config response; the stream decoder's
    // framing bits carry it past those bytes.
    let capture = recorder.received();
    assert!(capture.len() > 1990 * 6, "capture has the stream bytes");
    let decoded = decode_stream(&capture, &configs);

    assert!(
        decoded.frames as usize >= live_trace.len() - 2,
        "offline {} vs live {}",
        decoded.frames,
        live_trace.len()
    );
    let offline_mean = decoded.total.mean_power().unwrap().value();
    let live_mean = live_trace.mean_power().unwrap().value();
    assert!(
        (offline_mean - live_mean).abs() < 0.05,
        "offline {offline_mean} vs live {live_mean}"
    );
    assert!((offline_mean - 24.0).abs() < 0.3);
    // Offline trapezoid energy over the same span matches the live
    // trace's integral.
    let live_energy = live_trace.energy().value();
    let offline_energy = decoded.total.energy().value();
    assert!(
        (live_energy - offline_energy).abs() < 0.02 * live_energy,
        "live {live_energy} J vs offline {offline_energy} J"
    );
}
