//! Integration tests of the `ps3sim` CLI binary (spawned as a real
//! process, like a user would run it).

use std::process::Command;

fn ps3sim(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ps3sim"))
        .args(args)
        .output()
        .expect("spawn ps3sim");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (_, err, ok) = ps3sim(&[]);
    assert!(!ok);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_setup_is_rejected() {
    let (_, err, ok) = ps3sim(&["info", "--setup", "toaster"]);
    assert!(!ok);
    assert!(err.contains("unknown setup"), "{err}");
}

#[test]
fn info_shows_gpu_sensor_pairs() {
    let (out, _, ok) = ps3sim(&["info", "--setup", "gpu"]);
    assert!(ok);
    assert!(out.contains("Slot-3V3-10A"), "{out}");
    assert!(out.contains("PCIe-8pin-20A"), "{out}");
    assert!(out.contains("total:"), "{out}");
}

#[test]
fn version_reports_firmware_string() {
    let (out, _, ok) = ps3sim(&["version"]);
    assert!(ok);
    assert!(out.contains("PowerSensor3-rs"), "{out}");
}

#[test]
fn run_measures_a_workload() {
    let (out, _, ok) = ps3sim(&["run", "--setup", "bench", "--millis", "50"]);
    assert!(ok);
    assert!(out.contains("J over"), "{out}");
    assert!(out.contains("avg"), "{out}");
}

#[test]
fn dump_then_parse_round_trips() {
    let dir = std::env::temp_dir().join("ps3sim_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dump.txt");
    let path_s = path.to_str().unwrap();
    let (out, err, ok) = ps3sim(&["dump", "--setup", "gpu", "--millis", "100", "--out", path_s]);
    assert!(ok, "dump failed: {out} {err}");
    let (out, err, ok) = ps3sim(&["parse", path_s]);
    assert!(ok, "parse failed: {err}");
    assert!(out.contains("samples over"), "{out}");
    assert!(out.contains("marker 's'"), "{out}");
    assert!(out.contains("between 's' and 'e'"), "{out}");
    std::fs::remove_file(path).unwrap();
}

#[test]
fn calibrate_reports_corrections() {
    let (out, err, ok) = ps3sim(&["calibrate", "--seed", "7"]);
    assert!(ok, "{err}");
    assert!(out.contains("pair 0: removed"), "{out}");
    assert!(out.contains("gain correction"), "{out}");
}

#[test]
fn test_command_prints_interval_rows() {
    let (out, _, ok) = ps3sim(&["test", "--setup", "ssd"]);
    assert!(ok);
    // Six exponentially growing intervals.
    assert!(out.matches(" J ").count() >= 6, "{out}");
}

// ---------------------------------------------------------------------------
// ps3-arc: the archive store CLI.
// ---------------------------------------------------------------------------

fn ps3arc(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ps3-arc"))
        .args(args)
        .output()
        .expect("spawn ps3-arc");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn arc_no_args_prints_usage_and_fails() {
    let (_, err, ok) = ps3arc(&[]);
    assert!(!ok);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn arc_record_cat_matches_live_dump_and_queries_work() {
    let dir = std::env::temp_dir().join("ps3arc_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let arc = dir.join("capture.ps3a");
    let dump = dir.join("capture-dump.txt");
    let (arc_s, dump_s) = (arc.to_str().unwrap(), dump.to_str().unwrap());

    let (out, err, ok) = ps3arc(&[
        "record",
        "--out",
        arc_s,
        "--dump",
        dump_s,
        "--frames",
        "2000",
        "--seed",
        "5",
        "--segment-frames",
        "512",
    ]);
    assert!(ok, "record failed: {out} {err}");
    assert!(out.contains("recorded 2000 frames"), "{out}");

    // `cat` reproduces the live continuous-mode dump byte for byte.
    let (cat, err, ok) = ps3arc(&["cat", arc_s]);
    assert!(ok, "{err}");
    let live = std::fs::read_to_string(&dump).unwrap();
    assert_eq!(cat, live, "archived cat differs from live dump");
    assert!(cat.ends_with("# end frames=2000\n"), "missing seal");

    let (info, _, ok) = ps3arc(&["info", arc_s]);
    assert!(ok);
    assert!(info.contains("2000 frames"), "{info}");
    assert!(info.contains("'k'") && info.contains("'e'"), "{info}");

    let (stats, _, ok) = ps3arc(&["stats", arc_s]);
    assert!(ok);
    assert!(stats.contains("2000 samples"), "{stats}");
    assert!(stats.contains("energy"), "{stats}");

    let (csv, _, ok) = ps3arc(&["export-csv", arc_s, "--divisor", "100"]);
    assert!(ok);
    assert!(csv.starts_with("t_us,power_w\n"), "{csv}");
    assert_eq!(csv.lines().count(), 1 + 2000 / 100, "{csv}");

    let (verify, _, ok) = ps3arc(&["verify", arc_s]);
    assert!(ok, "verify should pass on an intact archive: {verify}");
    assert!(verify.contains("clean"), "{verify}");

    // A torn tail (as a crash would leave) fails verify but the
    // sealed prefix still opens and serves frames.
    let torn = dir.join("torn.ps3a");
    let bytes = std::fs::read(&arc).unwrap();
    std::fs::write(&torn, &bytes[..bytes.len() - 21]).unwrap();
    let torn_s = torn.to_str().unwrap();
    let (verify, _, ok) = ps3arc(&["verify", torn_s]);
    assert!(!ok, "verify must fail on a torn archive: {verify}");
    assert!(verify.contains("TORN TAIL"), "{verify}");
    let (info, _, ok) = ps3arc(&["info", torn_s]);
    assert!(ok, "info must still open a torn archive");
    assert!(info.contains("unsealed trailing bytes ignored"), "{info}");

    for f in [&arc, &dump, &torn, &dir.join("capture.ps3x")] {
        std::fs::remove_file(f).ok();
    }
}
