//! Integration tests of the `ps3sim` CLI binary (spawned as a real
//! process, like a user would run it).

use std::process::Command;

fn ps3sim(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_ps3sim"))
        .args(args)
        .output()
        .expect("spawn ps3sim");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (_, err, ok) = ps3sim(&[]);
    assert!(!ok);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_setup_is_rejected() {
    let (_, err, ok) = ps3sim(&["info", "--setup", "toaster"]);
    assert!(!ok);
    assert!(err.contains("unknown setup"), "{err}");
}

#[test]
fn info_shows_gpu_sensor_pairs() {
    let (out, _, ok) = ps3sim(&["info", "--setup", "gpu"]);
    assert!(ok);
    assert!(out.contains("Slot-3V3-10A"), "{out}");
    assert!(out.contains("PCIe-8pin-20A"), "{out}");
    assert!(out.contains("total:"), "{out}");
}

#[test]
fn version_reports_firmware_string() {
    let (out, _, ok) = ps3sim(&["version"]);
    assert!(ok);
    assert!(out.contains("PowerSensor3-rs"), "{out}");
}

#[test]
fn run_measures_a_workload() {
    let (out, _, ok) = ps3sim(&["run", "--setup", "bench", "--millis", "50"]);
    assert!(ok);
    assert!(out.contains("J over"), "{out}");
    assert!(out.contains("avg"), "{out}");
}

#[test]
fn dump_then_parse_round_trips() {
    let dir = std::env::temp_dir().join("ps3sim_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dump.txt");
    let path_s = path.to_str().unwrap();
    let (out, err, ok) = ps3sim(&["dump", "--setup", "gpu", "--millis", "100", "--out", path_s]);
    assert!(ok, "dump failed: {out} {err}");
    let (out, err, ok) = ps3sim(&["parse", path_s]);
    assert!(ok, "parse failed: {err}");
    assert!(out.contains("samples over"), "{out}");
    assert!(out.contains("marker 's'"), "{out}");
    assert!(out.contains("between 's' and 'e'"), "{out}");
    std::fs::remove_file(path).unwrap();
}

#[test]
fn calibrate_reports_corrections() {
    let (out, err, ok) = ps3sim(&["calibrate", "--seed", "7"]);
    assert!(ok, "{err}");
    assert!(out.contains("pair 0: removed"), "{out}");
    assert!(out.contains("gain correction"), "{out}");
}

#[test]
fn test_command_prints_interval_rows() {
    let (out, _, ok) = ps3sim(&["test", "--setup", "ssd"]);
    assert!(ok);
    // Six exponentially growing intervals.
    assert!(out.matches(" J ").count() >= 6, "{out}");
}
