//! Failure-injection tests: the host library must survive a noisy or
//! lossy USB link (resynchronising on the protocol framing bits) and
//! react sanely to a vanished device.
//!
//! These tests wire the fault injector between a raw device thread and
//! the host, bypassing the Testbed convenience layer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use powersensor3::core::PowerSensor;
use powersensor3::firmware::{Device, Eeprom, SensorConfig};
use powersensor3::transport::{FaultPlan, FaultyTransport, VirtualSerial};
use powersensor3::units::{SimDuration, SimTime};

/// Spawns a device thread producing a 2 A / 12 V signal on pair 0,
/// returning the host-side endpoint and clock controls.
fn spawn_device() -> (
    powersensor3::transport::SerialEndpoint,
    Arc<AtomicU64>,
    Arc<AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    let (host_end, dev_end) = VirtualSerial::pair();
    let mut eeprom = Eeprom::new();
    eeprom.write(0, SensorConfig::new("I0", 3.3, 0.12, true));
    eeprom.write(1, SensorConfig::new("U0", 3.3, 5.0, true));
    let target = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let t = Arc::clone(&target);
    let s = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        let mut dev = Device::new(
            |ch: usize, _t: SimTime| -> f64 {
                match ch {
                    0 => 1.65 + 2.0 * 0.12,
                    1 => 12.0 / 5.0,
                    _ => 0.0,
                }
            },
            eeprom,
        );
        while !s.load(Ordering::SeqCst) {
            let target = SimTime::from_nanos(t.load(Ordering::SeqCst));
            if dev.clock() < target {
                dev.run_until(&dev_end, target);
            } else {
                dev.process_commands(&dev_end);
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    });
    (host_end, target, stop, handle)
}

fn wait_frames(ps: &PowerSensor, n: u64) {
    ps.wait_for_frames(n, Duration::from_secs(30)).unwrap();
}

#[test]
fn host_survives_corrupted_stream() {
    let (host_end, target, stop, handle) = spawn_device();
    // One byte in a thousand gets a flipped bit.
    let faulty = FaultyTransport::new(host_end, FaultPlan::NOISY, 42);
    let ps = PowerSensor::connect(faulty).unwrap();
    target.fetch_add(SimDuration::from_millis(500).as_nanos(), Ordering::SeqCst);
    wait_frames(&ps, 9_000);
    let state = ps.read();
    // Despite corruption the bulk of the frames decode and the power
    // reading is still ≈ 24 W (individual corrupt samples may spike,
    // but the latest-state view recovers immediately).
    assert!(
        (state.total_watts().value() - 24.0).abs() < 12.0,
        "power {}",
        state.total_watts()
    );
    assert!(ps.is_alive());
    stop.store(true, Ordering::SeqCst);
    drop(ps);
    handle.join().unwrap();
}

#[test]
fn host_survives_byte_loss_and_keeps_time_monotonic() {
    let (host_end, target, stop, handle) = spawn_device();
    let faulty = FaultyTransport::new(host_end, FaultPlan::LOSSY, 43);
    let ps = PowerSensor::connect(faulty).unwrap();
    ps.begin_trace();
    target.fetch_add(SimDuration::from_millis(500).as_nanos(), Ordering::SeqCst);
    wait_frames(&ps, 9_000);
    let trace = ps.end_trace();
    // Lost bytes drop whole frames but never corrupt time ordering
    // (Trace::push asserts monotonicity in debug builds).
    assert!(trace.len() > 8_000, "got {} frames", trace.len());
    let mean = trace.mean_power().unwrap().value();
    assert!((mean - 24.0).abs() < 2.0, "mean {mean}");
    stop.store(true, Ordering::SeqCst);
    drop(ps);
    handle.join().unwrap();
}

#[test]
fn energy_accounting_tolerates_lossy_link() {
    let (host_end, target, stop, handle) = spawn_device();
    let faulty = FaultyTransport::new(host_end, FaultPlan::LOSSY, 44);
    let ps = PowerSensor::connect(faulty).unwrap();
    let first = ps.read();
    target.fetch_add(SimDuration::from_secs(1).as_nanos(), Ordering::SeqCst);
    wait_frames(&ps, 19_000);
    let second = ps.read();
    let energy = powersensor3::core::joules(&first, &second).value();
    // 24 W × 1 s = 24 J; lost frames bridge via longer dt on the next
    // frame, so the integral error stays small.
    assert!((energy - 24.0).abs() < 1.5, "energy {energy}");
    stop.store(true, Ordering::SeqCst);
    drop(ps);
    handle.join().unwrap();
}

#[test]
fn device_vanishing_mid_session_is_detected() {
    let (host_end, target, stop, handle) = spawn_device();
    let ps = PowerSensor::connect(host_end).unwrap();
    target.fetch_add(SimDuration::from_millis(10).as_nanos(), Ordering::SeqCst);
    wait_frames(&ps, 150);
    assert!(ps.is_alive());
    // Kill the device.
    stop.store(true, Ordering::SeqCst);
    handle.join().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while ps.is_alive() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(!ps.is_alive(), "host must notice the dead link");
    // Waits now fail fast instead of hanging.
    let err = ps
        .wait_for_frames(u64::MAX, Duration::from_secs(1))
        .unwrap_err();
    assert!(matches!(
        err,
        powersensor3::core::PowerSensorError::Shutdown
    ));
}

#[test]
fn marker_commands_pass_through_fault_injector() {
    // Commands travel the (reliable) host→device direction even when
    // the device→host stream is noisy.
    let (host_end, target, stop, handle) = spawn_device();
    let faulty = FaultyTransport::new(host_end, FaultPlan::NOISY, 45);
    let ps = PowerSensor::connect(faulty).unwrap();
    ps.begin_trace();
    ps.mark('z').unwrap();
    target.fetch_add(SimDuration::from_millis(100).as_nanos(), Ordering::SeqCst);
    wait_frames(&ps, 1_900);
    let trace = ps.end_trace();
    assert_eq!(trace.markers().len(), 1);
    assert_eq!(trace.markers()[0].label, 'z');
    stop.store(true, Ordering::SeqCst);
    drop(ps);
    handle.join().unwrap();
}
