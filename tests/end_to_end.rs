//! End-to-end integration tests across the whole stack:
//! DUT model → analog sensors → firmware → wire protocol → virtual USB
//! → host library → analysis.

use powersensor3::analysis::SampleStats;
use powersensor3::core::{joules, pair_joules, seconds, tools, watts};
use powersensor3::duts::{ConstantDut, GpuKernel, GpuSpec, LoadProgram, RailId};
use powersensor3::sensors::budget::ErrorBudget;
use powersensor3::sensors::{AdcSpec, ModuleKind};
use powersensor3::testbed::setups::{accuracy_bench, gpu_riser};
use powersensor3::testbed::TestbedBuilder;
use powersensor3::units::{Amps, SimDuration, Volts};

#[test]
fn measured_error_stays_within_worst_case_budget() {
    // The empirical error at full scale must respect Table I's
    // theoretical worst case for every module type.
    for kind in [
        ModuleKind::Slot10A12V,
        ModuleKind::Slot10A3V3,
        ModuleKind::UsbC,
        ModuleKind::Pcie8Pin20A,
    ] {
        let budget = ErrorBudget::for_module(kind, &AdcSpec::POWERSENSOR3);
        let mut tb = accuracy_bench(kind, LoadProgram::Constant(Amps::new(8.0)), 1234);
        let bench = tb.dut();
        let ps = tb.connect().unwrap();
        tb.advance_and_sync(&ps, SimDuration::from_millis(2))
            .unwrap();
        ps.begin_trace();
        tb.advance_and_sync(&ps, SimDuration::from_millis(100))
            .unwrap();
        let trace = ps.end_trace();
        let truth = bench.lock().reference(tb.device_time()).watts().value();
        let stats =
            SampleStats::from_samples(trace.powers().iter().map(|p| (p - truth).abs())).unwrap();
        // Worst case is 3σ territory before 6-fold averaging; the mean
        // absolute error of averaged samples sits far below it.
        assert!(
            stats.mean < budget.power_error.value(),
            "{kind}: mean |err| {} exceeds budget {}",
            stats.mean,
            budget.power_error.value()
        );
    }
}

#[test]
fn interval_and_trace_modes_agree_on_energy() {
    let dut = ConstantDut::new(RailId::Slot12V, Volts::new(12.0), Amps::new(5.0));
    let mut tb = TestbedBuilder::new(dut)
        .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
        .seed(55)
        .build();
    let ps = tb.connect().unwrap();
    tb.advance_and_sync(&ps, SimDuration::from_millis(5))
        .unwrap();

    let first = ps.read();
    ps.begin_trace();
    tb.advance_and_sync(&ps, SimDuration::from_millis(200))
        .unwrap();
    let trace = ps.end_trace();
    let second = ps.read();

    let interval_energy = joules(&first, &second).value();
    let trace_energy = trace.energy().value();
    assert!(
        (interval_energy - trace_energy).abs() < 0.05 * interval_energy,
        "interval {interval_energy} J vs trace {trace_energy} J"
    );
    // ~60 W for 0.2 s ≈ 12 J.
    assert!((interval_energy - 12.0).abs() < 0.5, "{interval_energy} J");
}

#[test]
fn multi_rail_gpu_energy_sums_across_pairs() {
    let mut tb = gpu_riser(GpuSpec::rtx4000_ada(), 77);
    let gpu = tb.dut();
    let ps = tb.connect().unwrap();
    tb.advance_and_sync(&ps, SimDuration::from_millis(10))
        .unwrap();
    let first = ps.read();
    gpu.lock()
        .launch(GpuKernel::synthetic_fma(SimDuration::from_millis(300), 4));
    tb.advance_and_sync(&ps, SimDuration::from_millis(400))
        .unwrap();
    let second = ps.read();

    let total = joules(&first, &second).value();
    let per_pair: f64 = (0..3)
        .map(|p| pair_joules(&first, &second, p).value())
        .sum();
    assert!(
        (total - per_pair).abs() < 1e-9,
        "total {total} vs pair sum {per_pair}"
    );
    // All three rails contributed.
    for p in 0..3 {
        assert!(
            pair_joules(&first, &second, p).value() > 0.0,
            "pair {p} contributed nothing"
        );
    }
}

#[test]
fn pstest_rows_scale_linearly_with_interval() {
    let dut = ConstantDut::new(RailId::Slot12V, Volts::new(12.0), Amps::new(4.0));
    let mut tb = TestbedBuilder::new(dut)
        .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
        .build();
    let ps = tb.connect().unwrap();
    let intervals = [
        SimDuration::from_millis(10),
        SimDuration::from_millis(20),
        SimDuration::from_millis(40),
    ];
    let rows = tools::pstest(&ps, &intervals, |d| {
        tb.advance_and_sync(&ps, d).unwrap();
    })
    .unwrap();
    assert_eq!(rows.len(), 3);
    // Power constant across intervals; energy doubles with interval.
    for row in &rows {
        assert!((row.watts.value() - 48.0).abs() < 1.0, "{row}");
    }
    let ratio = rows[2].joules.value() / rows[0].joules.value();
    assert!((ratio - 4.0).abs() < 0.2, "energy ratio {ratio}");
}

#[test]
fn dump_file_round_trips_through_filesystem() {
    let dir = std::env::temp_dir().join("ps3_dump_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dump.txt");
    {
        let dut = ConstantDut::new(RailId::Slot12V, Volts::new(12.0), Amps::new(1.0));
        let mut tb = TestbedBuilder::new(dut)
            .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
            .build();
        let ps = tb.connect().unwrap();
        ps.dump_to(std::fs::File::create(&path).unwrap());
        ps.mark('s').unwrap();
        tb.advance_and_sync(&ps, SimDuration::from_millis(10))
            .unwrap();
        ps.stop_dump();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.starts_with("# PowerSensor3 dump"));
    let data_lines = text.lines().filter(|l| !l.starts_with(['#', 'M'])).count();
    assert!(data_lines >= 195, "expected ≈200 frames, got {data_lines}");
    assert!(text
        .lines()
        .any(|l| l.starts_with("M ") && l.ends_with('s')));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn dump_round_trips_through_parser() {
    // Capture a dump, parse it back, and check that the parsed trace
    // reproduces the host's own energy accounting.
    let dut = ConstantDut::new(RailId::Slot12V, Volts::new(12.0), Amps::new(3.0));
    let mut tb = TestbedBuilder::new(dut)
        .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
        .seed(21)
        .build();
    let ps = tb.connect().unwrap();
    let buf = std::sync::Arc::new(parking_lot_stub::Mutex::new(Vec::new()));
    struct SharedWriter(std::sync::Arc<parking_lot_stub::Mutex<Vec<u8>>>);
    impl std::io::Write for SharedWriter {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    tb.advance_and_sync(&ps, SimDuration::from_millis(2))
        .unwrap();
    ps.dump_to(SharedWriter(std::sync::Arc::clone(&buf)));
    let first = ps.read();
    ps.mark('a').unwrap();
    tb.advance_and_sync(&ps, SimDuration::from_millis(50))
        .unwrap();
    ps.mark('b').unwrap();
    tb.advance_and_sync(&ps, SimDuration::from_millis(5))
        .unwrap();
    let second = ps.read();
    ps.stop_dump();

    let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
    let dump = powersensor3::analysis::parse_dump(&text).unwrap();
    assert_eq!(dump.pairs.len(), 1);
    // Parsed trace energy ≈ host interval energy over the same window.
    let host_energy = joules(&first, &second).value();
    let parsed_energy = dump.total.energy().value();
    assert!(
        (parsed_energy - host_energy).abs() < 0.05 * host_energy,
        "parsed {parsed_energy} vs host {host_energy}"
    );
    // Markers round-trip and bracket ~50 ms.
    let window = dump.total.between_markers('a', 'b').unwrap();
    let span_ms = window.span().as_secs_f64() * 1e3;
    assert!((span_ms - 50.0).abs() < 1.0, "window {span_ms} ms");
    // ~36 W × 50 ms ≈ 1.8 J.
    assert!((window.energy().value() - 1.8).abs() < 0.1);
}

/// std's Mutex under a name that does not clash with parking_lot in
/// other tests.
mod parking_lot_stub {
    pub use std::sync::Mutex;
}

#[test]
fn firmware_version_query_mid_session() {
    let dut = ConstantDut::new(RailId::Slot12V, Volts::new(12.0), Amps::new(1.0));
    let mut tb = TestbedBuilder::new(dut)
        .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
        .build();
    let ps = tb.connect().unwrap();
    tb.advance_and_sync(&ps, SimDuration::from_millis(5))
        .unwrap();
    let version = ps.firmware_version().unwrap();
    assert_eq!(version, powersensor3::firmware::FIRMWARE_VERSION);
    // Streaming resumes afterwards.
    let before = ps.frames_received();
    tb.advance_and_sync(&ps, SimDuration::from_millis(5))
        .unwrap();
    assert!(ps.frames_received() > before);
}

#[test]
fn seconds_and_watts_are_consistent() {
    let dut = ConstantDut::new(RailId::Slot3V3, Volts::new(3.3), Amps::new(3.0));
    let mut tb = TestbedBuilder::new(dut)
        .attach(ModuleKind::Slot10A3V3, RailId::Slot3V3)
        .build();
    let ps = tb.connect().unwrap();
    tb.advance_and_sync(&ps, SimDuration::from_millis(5))
        .unwrap();
    let a = ps.read();
    tb.advance_and_sync(&ps, SimDuration::from_millis(75))
        .unwrap();
    let b = ps.read();
    let j = joules(&a, &b).value();
    let s = seconds(&a, &b);
    let w = watts(&a, &b).value();
    assert!((j / s - w).abs() < 1e-9, "J/s {} vs W {w}", j / s);
    assert!((w - 9.9).abs() < 0.3, "3.3 V × 3 A ≈ 9.9 W, got {w}");
}
