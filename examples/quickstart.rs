//! Quickstart: measure a constant load with a simulated PowerSensor3.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a testbed (a 12 V / 2 A dummy device behind a 12 V slot
//! sensor module), connects the host library, and demonstrates both
//! measurement modes: interval (two `State`s) and continuous (a 20 kHz
//! trace), plus the `psrun`/`psinfo` tool equivalents.

use powersensor3::core::{joules, seconds, tools, watts};
use powersensor3::duts::{ConstantDut, RailId};
use powersensor3::sensors::ModuleKind;
use powersensor3::testbed::TestbedBuilder;
use powersensor3::units::{Amps, SimDuration, Volts};

fn main() {
    // 1. Wire a DUT through a sensor module into the emulated device.
    let dut = ConstantDut::new(RailId::Slot12V, Volts::new(12.0), Amps::new(2.0));
    let mut testbed = TestbedBuilder::new(dut)
        .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
        .build();

    // 2. Connect the host library (reads the EEPROM config, starts the
    //    20 kHz stream).
    let ps = testbed.connect().expect("connect to the simulated device");

    // 3. Interval mode: energy between two states.
    let first = ps.read();
    testbed
        .advance_and_sync(&ps, SimDuration::from_millis(100))
        .expect("advance");
    let second = ps.read();
    println!(
        "interval mode: {:.4} J over {:.3} s -> {:.3} W",
        joules(&first, &second).value(),
        seconds(&first, &second),
        watts(&first, &second).value()
    );
    println!("{}", tools::info(&ps));

    // 4. Continuous mode: a full-rate trace with a marker.
    ps.begin_trace();
    ps.mark('x').expect("marker");
    testbed
        .advance_and_sync(&ps, SimDuration::from_millis(20))
        .expect("advance");
    let trace = ps.end_trace();
    println!(
        "continuous mode: {} samples at {:.0} Hz, mean {:.3} W, markers {:?}",
        trace.len(),
        trace.sample_rate().unwrap_or(0.0),
        trace.mean_power().map_or(0.0, |w| w.value()),
        trace.markers().iter().map(|m| m.label).collect::<Vec<_>>()
    );

    // 5. psrun: measure the energy of a "workload".
    let report = tools::psrun(&ps, || {
        testbed
            .advance_and_sync(&ps, SimDuration::from_millis(50))
            .expect("workload");
    })
    .expect("psrun");
    println!("psrun: {report}");
}
