//! The one-time calibration procedure (§III-D).
//!
//! ```text
//! cargo run --release --example calibration
//! ```
//!
//! Starts from a factory-fresh (uncalibrated) sensor module with a real
//! Hall offset and voltage gain error, measures the resulting power
//! error, runs the calibration procedure against the bench supply, and
//! measures again.

use powersensor3::core::tools;
use powersensor3::duts::{BenchSetup, LoadProgram, RailId};
use powersensor3::sensors::ModuleKind;
use powersensor3::testbed::TestbedBuilder;
use powersensor3::units::{Amps, SimDuration, Volts};

fn main() {
    // An uncalibrated module: EEPROM holds nominal datasheet values,
    // the analog parts carry their factory offset/gain errors.
    let bench = BenchSetup::twelve_volt(LoadProgram::Constant(Amps::zero()));
    let mut testbed = TestbedBuilder::new(bench)
        .attach(ModuleKind::Slot10A12V, RailId::Ext12V)
        .factory_calibrated(false)
        .seed(99)
        .build();
    let dut = testbed.dut();
    let ps = testbed.connect().expect("connect");

    let measure_error = |testbed: &powersensor3::testbed::Testbed<BenchSetup>, amps: f64| -> f64 {
        dut.lock()
            .set_program(LoadProgram::Constant(Amps::new(amps)));
        testbed
            .advance_and_sync(&ps, SimDuration::from_millis(20))
            .expect("measure");
        let truth = dut.lock().reference(testbed.device_time()).watts().value();
        ps.read().total_watts().value() - truth
    };

    let before = measure_error(&testbed, 8.0);
    println!("error before calibration at 8 A: {before:+.2} W");

    // Calibration: unloaded module, known reference voltage, 16 k
    // samples (the paper averages 128 k).
    dut.lock().set_program(LoadProgram::Constant(Amps::zero()));
    testbed
        .advance_and_sync(&ps, SimDuration::from_millis(5))
        .expect("settle");
    let reference = dut.lock().reference(testbed.device_time()).volts;
    let reports = tools::autocalibrate(
        &ps,
        &[Some(Volts::new(reference.value())), None, None, None],
        16 * 1024,
        |d| testbed.advance(d),
    )
    .expect("calibration");
    for r in &reports {
        println!(
            "pair {}: removed {:+.3} A Hall offset, corrected voltage gain by {:+.2}%",
            r.pair,
            r.current_offset_amps,
            (r.voltage_gain_correction - 1.0) * 100.0
        );
    }

    let after = measure_error(&testbed, 8.0);
    println!("error after calibration at 8 A:  {after:+.2} W");
    println!(
        "improvement: {:.1}x (calibration is one-time; §IV-B shows ±0.09 W drift over 50 h)",
        (before.abs() / after.abs().max(1e-3)).max(1.0)
    );
}
