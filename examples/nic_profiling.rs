//! NIC power profiling: packet rate matters, not just throughput.
//!
//! ```text
//! cargo run --release --example nic_profiling
//! ```
//!
//! The paper lists NICs among PowerSensor3's target devices; this
//! example demonstrates the toolkit's extensibility (§VI) by measuring
//! a 100 GbE adapter model at the same throughput with different
//! packet sizes — small packets burn several extra watts of
//! descriptor/interrupt work that a throughput counter alone would
//! never explain.

use powersensor3::core::watts;
use powersensor3::duts::{NicModel, NicSpec, RailId, TrafficLoad};
use powersensor3::sensors::ModuleKind;
use powersensor3::testbed::TestbedBuilder;
use powersensor3::units::SimDuration;

fn main() {
    let nic = NicModel::new(NicSpec::hundred_gbe());
    let mut testbed = TestbedBuilder::new(nic)
        .attach(ModuleKind::Slot10A3V3, RailId::Slot3V3)
        .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
        .seed(11)
        .build();
    let nic = testbed.dut();
    let ps = testbed.connect().expect("connect");

    testbed
        .advance_and_sync(&ps, SimDuration::from_millis(10))
        .expect("warm up");
    println!("idle: {:.2} W", ps.read().total_watts().value());

    println!("\n50 Gbit/s at different packet sizes:");
    for packet_bytes in [64u32, 256, 512, 1500, 9000] {
        nic.lock().offer(TrafficLoad {
            gbps: 50.0,
            packet_bytes,
        });
        let s0 = ps.read();
        testbed
            .advance_and_sync(&ps, SimDuration::from_millis(50))
            .expect("measure");
        let s1 = ps.read();
        let mpps = TrafficLoad {
            gbps: 50.0,
            packet_bytes,
        }
        .pps()
            / 1e6;
        println!(
            "  {packet_bytes:>5} B packets: {mpps:6.1} Mpps -> {:.2} W",
            watts(&s0, &s1).value()
        );
    }

    println!("\nthroughput sweep at 1500 B:");
    for gbps in [10.0, 25.0, 50.0, 75.0, 100.0] {
        nic.lock().offer(TrafficLoad {
            gbps,
            packet_bytes: 1500,
        });
        let s0 = ps.read();
        testbed
            .advance_and_sync(&ps, SimDuration::from_millis(50))
            .expect("measure");
        let s1 = ps.read();
        println!("  {gbps:>5.0} Gbit/s -> {:.2} W", watts(&s0, &s1).value());
    }
}
