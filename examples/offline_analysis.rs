//! Capture once, analyse anywhere: record the raw USB byte stream of a
//! live session, then decode it offline — no device attached.
//!
//! ```text
//! cargo run --release --example offline_analysis
//! ```
//!
//! Wraps the transport in a recorder during a GPU measurement, then
//! feeds the captured bytes to [`powersensor3::core::decode_stream`]
//! and renders the recovered trace as an ASCII chart.

use std::sync::Arc;
use std::time::Duration;

use powersensor3::analysis::ascii_trace;
use powersensor3::core::{decode_stream, PowerSensor};
use powersensor3::duts::{GpuKernel, GpuModel, GpuSpec};
use powersensor3::firmware::{Device, Eeprom, SensorConfig};
use powersensor3::transport::{RecordingTransport, Transport, TransportError, VirtualSerial};
use powersensor3::units::{SimDuration, SimTime};

/// Shares a recorder between the host library (which consumes its
/// transport) and this example (which reads the capture afterwards).
struct SharedRecorder(Arc<RecordingTransport<powersensor3::transport::SerialEndpoint>>);

impl Transport for SharedRecorder {
    fn write_all(&self, bytes: &[u8]) -> Result<(), TransportError> {
        self.0.write_all(bytes)
    }
    fn read(&self, buf: &mut [u8], timeout: Option<Duration>) -> Result<usize, TransportError> {
        self.0.read(buf, timeout)
    }
    fn available(&self) -> usize {
        self.0.available()
    }
}

fn main() {
    // A minimal device thread: GPU on the 12 V external rail only.
    let (host_end, dev_end) = VirtualSerial::pair();
    let mut eeprom = Eeprom::new();
    eeprom.write(0, SensorConfig::new("I-ext", 3.3, 0.06, true));
    eeprom.write(1, SensorConfig::new("U-ext", 3.3, 5.0, true));
    let device = std::thread::spawn(move || {
        use powersensor3::duts::{Dut as _, RailId};
        let mut gpu = GpuModel::new(GpuSpec::rtx4000_ada(), 5);
        gpu.launch(GpuKernel::synthetic_fma(SimDuration::from_millis(700), 6));
        let mut dev = Device::new(
            move |ch: usize, now: SimTime| {
                let state = gpu.rail_state(RailId::Ext12V, now);
                match ch {
                    0 => 1.65 + state.amps.value() * 0.06,
                    1 => state.volts.value() / 5.0,
                    _ => 0.0,
                }
            },
            eeprom,
        );
        // Wait for the host to connect and start the stream, then
        // free-run one simulated second and hang up.
        while !dev.is_streaming() && dev.host_connected() {
            dev.process_commands(&dev_end);
            std::thread::sleep(Duration::from_micros(200));
        }
        dev.run_until(&dev_end, SimTime::from_micros(1_000_000));
    });

    // Live session through the recorder.
    let recorder = Arc::new(RecordingTransport::new(host_end));
    let configs;
    {
        let ps = PowerSensor::connect(SharedRecorder(Arc::clone(&recorder))).expect("connect");
        configs = ps.configs();
        // Drain the whole session (the device stops after 1 s).
        let _ = ps.wait_for_frames(19_000, Duration::from_secs(30));
        device.join().expect("device thread");
    } // host disconnects here

    // Offline decode of the raw capture.
    let capture = recorder.received();
    println!("captured {} raw bytes; decoding offline...", capture.len());
    let decoded = decode_stream(&capture, &configs);
    println!(
        "{} frames, {} resyncs, energy {:.2} J",
        decoded.frames,
        decoded.resyncs,
        decoded.energy.value()
    );
    print!("{}", ascii_trace(&decoded.total, 72, 12));
}
