//! Streaming: one process owns the sensor, many subscribe over TCP.
//!
//! ```text
//! cargo run --release --example streaming
//! ```
//!
//! Starts a [`StreamDaemon`] on an ephemeral port around a simulated
//! 12 V bench, then subscribes three clients at three different rates
//! (native 20 kHz, 1 kHz, 10 Hz) while the virtual clock advances.
//! One client injects a marker over the network; the native-rate
//! client sees it come back time-synced in the sample stream.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use powersensor3::core::SharedPowerSensor;
use powersensor3::duts::{BenchSetup, LoadProgram, RailId};
use powersensor3::sensors::ModuleKind;
use powersensor3::stream::{StreamClient, StreamClientConfig, StreamDaemon, StreamDaemonConfig};
use powersensor3::testbed::TestbedBuilder;
use powersensor3::units::{Amps, SimDuration};

fn main() {
    // 1. A simulated rig: 12 V bench stepping between 2 A and 6 A.
    let mut testbed = TestbedBuilder::new(BenchSetup::twelve_volt(LoadProgram::SquareWave {
        low: Amps::new(2.0),
        high: Amps::new(6.0),
        frequency_hz: 10.0,
    }))
    .attach(ModuleKind::Slot10A12V, RailId::Ext12V)
    .build();
    let sensor = SharedPowerSensor::new(testbed.connect().expect("connect"));

    // 2. The daemon owns the sensor and serves its stream.
    let daemon = StreamDaemon::start(sensor.clone(), "127.0.0.1:0", StreamDaemonConfig::default())
        .expect("start daemon");
    println!("daemon listening on {}", daemon.local_addr());

    // 3. Three subscribers at three rates.
    let subscribe = |divisor| {
        StreamClient::connect(
            daemon.local_addr(),
            StreamClientConfig {
                pair_mask: 0x0F,
                divisor,
                ..StreamClientConfig::default()
            },
        )
        .expect("subscribe")
    };
    let native = subscribe(1); // 20 kHz
    let khz = subscribe(20); // 1 kHz
    let slow = subscribe(2000); // 10 Hz

    // The native-rate client watches for the marker.
    let marker_at = Arc::new(AtomicU64::new(0));
    {
        let marker_at = Arc::clone(&marker_at);
        native.set_frame_callback(move |frame| {
            if frame.marker {
                marker_at.store(frame.time.as_micros(), Ordering::SeqCst);
            }
        });
    }

    // 4. Run half a simulated second; inject a marker part-way, over
    //    the network, from the 1 kHz client.
    testbed
        .advance_and_sync(&sensor, SimDuration::from_millis(200))
        .expect("advance");
    khz.inject_marker('m').expect("marker");
    std::thread::sleep(Duration::from_millis(20)); // let the command land
    testbed
        .advance_and_sync(&sensor, SimDuration::from_millis(300))
        .expect("advance");

    // 5. Let the last batches drain, then report.
    let total = testbed.frames_emitted();
    while native.frames_received() < total {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!(
        "device emitted {total} frames; 20 kHz client got {}, 1 kHz client {}, 10 Hz client {}",
        native.frames_received(),
        khz.frames_received(),
        slow.frames_received()
    );
    println!(
        "power right now: native {:.2}, 1 kHz {:.2}, 10 Hz {:.2}",
        native.last_watts(),
        khz.last_watts(),
        slow.last_watts()
    );
    let at = marker_at.load(Ordering::SeqCst);
    println!("marker 'm' observed in the 20 kHz stream at t = {at} µs");
    let stats = daemon.stats();
    println!(
        "daemon: {} frames published, {} subscribers, {} gaps, {} evicted",
        stats.frames_published, stats.active_subscribers, stats.gap_events, stats.evicted
    );
}
