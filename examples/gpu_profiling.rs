//! GPU kernel profiling: PowerSensor3 vs the on-board sensor (§V-A).
//!
//! ```text
//! cargo run --release --example gpu_profiling
//! ```
//!
//! Reproduces the Fig 7a scenario at a small scale: an NVIDIA-like GPU
//! runs a synthetic FMA kernel; PowerSensor3 captures the 20 kHz power
//! trace (launch spike, clock ramp, inter-wave dips, idle decay) while
//! NVML's 10 Hz refresh misses the fine structure.

use powersensor3::duts::{GpuKernel, GpuSpec, NvmlSensor, OnboardSensor};
use powersensor3::testbed::setups::gpu_riser;
use powersensor3::units::SimDuration;

fn main() {
    let mut testbed = gpu_riser(GpuSpec::rtx4000_ada(), 1);
    let gpu = testbed.dut();
    let mut nvml = NvmlSensor::instantaneous(testbed.dut());
    let ps = testbed.connect().expect("connect");

    // Idle lead-in.
    testbed
        .advance_and_sync(&ps, SimDuration::from_millis(200))
        .expect("advance");
    println!("idle power: {:.1} W", ps.read().total_watts().value());

    // Launch a ~1 s kernel and record both sensors.
    ps.begin_trace();
    ps.mark('k').expect("marker");
    gpu.lock()
        .launch(GpuKernel::synthetic_fma(SimDuration::from_millis(1000), 8));
    let mut nvml_readings = Vec::new();
    for _ in 0..120 {
        testbed
            .advance_and_sync(&ps, SimDuration::from_millis(10))
            .expect("advance");
        let t = testbed.device_time();
        nvml_readings.push(nvml.read(t).power.value());
    }
    let trace = ps.end_trace();

    let powers = trace.powers();
    let stats =
        powersensor3::analysis::SampleStats::from_samples(powers.iter().copied()).expect("trace");
    println!(
        "PowerSensor3: {} samples, min {:.1} W, max {:.1} W, energy {:.2} J",
        trace.len(),
        stats.min,
        stats.max,
        trace.energy().value()
    );
    let nv_min = nvml_readings.iter().cloned().fold(f64::INFINITY, f64::min);
    let nv_max = nvml_readings.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "NVML:         {} polls,  min {:.1} W, max {:.1} W",
        nvml_readings.len(),
        nv_min,
        nv_max
    );
    println!(
        "PowerSensor3 resolves {:.0} W of structure that NVML misses",
        (stats.max - stats.min) - (nv_max - nv_min)
    );
}
