//! Auto-tuning a GPU kernel for performance *and* energy (§V-A2).
//!
//! ```text
//! cargo run --release --example autotuning
//! ```
//!
//! Sweeps a subset of the Tensor-Core Beamformer search space on the
//! simulated RTX 4000 Ada, measuring per-kernel energy with
//! PowerSensor3, then prints the Pareto front and the projected
//! full-space tuning-time saving over the on-board-sensor workflow.

use powersensor3::duts::GpuSpec;
use powersensor3::testbed::setups::gpu_riser;
use powersensor3::tuner::{BeamformerModel, BeamformerProblem, Tuner};

fn main() {
    let spec = GpuSpec::rtx4000_ada();
    let mut testbed = gpu_riser(spec.clone(), 7);
    let gpu = testbed.dut();
    let ps = testbed.connect().expect("connect");

    let model = BeamformerModel::new(spec, BeamformerProblem::paper());
    // 32 variants × 5 clocks = 160 configurations (full space: 5120).
    let tuner = Tuner::new(model.clone()).subset(16, 2);
    println!("benchmarking {} configurations...", tuner.configurations());

    let outcome = tuner
        .run_with_powersensor(&gpu, &ps, &mut |d| {
            testbed.advance_and_sync(&ps, d).expect("advance")
        })
        .expect("sweep");

    let fastest = outcome.fastest().expect("records");
    let efficient = outcome.most_efficient().expect("records");
    println!(
        "fastest:        {:5.1} TFLOP/s  {:.3} TFLOP/J  @ {:.0} MHz",
        fastest.tflops, fastest.tflop_per_joule, fastest.clock_mhz
    );
    println!(
        "most efficient: {:5.1} TFLOP/s  {:.3} TFLOP/J  @ {:.0} MHz",
        efficient.tflops, efficient.tflop_per_joule, efficient.clock_mhz
    );
    println!("Pareto front ({} configs):", outcome.pareto_indices().len());
    for i in outcome.pareto_indices() {
        let r = &outcome.records[i];
        println!(
            "  {:4.0} MHz  bx={:<2} by={:<2} frags={}  {:5.1} TFLOP/s  {:.3} TFLOP/J",
            r.clock_mhz,
            r.params.block_x,
            r.params.block_y,
            r.params.frags_block,
            r.tflops,
            r.tflop_per_joule
        );
    }

    let (ps3_s, onboard_s) = Tuner::new(model).predicted_session_times();
    println!(
        "full 5120-config session: PowerSensor3 {:.0} s vs on-board {:.0} s ({:.2}x faster; paper: 3.25x)",
        ps3_s.as_secs_f64(),
        onboard_s.as_secs_f64(),
        onboard_s.as_secs_f64() / ps3_s.as_secs_f64()
    );
}
