//! Archiving: capture a run into the compressed trace store, then
//! query it without ever holding the full trace in memory.
//!
//! ```text
//! cargo run --release --example archive
//! ```
//!
//! A simulated 12 V bench run is archived live by the background
//! [`ArchiveWriter`] while the host also keeps an in-memory trace.
//! The example then reopens the `.ps3a` file and shows the three
//! query flavours: an exact range read (byte-identical to the live
//! trace), summary-accelerated stats and marker-window energy, and a
//! downsampled read exported as CSV.

use powersensor3::archive::{Archive, ArchiveWriter, ArchiveWriterOptions};
use powersensor3::duts::LoadProgram;
use powersensor3::sensors::ModuleKind;
use powersensor3::testbed::setups::accuracy_bench;
use powersensor3::units::{Amps, SimDuration, SimTime};

fn main() {
    // 1. A simulated rig: 12 V bench stepping between 2 A and 6 A.
    let mut testbed = accuracy_bench(
        ModuleKind::Slot10A12V,
        LoadProgram::SquareWave {
            low: Amps::new(2.0),
            high: Amps::new(6.0),
            frequency_hz: 10.0,
        },
        42,
    );
    let sensor = testbed.connect().expect("connect");
    testbed
        .advance_and_sync(&sensor, SimDuration::from_millis(2))
        .expect("settle");

    // 2. Attach the background archive writer: every acquired frame
    //    is queued, compressed, and sealed into crash-safe segments.
    let path = std::env::temp_dir().join("ps3-example.ps3a");
    let writer = ArchiveWriter::spawn(
        &path,
        sensor.configs(),
        ArchiveWriterOptions {
            segment_frames: 4096,
            ..ArchiveWriterOptions::default()
        },
    )
    .expect("create archive");
    writer.attach(&sensor);

    // 3. Run half a simulated second with a marked kernel window,
    //    keeping a live trace for comparison.
    sensor.begin_trace_with_capacity(10_000);
    testbed
        .advance_and_sync(&sensor, SimDuration::from_millis(100))
        .expect("advance");
    sensor.mark('k').expect("mark");
    testbed
        .advance_and_sync(&sensor, SimDuration::from_millis(300))
        .expect("advance");
    sensor.mark('e').expect("mark");
    testbed
        .advance_and_sync(&sensor, SimDuration::from_millis(100))
        .expect("advance");
    let live = sensor.end_trace();
    let stats = writer.finish().expect("seal archive");
    println!(
        "archived {} frames -> {} bytes in {} segments ({:.3} bytes/sample, raw wire is 6)",
        stats.frames,
        stats.bytes,
        stats.segments,
        stats.bytes as f64 / stats.frames as f64
    );

    // 4. Reopen and query.
    let archive = Archive::open(&path).expect("open archive");

    // Exact: the re-read range equals the live trace bit for bit.
    let end = SimTime::from_micros(archive.end_time().unwrap().as_micros() + 1);
    let reread = archive
        .read_range(archive.start_time().unwrap(), end)
        .expect("read_range");
    println!(
        "exact re-read: {} samples, identical to live trace: {}",
        reread.len(),
        reread == live
    );

    // Fast: stats and marker-window energy from summary blocks alone.
    let st = archive
        .stats(archive.start_time().unwrap(), end)
        .expect("stats");
    println!(
        "summary stats: mean {:.2} W, min {:.2} W, max {:.2} W over {} samples",
        st.mean_w().unwrap(),
        st.min_w,
        st.max_w,
        st.count
    );
    let kernel_j = archive.energy_between('k', 'e').expect("energy");
    let live_j = live.between_markers('k', 'e').expect("window").energy();
    println!(
        "kernel window energy: archive {:.6} J vs live {:.6} J",
        kernel_j.value(),
        live_j.value()
    );

    // Downsampled: a 200 Hz view of the 20 kHz capture.
    let coarse = archive
        .downsample(archive.start_time().unwrap(), end, 100)
        .expect("downsample");
    println!("downsampled 100x: {} points, e.g.:", coarse.len());
    for s in coarse.samples().iter().take(3) {
        println!("  {} us  {:.3} W", s.time.as_micros(), s.power.value());
    }

    // 5. Tidy up the temp files.
    drop(archive);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(powersensor3::archive::index_path_for(&path)).ok();
}
