//! SSD power profiling (§V-C): request-size sweep and a random-write
//! run where bandwidth swings but power does not.
//!
//! ```text
//! cargo run --release --example ssd_profiling
//! ```

use powersensor3::core::watts;
use powersensor3::duts::{FioJob, IoPattern, SsdSpec};
use powersensor3::testbed::setups::ssd_riser;
use powersensor3::units::SimDuration;

fn main() {
    let mut testbed = ssd_riser(SsdSpec::samsung_980_pro(), 3);
    let ssd = testbed.dut();
    let ps = testbed.connect().expect("connect");

    println!("random reads: request size vs bandwidth vs power");
    for size_kib in [4u32, 16, 64, 256, 1024, 4096] {
        ssd.lock().start_job(FioJob {
            pattern: IoPattern::RandRead {
                block_kib: size_kib,
            },
            queue_depth: 32,
        });
        testbed
            .advance_and_sync(&ps, SimDuration::from_millis(20))
            .expect("settle");
        let b0 = ssd.lock().stats(testbed.device_time()).host_read_bytes;
        let s0 = ps.read();
        testbed
            .advance_and_sync(&ps, SimDuration::from_millis(500))
            .expect("window");
        let b1 = ssd.lock().stats(testbed.device_time()).host_read_bytes;
        let s1 = ps.read();
        println!(
            "  {size_kib:>5} KiB: {:6.0} MB/s  {:.2} W",
            (b1 - b0) as f64 / 0.5 / 1e6,
            watts(&s0, &s1).value()
        );
    }

    println!("\nsustained 4 KiB random writes (preconditioned drive):");
    {
        let mut drive = ssd.lock();
        drive.format();
        drive.precondition();
        drive.start_job(FioJob {
            pattern: IoPattern::RandWrite { block_kib: 4 },
            queue_depth: 32,
        });
    }
    let mut prev_bytes = ssd.lock().stats(testbed.device_time()).host_write_bytes;
    let mut prev_state = ps.read();
    for sec in 1..=30u64 {
        testbed
            .advance_and_sync(&ps, SimDuration::from_secs(1))
            .expect("advance");
        let bytes = ssd.lock().stats(testbed.device_time()).host_write_bytes;
        let state = ps.read();
        let wa = ssd
            .lock()
            .stats(testbed.device_time())
            .write_amplification();
        println!(
            "  t={sec:>3}s  {:6.0} MB/s  {:.2} W  (WA {:.2})",
            (bytes - prev_bytes) as f64 / 1e6,
            watts(&prev_state, &state).value(),
            wa
        );
        prev_bytes = bytes;
        prev_state = state;
    }
    println!("note how bandwidth varies with garbage collection while power stays flat.");
}
