//! Noise decomposition across the load range (§IV-A's "detailed
//! inspection").
//!
//! The paper observes: *"at low currents, noise originates primarily
//! from the current sensor, while at higher currents, the voltage
//! sensor noise becomes more significant."* This experiment verifies
//! that on the simulated stack by measuring, at each load, the noise
//! of the current and voltage readings separately (from the host's
//! per-pair `State`) and propagating them into power terms
//! `U·σ_I` vs `I·σ_U`.

use ps3_analysis::SampleStats;
use ps3_duts::LoadProgram;
use ps3_sensors::ModuleKind;
use ps3_testbed::setups::accuracy_bench;
use ps3_units::{Amps, SimDuration};

use crate::report::text_table;

/// Noise contributions at one load point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseRow {
    /// Load current in amps.
    pub amps: f64,
    /// Standard deviation of the current readings (A).
    pub sigma_i: f64,
    /// Standard deviation of the voltage readings (V).
    pub sigma_u: f64,
    /// Power-noise term from the current sensor: `U · σ_I` (W).
    pub current_term_w: f64,
    /// Power-noise term from the voltage sensor: `I · σ_U` (W).
    pub voltage_term_w: f64,
}

/// Measures the decomposition on a 12 V / 10 A module across loads.
#[must_use]
pub fn run(loads_a: &[f64], samples: usize, seed: u64) -> Vec<NoiseRow> {
    let mut tb = accuracy_bench(
        ModuleKind::Slot10A12V,
        LoadProgram::Constant(Amps::zero()),
        seed,
    );
    let bench = tb.dut();
    let ps = tb.connect().expect("connect");
    let mut rows = Vec::new();
    for &amps in loads_a {
        bench
            .lock()
            .set_program(LoadProgram::Constant(Amps::new(amps)));
        tb.advance_and_sync(&ps, SimDuration::from_millis(2))
            .expect("settle");
        // Sample per-pair current/voltage by polling states frame-wise:
        // advance one frame at a time and read the latest pair state.
        let mut i_samples = Vec::with_capacity(samples);
        let mut u_samples = Vec::with_capacity(samples);
        // Poll in small batches to keep sync overhead sane.
        let batch = 64u64;
        let mut taken = 0usize;
        while taken < samples {
            tb.advance_and_sync(&ps, SimDuration::from_micros(50 * batch))
                .expect("advance");
            let state = ps.read();
            i_samples.push(state.pairs[0].amps.value());
            u_samples.push(state.pairs[0].volts.value());
            taken += 1;
        }
        let i_stats = SampleStats::from_samples(i_samples).expect("samples");
        let u_stats = SampleStats::from_samples(u_samples).expect("samples");
        rows.push(NoiseRow {
            amps,
            sigma_i: i_stats.std,
            sigma_u: u_stats.std,
            current_term_w: u_stats.mean * i_stats.std,
            voltage_term_w: i_stats.mean.abs() * u_stats.std,
        });
    }
    rows
}

/// Renders the decomposition table.
#[must_use]
pub fn render(rows: &[NoiseRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.amps),
                format!("{:.1}", r.sigma_i * 1e3),
                format!("{:.1}", r.sigma_u * 1e3),
                format!("{:.3}", r.current_term_w),
                format!("{:.3}", r.voltage_term_w),
                format!(
                    "{}",
                    if r.current_term_w > r.voltage_term_w {
                        "current"
                    } else {
                        "voltage"
                    }
                ),
            ]
        })
        .collect();
    text_table(
        &[
            "I [A]",
            "σ_I [mA]",
            "σ_U [mV]",
            "U·σ_I [W]",
            "I·σ_U [W]",
            "dominant",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_noise_dominates_at_low_load() {
        let rows = run(&[0.5, 9.5], 1500, 77);
        let low = rows[0];
        let high = rows[1];
        // §IV-A: at low current the current-sensor term dominates…
        assert!(
            low.current_term_w > 5.0 * low.voltage_term_w,
            "low load: U·σ_I {} vs I·σ_U {}",
            low.current_term_w,
            low.voltage_term_w
        );
        // …and the voltage term's *share* of the power noise grows
        // substantially with the load (it scales with I, while the
        // current term stays put).
        assert!(
            high.voltage_term_w > 2.0 * low.voltage_term_w,
            "voltage term grows with load: {} -> {}",
            low.voltage_term_w,
            high.voltage_term_w
        );
        let ratio_low = low.voltage_term_w / low.current_term_w;
        let ratio_high = high.voltage_term_w / high.current_term_w;
        assert!(
            ratio_high > 3.0 * ratio_low,
            "voltage share rises with current: {ratio_low} -> {ratio_high}"
        );
    }
}
