//! Fig 4: power error across a −10 A…+10 A load sweep for four sensor
//! module types, with the min/max envelope per measurement point.

use ps3_duts::LoadProgram;
use ps3_sensors::ModuleKind;
use ps3_testbed::setups::accuracy_bench;
use ps3_units::{Amps, SimDuration};

use crate::report::text_table;

/// One measurement point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// Programmed load current.
    pub amps: f64,
    /// Ground-truth power at that point.
    pub expected_w: f64,
    /// Mean measurement error (the continuous line of Fig 4).
    pub mean_err: f64,
    /// Smallest single-sample error (lower dotted line).
    pub min_err: f64,
    /// Largest single-sample error (upper dotted line).
    pub max_err: f64,
}

/// The sweep for one module type.
#[derive(Debug, Clone)]
pub struct Fig4Series {
    /// The module measured.
    pub module: ModuleKind,
    /// Points from −10 A to +10 A.
    pub points: Vec<Fig4Point>,
}

/// The four module types the figure covers.
pub const MODULES: [ModuleKind; 4] = [
    ModuleKind::Slot10A3V3,
    ModuleKind::Slot10A12V,
    ModuleKind::UsbC,
    ModuleKind::Pcie8Pin20A,
];

/// Load steps of the sweep: −10 A to +10 A in 1 A increments.
const STEPS: std::ops::RangeInclusive<i32> = -10..=10;

/// Runs the sweep with `samples_per_point` samples at each 1 A step
/// (the paper uses 128 k).
///
/// Every (module, step) pair is an independent unit of work with its
/// own testbed and a seed derived purely from `(seed, module, step)`,
/// so the sweep parallelises across the global thread pool with output
/// bit-identical to a serial run.
#[must_use]
pub fn run(samples_per_point: usize, seed: u64) -> Vec<Fig4Series> {
    let units: Vec<(usize, i32)> = MODULES
        .iter()
        .enumerate()
        .flat_map(|(mi, _)| STEPS.map(move |step| (mi, step)))
        .collect();
    let points = rayon::global().par_map(units, |(mi, step)| {
        measure_point(
            MODULES[mi],
            step,
            samples_per_point,
            point_seed(seed, mi, step),
        )
    });
    let per_module = STEPS.count();
    points
        .chunks(per_module)
        .zip(MODULES)
        .map(|(chunk, module)| Fig4Series {
            module,
            points: chunk.to_vec(),
        })
        .collect()
}

/// Per-unit seed: a splitmix64 mix of the experiment seed and the
/// unit's identity, so every point gets a decorrelated noise stream
/// that does not depend on execution order.
fn point_seed(seed: u64, module_index: usize, step: i32) -> u64 {
    let id = ((module_index as u64) << 32) | u64::from((step + 10) as u32);
    let mut z = seed
        .wrapping_add(id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Measures one sweep point on a fresh testbed programmed to the
/// target current from t = 0 (the low-pass filters start settled on
/// their first sample, so 2 ms of settling suffices).
fn measure_point(module: ModuleKind, step: i32, samples: usize, seed: u64) -> Fig4Point {
    let amps = f64::from(step);
    let mut tb = accuracy_bench(module, LoadProgram::Constant(Amps::new(amps)), seed);
    let bench = tb.dut();
    let ps = tb.connect().expect("connect");
    tb.advance_and_sync(&ps, SimDuration::from_millis(2))
        .expect("settle");
    let expected = bench.lock().reference(tb.device_time()).watts().value();
    ps.begin_trace_with_capacity(samples);
    tb.advance_and_sync(&ps, SimDuration::from_micros(samples as u64 * 50))
        .expect("measure");
    let trace = ps.end_trace();
    // Error stats stream straight out of the trace — no scratch vector.
    let stats =
        ps3_analysis::SampleStats::from_samples(trace.iter().map(|s| s.power.value() - expected))
            .expect("non-empty trace");
    Fig4Point {
        amps,
        expected_w: expected,
        mean_err: stats.mean,
        min_err: stats.min,
        max_err: stats.max,
    }
}

/// Serial sweep of one module (tests and focused runs); same per-point
/// units as [`run`].
#[must_use]
pub fn sweep_module(module: ModuleKind, samples: usize, seed: u64) -> Fig4Series {
    let mi = MODULES.iter().position(|&m| m == module).unwrap_or(0);
    let points = STEPS
        .map(|step| measure_point(module, step, samples, point_seed(seed, mi, step)))
        .collect();
    Fig4Series { module, points }
}

/// Renders one series as a text table.
#[must_use]
pub fn render(series: &Fig4Series) -> String {
    let rows: Vec<Vec<String>> = series
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:+.0}", p.amps),
                format!("{:.2}", p.expected_w),
                format!("{:+.3}", p.mean_err),
                format!("{:+.2}", p.min_err),
                format!("{:+.2}", p.max_err),
            ]
        })
        .collect();
    format!(
        "{}\n{}",
        series.module,
        text_table(
            &["I [A]", "P_true [W]", "mean err", "min err", "max err"],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reproduces_figure_shape() {
        // Reduced scale: one module, 2k samples per point.
        let series = sweep_module(ModuleKind::Slot10A12V, 2048, 4242);
        assert_eq!(series.points.len(), 21);
        for p in &series.points {
            // Mean error within the worst-case budget (±4.2 W), and in
            // practice well within ±1 W after calibration.
            assert!(
                p.mean_err.abs() < 1.0,
                "mean err {} at {} A",
                p.mean_err,
                p.amps
            );
            // Envelope contains the mean.
            assert!(p.min_err <= p.mean_err && p.mean_err <= p.max_err);
            // Noise envelope is a few watts wide, like the figure.
            let width = p.max_err - p.min_err;
            assert!(
                width > 0.5 && width < 10.0,
                "envelope {width} at {} A",
                p.amps
            );
        }
        // Expected power spans the full bidirectional range.
        assert!(series.points[0].expected_w < -100.0);
        assert!(series.points[20].expected_w > 100.0);
    }

    #[test]
    fn three_volt_module_has_smaller_error_than_twelve() {
        // §IV-A: "the accuracy of the 3.3 V sensor is better in
        // comparison with the 12 V sensor, where the error in the
        // current sensor is multiplied by 12 instead of 3.3".
        let s33 = sweep_module(ModuleKind::Slot10A3V3, 2048, 7);
        let s12 = sweep_module(ModuleKind::Slot10A12V, 2048, 7);
        let width = |s: &Fig4Series| {
            s.points.iter().map(|p| p.max_err - p.min_err).sum::<f64>() / s.points.len() as f64
        };
        assert!(
            width(&s33) < 0.5 * width(&s12),
            "3.3 V envelope {} vs 12 V {}",
            width(&s33),
            width(&s12)
        );
    }
}
