//! Table II: measurement error versus effective sampling rate.
//!
//! A 12 V / 10 A module measures small constant loads; blocks of the
//! 20 kHz stream are averaged to emulate lower sampling rates, and the
//! error statistics shrink with ≈ √N — the paper's resolution/accuracy
//! trade-off.

use ps3_analysis::{block_average, SampleStats};
use ps3_duts::LoadProgram;
use ps3_sensors::ModuleKind;
use ps3_testbed::setups::accuracy_bench;
use ps3_units::{Amps, SimDuration};

use crate::report::text_table;

/// One row of Table II for one load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Effective sampling rate in kHz.
    pub rate_khz: f64,
    /// Statistics of the block-averaged power readings, in watts.
    pub stats: SampleStats,
}

/// Results for one load current.
#[derive(Debug, Clone)]
pub struct Table2Load {
    /// The load current in amps.
    pub amps: f64,
    /// Rows for 20/10/5/1/0.5 kHz.
    pub rows: Vec<Table2Row>,
}

/// Block sizes corresponding to the paper's rates (20 kHz base).
const BLOCKS: [(f64, usize); 5] = [(20.0, 1), (10.0, 2), (5.0, 4), (1.0, 20), (0.5, 40)];

/// Runs the experiment for the paper's 0.5 A and 1 A loads with
/// `samples` raw samples each (paper: 128 k).
///
/// Each load runs on its own testbed seeded purely from `(seed, amps)`,
/// so the two runs parallelise with output identical to a serial pass.
#[must_use]
pub fn run(samples: usize, seed: u64) -> Vec<Table2Load> {
    rayon::global().par_map(vec![0.5, 1.0], |amps| run_load(amps, samples, seed))
}

fn run_load(amps: f64, samples: usize, seed: u64) -> Table2Load {
    let mut tb = accuracy_bench(
        ModuleKind::Slot10A12V,
        LoadProgram::Constant(Amps::new(amps)),
        seed,
    );
    let ps = tb.connect().expect("connect");
    tb.advance_and_sync(&ps, SimDuration::from_millis(2))
        .expect("settle");
    ps.begin_trace_with_capacity(samples);
    tb.advance_and_sync(&ps, SimDuration::from_micros(samples as u64 * 50))
        .expect("measure");
    let powers = ps.end_trace().powers();
    let rows = BLOCKS
        .iter()
        .map(|&(rate_khz, block)| {
            let averaged = block_average(&powers, block);
            Table2Row {
                rate_khz,
                stats: SampleStats::from_samples(averaged).expect("non-empty"),
            }
        })
        .collect();
    Table2Load { amps, rows }
}

/// Renders the two-load table in the paper's layout.
#[must_use]
pub fn render(loads: &[Table2Load]) -> String {
    let mut out = String::new();
    for load in loads {
        out.push_str(&format!("{} A load:\n", load.amps));
        let rows: Vec<Vec<String>> = load
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.rate_khz),
                    format!("{:.2}", r.stats.min),
                    format!("{:.2}", r.stats.max),
                    format!("{:.3}", r.stats.peak_to_peak()),
                    format!("{:.3}", r.stats.std),
                ]
            })
            .collect();
        out.push_str(&text_table(
            &["F_s [kHz]", "min [W]", "max [W]", "p-p [W]", "std [W]"],
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_shrinks_with_sqrt_of_block() {
        let loads = run(16 * 1024, 99);
        for load in &loads {
            let s20 = load.rows[0].stats.std;
            let s1 = load.rows[3].stats.std; // 1 kHz = block 20
            let ratio = s20 / s1;
            assert!(
                (ratio - 20f64.sqrt()).abs() < 1.2,
                "{} A: std ratio {ratio}, expected ≈4.47",
                load.amps
            );
        }
    }

    #[test]
    fn twenty_khz_std_near_paper() {
        // Paper: std ≈ 0.72 W at 20 kHz for both loads.
        let loads = run(16 * 1024, 5);
        for load in &loads {
            let s = load.rows[0].stats.std;
            assert!(
                (s - 0.72).abs() < 0.15,
                "{} A: 20 kHz std {s}, paper 0.72",
                load.amps
            );
        }
    }

    #[test]
    fn means_match_true_power() {
        let loads = run(8 * 1024, 6);
        // 0.5 A × ~12 V ≈ 6 W; 1 A ≈ 12 W (with small droop).
        let m0 = loads[0].rows[0].stats.mean;
        let m1 = loads[1].rows[0].stats.mean;
        assert!((m0 - 6.0).abs() < 0.5, "mean {m0}");
        assert!((m1 - 12.0).abs() < 0.5, "mean {m1}");
        // Every rate reports the same mean (averaging is unbiased).
        for load in &loads {
            for r in &load.rows {
                assert!((r.stats.mean - load.rows[0].stats.mean).abs() < 0.05);
            }
        }
    }

    #[test]
    fn render_contains_all_rates() {
        let text = render(&run(2048, 1));
        for khz in ["20", "10", "5", "1", "0.5"] {
            assert!(text.contains(khz));
        }
    }
}
