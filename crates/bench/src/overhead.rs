//! The `overhead` experiment: the Diamond et al. RAPL measurement-cost
//! study, reproduced over the modeled probe family.
//!
//! For every probe kind × polling frequency cell, a fresh CPU package
//! runs the same phase-marked workload while one [`EnergySession`]
//! polls it at the cell's cadence. Because every on-CPU read *steals*
//! modeled CPU time from the workload ([`ps3_duts::CpuModel::steal`]),
//! the sweep exposes the study's two headline curves:
//!
//! * **perturbation** — runtime inflation versus the unperturbed
//!   workload, growing with polling frequency and per-read cost;
//! * **energy-estimate error** — the probe's wrap-corrected energy
//!   against ground truth over the identical span, bounded by each
//!   path's quantisation unit and update staleness.
//!
//! The PS3-external probe rides along as the near-zero-perturbation
//! baseline: measuring from *outside* the package, its only DUT cost
//! is the host USB client. Every cell is a pure function of
//! `(kind, freq)` — no wall-clock, no randomness — so the CSV and
//! report are bit-identical across `--jobs` values; cells fan out over
//! the global pool.

use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use ps3_duts::{CpuModel, CpuPhase, CpuSpec, CpuWorkload};
use ps3_pmt::{EnergySession, ProbeKind, SharedCpu};
use ps3_units::{SimDuration, SimTime};

/// One probe-kind × polling-frequency cell of the sweep.
#[derive(Debug, Clone)]
pub struct OverheadCell {
    /// The access path polled.
    pub kind: ProbeKind,
    /// Polling frequency, Hz.
    pub freq_hz: u64,
    /// Counter reads the session issued.
    pub reads: u64,
    /// Perturbed workload runtime, seconds.
    pub runtime_s: f64,
    /// Unperturbed runtime, seconds.
    pub ideal_s: f64,
    /// Runtime inflation over ideal, percent.
    pub inflation_pct: f64,
    /// CPU time the probe stole before the workload finished, ms.
    pub stolen_ms: f64,
    /// The session's wrap-corrected energy estimate, joules.
    pub energy_est_j: f64,
    /// Ground-truth energy over the identical span, joules.
    pub truth_j: f64,
    /// Energy-estimate error against ground truth, percent.
    pub err_pct: f64,
    /// Extra energy the measurement itself burned (perturbed ground
    /// truth versus the unperturbed workload's energy), percent.
    pub energy_overhead_pct: f64,
}

/// The phase-marked workload every cell runs: idle lead-in, a hot
/// compute burst, a memory-bound stretch, a sync lull and a final
/// burst — 1.1 s of work spanning the package's dynamic range.
#[must_use]
pub fn workload() -> CpuWorkload {
    CpuWorkload::new(vec![
        CpuPhase {
            label: 'i',
            util: 0.05,
            work: SimDuration::from_millis(100),
        },
        CpuPhase {
            label: 'c',
            util: 0.95,
            work: SimDuration::from_millis(400),
        },
        CpuPhase {
            label: 'm',
            util: 0.55,
            work: SimDuration::from_millis(250),
        },
        CpuPhase {
            label: 's',
            util: 0.30,
            work: SimDuration::from_millis(150),
        },
        CpuPhase {
            label: 'f',
            util: 0.85,
            work: SimDuration::from_millis(200),
        },
    ])
}

/// Runs the full sweep: every probe kind at every frequency, fanned
/// over the global pool (cells are independent and pure, so the result
/// order — kind-major, frequency-minor — is deterministic).
#[must_use]
pub fn run(freqs: &[u64]) -> Vec<OverheadCell> {
    let cells: Vec<(ProbeKind, u64)> = ProbeKind::ALL
        .iter()
        .flat_map(|&k| freqs.iter().map(move |&f| (k, f)))
        .collect();
    rayon::global().par_map(cells, |(kind, freq)| run_cell(kind, freq))
}

fn run_cell(kind: ProbeKind, freq_hz: u64) -> OverheadCell {
    let wl = workload();
    let spec = CpuSpec::desktop();
    let ideal = wl.ideal_runtime();
    let ideal_j = wl.ideal_energy(&spec).value();
    let cpu: SharedCpu = Arc::new(Mutex::new(CpuModel::new(spec, wl)));
    let mut session = EnergySession::over(kind, Arc::clone(&cpu));
    let pspec = session.spec();
    let cadence = SimDuration::from_nanos(1_000_000_000 / freq_hz);
    // Steal fractions stay well under 1, so the workload always
    // finishes within a few ideal runtimes.
    let hard_cap = SimTime::ZERO + ideal * 4;

    let mut t = SimTime::ZERO;
    let mut last_tick;
    loop {
        session.poll(t);
        last_tick = pspec.tick_before(t);
        let finished = {
            let mut m = cpu.lock();
            m.advance_to(t);
            m.finished_at()
        };
        // One extra update interval after completion so the counter
        // has caught up with the workload's tail.
        if let Some(f) = finished {
            if t >= f + pspec.update_interval {
                break;
            }
        }
        if t >= hard_cap {
            break;
        }
        t += cadence;
    }

    let mut m = cpu.lock();
    let finished_at = m.finished_at().expect("workload finishes under cap");
    let stolen = m.stolen_before_finish();
    let runtime = finished_at - SimTime::ZERO;
    // The model's core identity — inflation IS the stolen time.
    assert_eq!(runtime, ideal + stolen, "steal balance broken");
    // Ground truth over exactly the session's span [tick 0, last tick].
    let truth_j = m.energy_at(last_tick).expect("tick in history").value();
    drop(m);

    let energy_est_j = session.energy().value();
    let err_pct = (energy_est_j - truth_j).abs() / truth_j.max(1e-12) * 100.0;
    OverheadCell {
        kind,
        freq_hz,
        reads: session.reads(),
        runtime_s: runtime.as_secs_f64(),
        ideal_s: ideal.as_secs_f64(),
        inflation_pct: stolen.as_secs_f64() / ideal.as_secs_f64() * 100.0,
        stolen_ms: stolen.as_secs_f64() * 1e3,
        energy_est_j,
        truth_j,
        err_pct,
        energy_overhead_pct: (truth_j - ideal_j) / ideal_j * 100.0,
    }
}

/// Perturbation ratio at the highest swept frequency: worst on-CPU
/// inflation over the PS3-external baseline's (the acceptance bar is
/// ≥ 10×).
#[must_use]
pub fn ps3_ratio_at_max_hz(cells: &[OverheadCell]) -> f64 {
    let max_hz = cells.iter().map(|c| c.freq_hz).max().unwrap_or(0);
    let worst = cells
        .iter()
        .filter(|c| c.freq_hz == max_hz && c.kind.is_on_cpu())
        .map(|c| c.inflation_pct)
        .fold(0.0f64, f64::max);
    let ps3 = cells
        .iter()
        .find(|c| c.freq_hz == max_hz && c.kind == ProbeKind::Ps3External)
        .map_or(0.0, |c| c.inflation_pct);
    if ps3 > 0.0 {
        worst / ps3
    } else {
        f64::INFINITY
    }
}

/// Formats the report: one block per access path, frequency rows.
#[must_use]
pub fn render(cells: &[OverheadCell]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "RAPL measurement-overhead study (Diamond et al.): polling frequency x access path"
    );
    let _ = writeln!(
        out,
        "workload: 5 phases, {:.1} s ideal runtime on a desktop package",
        cells.first().map_or(0.0, |c| c.ideal_s)
    );
    for kind in ProbeKind::ALL {
        let spec = kind.spec();
        let _ = writeln!(
            out,
            "  {} (read {} / update {} / {}-bit):",
            kind.label(),
            spec.read_cost,
            spec.update_interval,
            spec.counter_bits
        );
        let _ = writeln!(
            out,
            "        freq     reads  runtime(s)  inflate%  stolen(ms)    est(J)   truth(J)    err%"
        );
        for c in cells.iter().filter(|c| c.kind == kind) {
            let _ = writeln!(
                out,
                "    {:>7}Hz  {:>8}  {:>10.6}  {:>8.4}  {:>10.4}  {:>8.3}  {:>9.3}  {:>6.4}",
                c.freq_hz,
                c.reads,
                c.runtime_s,
                c.inflation_pct,
                c.stolen_ms,
                c.energy_est_j,
                c.truth_j,
                c.err_pct
            );
        }
    }
    let _ = writeln!(
        out,
        "  ps3-external vs worst on-CPU perturbation at max rate: {:.1}x lower",
        ps3_ratio_at_max_hz(cells)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reproduces_the_overhead_story() {
        let freqs = [10, 1_000, 100_000];
        let cells = run(&freqs);
        assert_eq!(cells.len(), ProbeKind::ALL.len() * freqs.len());
        for kind in ProbeKind::ALL {
            let by_freq: Vec<&OverheadCell> = cells.iter().filter(|c| c.kind == kind).collect();
            assert_eq!(by_freq.len(), freqs.len());
            // Perturbation grows monotonically with polling frequency.
            for w in by_freq.windows(2) {
                assert!(
                    w[1].inflation_pct >= w[0].inflation_pct,
                    "{}: inflation shrank {} -> {} Hz",
                    kind.label(),
                    w[0].freq_hz,
                    w[1].freq_hz
                );
            }
            // Energy estimates stay close to truth everywhere (the
            // biggest envelope is ~2 units + 2 ms of staleness on a
            // ~90 J span — well under 1%).
            for c in &by_freq {
                assert!(c.err_pct < 1.0, "{}: err {}%", kind.label(), c.err_pct);
                assert!(c.runtime_s >= c.ideal_s);
            }
        }
        // The acceptance bar: PS3-external perturbs ≥10× less than the
        // worst on-CPU path at the highest rate.
        let ratio = ps3_ratio_at_max_hz(&cells);
        assert!(ratio >= 10.0, "ratio {ratio}");
        let text = render(&cells);
        assert!(text.contains("ps3-external"), "{text}");
    }

    #[test]
    fn ebpf_pays_background_tax_even_at_low_rates() {
        let cells = run(&[1]);
        let ebpf = cells.iter().find(|c| c.kind == ProbeKind::Ebpf).unwrap();
        let msr = cells.iter().find(|c| c.kind == ProbeKind::Msr).unwrap();
        // At 1 Hz the eBPF kernel timer (2 µs per 1 ms tick) dwarfs
        // MSR's couple of 450 ns reads.
        assert!(
            ebpf.stolen_ms > 10.0 * msr.stolen_ms,
            "ebpf {} ms vs msr {} ms",
            ebpf.stolen_ms,
            msr.stolen_ms
        );
    }

    #[test]
    fn cells_are_bit_identical_across_runs() {
        let a = run(&[100, 10_000]);
        let b = run(&[100, 10_000]);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.freq_hz, y.freq_hz);
            assert_eq!(x.reads, y.reads);
            assert_eq!(x.runtime_s.to_bits(), y.runtime_s.to_bits());
            assert_eq!(x.energy_est_j.to_bits(), y.energy_est_j.to_bits());
            assert_eq!(x.err_pct.to_bits(), y.err_pct.to_bits());
        }
    }
}
