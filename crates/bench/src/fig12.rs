//! Fig 12: SSD power and bandwidth.
//!
//! (a) random reads at increasing request sizes: bandwidth and power
//! rise together until the device saturates. (b) a long random-write
//! run: bandwidth swings with garbage collection while power climbs to
//! ~5 W at the first descend and then stays flat — bandwidth is *not*
//! an indicator of power.

use ps3_core::watts;
use ps3_duts::{FioJob, IoPattern, SsdSpec};
use ps3_testbed::setups::ssd_riser;
use ps3_units::SimDuration;

use crate::report::text_table;

/// One request-size point of Fig 12a.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig12aRow {
    /// Request size in KiB.
    pub size_kib: u32,
    /// Measured read bandwidth in MB/s.
    pub bandwidth_mbps: f64,
    /// Measured average drive power in watts.
    pub power_w: f64,
}

/// The request sizes swept (log-spaced across the paper's 1–4096 KiB).
pub const READ_SIZES: [u32; 13] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Runs Fig 12a: each size measured for `window` (paper: 10 s).
#[must_use]
pub fn run_reads(window: SimDuration, seed: u64) -> Vec<Fig12aRow> {
    let mut tb = ssd_riser(SsdSpec::samsung_980_pro(), seed);
    let ssd = tb.dut();
    let ps = tb.connect().expect("connect");
    let mut rows = Vec::new();
    for &size_kib in &READ_SIZES {
        ssd.lock().start_job(FioJob {
            pattern: IoPattern::RandRead {
                block_kib: size_kib,
            },
            queue_depth: 32,
        });
        tb.advance_and_sync(&ps, SimDuration::from_millis(20))
            .expect("settle");
        let bytes0 = ssd.lock().stats(tb.device_time()).host_read_bytes;
        let s0 = ps.read();
        tb.advance_and_sync(&ps, window).expect("window");
        let bytes1 = ssd.lock().stats(tb.device_time()).host_read_bytes;
        let s1 = ps.read();
        rows.push(Fig12aRow {
            size_kib,
            bandwidth_mbps: (bytes1 - bytes0) as f64 / window.as_secs_f64() / 1e6,
            power_w: watts(&s0, &s1).value(),
        });
    }
    rows
}

/// One per-second point of Fig 12b.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig12bPoint {
    /// Seconds since the random-write workload started.
    pub t_s: f64,
    /// Host write bandwidth over the last second, MB/s.
    pub bandwidth_mbps: f64,
    /// Average drive power over the last second, watts.
    pub power_w: f64,
}

/// Runs Fig 12b: format, precondition, then `seconds` of 4 KiB random
/// writes at one-second reporting granularity (paper: >20 min).
#[must_use]
pub fn run_writes(seconds: u64, seed: u64) -> Vec<Fig12bPoint> {
    let mut tb = ssd_riser(SsdSpec::samsung_980_pro(), seed);
    let ssd = tb.dut();
    let ps = tb.connect().expect("connect");
    {
        let mut drive = ssd.lock();
        drive.format();
        drive.precondition();
        drive.start_job(FioJob {
            pattern: IoPattern::RandWrite { block_kib: 4 },
            queue_depth: 32,
        });
    }
    let mut points = Vec::with_capacity(seconds as usize);
    let mut prev_bytes = ssd.lock().stats(tb.device_time()).host_write_bytes;
    let mut prev_state = ps.read();
    for sec in 1..=seconds {
        tb.advance_and_sync(&ps, SimDuration::from_secs(1))
            .expect("advance");
        let bytes = ssd.lock().stats(tb.device_time()).host_write_bytes;
        let state = ps.read();
        points.push(Fig12bPoint {
            t_s: sec as f64,
            bandwidth_mbps: (bytes - prev_bytes) as f64 / 1e6,
            power_w: watts(&prev_state, &state).value(),
        });
        prev_bytes = bytes;
        prev_state = state;
    }
    points
}

/// Renders Fig 12a as a table.
#[must_use]
pub fn render_reads(rows: &[Fig12aRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.size_kib),
                format!("{:.0}", r.bandwidth_mbps),
                format!("{:.2}", r.power_w),
            ]
        })
        .collect();
    text_table(&["req [KiB]", "BW [MB/s]", "P [W]"], &body)
}

/// Renders a decimated Fig 12b series plus the variability summary.
#[must_use]
pub fn render_writes(points: &[Fig12bPoint]) -> String {
    use std::fmt::Write as _;
    let bw =
        ps3_analysis::SampleStats::from_samples(points.iter().skip(10).map(|p| p.bandwidth_mbps));
    let pw = ps3_analysis::SampleStats::from_samples(points.iter().skip(10).map(|p| p.power_w));
    let mut out = String::new();
    if let (Some(bw), Some(pw)) = (bw, pw) {
        let _ = writeln!(
            out,
            "steady state: bandwidth CV {:.1}% vs power CV {:.1}% — bandwidth is not \
             indicative of power",
            100.0 * bw.std / bw.mean,
            100.0 * pw.std / pw.mean
        );
    }
    let body: Vec<Vec<String>> = points
        .iter()
        .step_by((points.len() / 30).max(1))
        .map(|p| {
            vec![
                format!("{:.0}", p.t_s),
                format!("{:.0}", p.bandwidth_mbps),
                format!("{:.2}", p.power_w),
            ]
        })
        .collect();
    out.push_str(&text_table(&["t [s]", "BW [MB/s]", "P [W]"], &body));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_rise_then_saturate() {
        let rows = run_reads(SimDuration::from_millis(300), 120);
        assert_eq!(rows.len(), READ_SIZES.len());
        // Bandwidth and power grow with request size…
        assert!(rows[0].bandwidth_mbps < rows[6].bandwidth_mbps);
        assert!(rows[0].power_w < rows[6].power_w);
        // …and saturate at the top end.
        let last = rows.last().unwrap();
        let mid = &rows[8]; // 256 KiB
        assert!(last.bandwidth_mbps < mid.bandwidth_mbps * 1.15);
        assert!(
            (last.bandwidth_mbps - 7000.0).abs() < 400.0,
            "sat {}",
            last.bandwidth_mbps
        );
        assert!(
            last.power_w > 5.0 && last.power_w < 7.0,
            "P {}",
            last.power_w
        );
    }

    #[test]
    fn writes_descend_and_power_stabilises() {
        let points = run_writes(40, 121);
        // Burst phase at the start…
        let burst = points[1].bandwidth_mbps;
        assert!(burst > 1000.0, "burst {burst}");
        // …descends into GC-bound steady state.
        let steady: Vec<&Fig12bPoint> = points.iter().skip(10).collect();
        let bw_mean = steady.iter().map(|p| p.bandwidth_mbps).sum::<f64>() / steady.len() as f64;
        assert!(bw_mean < 0.6 * burst, "steady {bw_mean} vs burst {burst}");
        // Power ends up around 5 W and stays there.
        let pw = ps3_analysis::SampleStats::from_samples(steady.iter().map(|p| p.power_w)).unwrap();
        assert!((pw.mean - 5.0).abs() < 0.6, "power {}", pw.mean);
        assert!(pw.std / pw.mean < 0.05, "power CV {}", pw.std / pw.mean);
        // Burst-phase power is lower than steady-state power (the paper:
        // power *increases* to 5 W at the first bandwidth descend).
        assert!(
            points[1].power_w < pw.mean - 0.3,
            "burst P {}",
            points[1].power_w
        );
    }
}
