//! Interference ablation (beyond the paper's figures): differential
//! Hall sensors vs PowerSensor2-era single-ended parts under an
//! external magnetic field.
//!
//! §I lists "current sensors that are hardly sensitive to changes of
//! the external magnetic field" among PowerSensor3's improvements;
//! this experiment quantifies it. Both sensor generations measure the
//! same 8 A load while a static stray field (a nearby PSU coil, a
//! magnetised chassis) is applied; the single-ended part picks it up
//! as a current offset.

use ps3_duts::LoadProgram;
use ps3_sensors::ModuleKind;
use ps3_testbed::TestbedBuilder;
use ps3_units::{Amps, SimDuration};

use crate::report::text_table;

/// Result of one field strength for both sensor generations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceRow {
    /// Applied external field in millitesla.
    pub field_mt: f64,
    /// Mean power error of the differential (PowerSensor3) sensor.
    pub differential_err_w: f64,
    /// Mean power error of the single-ended (PowerSensor2-era) sensor.
    pub single_ended_err_w: f64,
}

/// Sweeps external field strengths.
#[must_use]
pub fn run(fields_mt: &[f64], samples: usize, seed: u64) -> Vec<InterferenceRow> {
    fields_mt
        .iter()
        .map(|&field_mt| InterferenceRow {
            field_mt,
            differential_err_w: mean_error(field_mt, false, samples, seed),
            single_ended_err_w: mean_error(field_mt, true, samples, seed),
        })
        .collect()
}

fn mean_error(field_mt: f64, single_ended: bool, samples: usize, seed: u64) -> f64 {
    let bench = ps3_duts::BenchSetup::twelve_volt(LoadProgram::Constant(Amps::new(8.0)));
    let mut tb = TestbedBuilder::new(bench)
        .attach(ModuleKind::Slot10A12V, ps3_duts::RailId::Ext12V)
        .seed(seed)
        .external_field_mt(field_mt)
        .single_ended_sensors(single_ended)
        .build();
    let dut = tb.dut();
    let ps = tb.connect().expect("connect");
    tb.advance_and_sync(&ps, SimDuration::from_millis(2))
        .expect("settle");
    ps.begin_trace();
    tb.advance_and_sync(&ps, SimDuration::from_micros(samples as u64 * 50))
        .expect("measure");
    let trace = ps.end_trace();
    let truth = dut.lock().reference(tb.device_time()).watts().value();
    trace.mean_power().expect("trace").value() - truth
}

/// Renders the comparison table.
#[must_use]
pub fn render(rows: &[InterferenceRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.field_mt),
                format!("{:+.3}", r.differential_err_w),
                format!("{:+.3}", r.single_ended_err_w),
            ]
        })
        .collect();
    text_table(
        &["field [mT]", "differential err [W]", "single-ended err [W]"],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_sensor_shrugs_off_stray_fields() {
        let rows = run(&[0.0, 5.0], 2048, 33);
        let clean = rows[0];
        let disturbed = rows[1];
        // Without a field both generations agree (same analog core).
        assert!(clean.differential_err_w.abs() < 0.5);
        assert!(clean.single_ended_err_w.abs() < 0.5);
        // With 5 mT the single-ended part drifts by ~0.5 A × 12 V scale
        // worth of error; the differential part barely moves.
        let diff_shift = (disturbed.differential_err_w - clean.differential_err_w).abs();
        let single_shift = (disturbed.single_ended_err_w - clean.single_ended_err_w).abs();
        assert!(diff_shift < 0.2, "differential shift {diff_shift} W");
        assert!(single_shift > 3.0, "single-ended shift {single_shift} W");
        assert!(single_shift > 20.0 * diff_shift);
    }
}
