//! The `tsdb` experiment: query latency of the aggregation pyramid
//! versus a full decode scan, across capture sizes.
//!
//! Each point records a synthetic capture of N frames, opens it once
//! through [`ps3_tsdb::Tsdb`] (pyramid engine) and once through the
//! plain decode path ([`ps3_archive::Archive::stats_decoded`]), then
//! times an identical batch of range queries against both. The
//! deterministic facts — frame/segment/tier-node counts and the
//! exactness of every pyramid answer — go into the report and CSV;
//! the latency curve is machine-dependent and is recorded only as
//! `BENCH_repro.json` metrics, so `repro` output stays bit-identical
//! across `--jobs` values.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use ps3_archive::{ArchiveFrame, SegmentWriter};
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_tsdb::Tsdb;
use ps3_units::SimTime;

/// Range queries per batch: the full span plus this many seeded
/// subranges, so edge-block decodes and interior tier hits both count.
const SUBRANGES: usize = 16;
/// Timed repetitions of the whole batch per engine.
const REPS: usize = 3;
/// Sample cadence of the synthetic capture, µs.
const CADENCE_US: u64 = 50;
/// Frames per sealed segment. The Rice payload decodes per segment,
/// so this is the granularity a range edge costs; captures aimed at
/// interactive queries keep it small, and the compactor's re-tuned
/// codec keeps the per-segment overhead amortised.
const SEGMENT_FRAMES: usize = 1_000;

/// One capture-size point on the latency curve.
#[derive(Debug, Clone)]
pub struct TsdbPoint {
    /// Frames in the capture.
    pub frames: u64,
    /// Sealed segments the capture spans.
    pub segments: usize,
    /// Summary blocks (tier 0) under the pyramid.
    pub blocks: u64,
    /// Tier-1 pyramid nodes.
    pub tier1: u64,
    /// Tier-2 pyramid nodes.
    pub tier2: u64,
    /// Samples the full-span stats query counted.
    pub count: u64,
    /// Every pyramid stats answer agreed with the decode scan
    /// (count/min/max bit-for-bit, sum within 1e-9 relative).
    pub stats_exact: bool,
    /// Worst relative disagreement of pyramid energy against the
    /// archive's flat energy path across the batch.
    pub energy_rel_err: f64,
    /// Wall-clock seconds for the pyramid engine's batch
    /// (machine-dependent; metrics only).
    pub pyramid_wall_s: f64,
    /// Wall-clock seconds for the decode scan's batch
    /// (machine-dependent; metrics only).
    pub decode_wall_s: f64,
}

impl TsdbPoint {
    /// Decode-scan latency over pyramid latency: how many times
    /// faster the tier walk answers the same batch.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.pyramid_wall_s > 0.0 {
            self.decode_wall_s / self.pyramid_wall_s
        } else {
            0.0
        }
    }
}

fn temp_path(frames: u64, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ps3-bench-tsdb-{}-{frames}-{seed:x}.ps3a",
        std::process::id()
    ))
}

fn bench_configs() -> [SensorConfig; SENSOR_SLOTS] {
    let mut configs: [SensorConfig; SENSOR_SLOTS] =
        core::array::from_fn(|_| SensorConfig::unpopulated());
    configs[0] = SensorConfig::new("I0", 3.3, 0.105, true);
    configs[1] = SensorConfig::new("U0", 3.3, 0.2171, true);
    configs
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn write_capture(path: &Path, frames: u64, seed: u64) {
    let mut writer =
        SegmentWriter::create_with(path, bench_configs(), SEGMENT_FRAMES).expect("create");
    for i in 0..frames {
        let r = mix(seed ^ i);
        let mut raw = [0u16; SENSOR_SLOTS];
        raw[0] = (r % 1024) as u16;
        raw[1] = (r >> 10 & 1023) as u16;
        writer
            .push(ArchiveFrame {
                time: SimTime::from_micros(25 + CADENCE_US * i),
                raw,
                present: 0b0011,
                marker: (i % 8191 == 0).then_some('m'),
            })
            .expect("push");
    }
    writer.finish().expect("seal");
}

/// The query batch for one capture: the full span first, then seeded
/// subranges (a pure function of the seed, so both engines and every
/// `--jobs` value see the same work).
fn ranges(frames: u64, seed: u64) -> Vec<(SimTime, SimTime)> {
    let span_end = 25 + CADENCE_US * frames;
    let mut out = vec![(SimTime::from_micros(0), SimTime::from_micros(span_end))];
    for q in 0..SUBRANGES as u64 {
        let a = mix(seed ^ 0x7151_u64 ^ q) % span_end;
        let b = mix(seed ^ 0xD0DB_u64 ^ q) % span_end;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        out.push((SimTime::from_micros(lo), SimTime::from_micros(hi + 1)));
    }
    out
}

/// Runs the latency curve: one capture per frame count, sequentially
/// (each query batch already fans segment scans over the pool).
#[must_use]
pub fn run(frame_counts: &[u64], seed: u64) -> Vec<TsdbPoint> {
    frame_counts
        .iter()
        .map(|&frames| run_point(frames, seed))
        .collect()
}

fn run_point(frames: u64, seed: u64) -> TsdbPoint {
    let path = temp_path(frames, seed);
    write_capture(&path, frames, seed);
    let tsdb = Tsdb::open(&path).expect("open tsdb");
    let batch = ranges(frames, seed);

    // Exactness before timing: every pyramid answer against the
    // decode scan, energy against the archive's flat path.
    let mut stats_exact = true;
    let mut energy_rel_err = 0.0f64;
    let mut count = 0;
    for (i, &(start, end)) in batch.iter().enumerate() {
        let pyr = tsdb.stats(start, end).expect("pyramid stats");
        let dec = tsdb.archive().stats_decoded(start, end).expect("decoded");
        let sum_tol = 1e-9 * pyr.sum_w.abs().max(dec.sum_w.abs()).max(1.0);
        stats_exact &= pyr.count == dec.count
            && pyr.min_w.to_bits() == dec.min_w.to_bits()
            && pyr.max_w.to_bits() == dec.max_w.to_bits()
            && (pyr.sum_w - dec.sum_w).abs() <= sum_tol;
        let e_pyr = tsdb.energy(start, end).expect("pyramid energy").value();
        let e_arc = tsdb.archive().energy(start, end).expect("energy").value();
        let rel = (e_pyr - e_arc).abs() / e_arc.abs().max(1e-12);
        energy_rel_err = energy_rel_err.max(rel);
        if i == 0 {
            count = pyr.count;
        }
    }

    let start = Instant::now(); // ps3-lint: allow(determinism) reason="wall-clock latency metric: measures real elapsed query time, outside the simulated timeline"
    for _ in 0..REPS {
        for &(lo, hi) in &batch {
            let _ = tsdb.stats(lo, hi).expect("pyramid stats");
        }
    }
    let pyramid_wall_s = start.elapsed().as_secs_f64();

    let start = Instant::now(); // ps3-lint: allow(determinism) reason="wall-clock latency metric: measures real elapsed query time, outside the simulated timeline"
    for _ in 0..REPS {
        for &(lo, hi) in &batch {
            let _ = tsdb.archive().stats_decoded(lo, hi).expect("decoded");
        }
    }
    let decode_wall_s = start.elapsed().as_secs_f64();

    let counts = tsdb.pyramid().counts();
    let point = TsdbPoint {
        frames,
        segments: tsdb.archive().segments().len(),
        blocks: counts.blocks,
        tier1: counts.tier1,
        tier2: counts.tier2,
        count,
        stats_exact,
        energy_rel_err,
        pyramid_wall_s,
        decode_wall_s,
    };
    drop(tsdb);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(ps3_archive::index_path_for(&path)).ok();
    std::fs::remove_file(ps3_tsdb::pyramid_path_for(&path)).ok();
    point
}

/// Formats the report section (deterministic facts only — the latency
/// curve lives in `BENCH_repro.json`).
#[must_use]
pub fn render(points: &[TsdbPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ps3-tsdb: pyramid vs full-decode queries, {} ranges x {} reps per point",
        SUBRANGES + 1,
        REPS
    );
    let _ = writeln!(
        out,
        "    frames  segs  blocks  tier1  tier2     count  stats-exact  energy rel err"
    );
    for p in points {
        let _ = writeln!(
            out,
            "  {:>8}  {:>4}  {:>6}  {:>5}  {:>5}  {:>8}  {:>11}  {:.2e}",
            p.frames,
            p.segments,
            p.blocks,
            p.tier1,
            p.tier2,
            p.count,
            if p.stats_exact { "yes" } else { "NO" },
            p.energy_rel_err
        );
    }
    let _ = writeln!(
        out,
        "  latency-vs-capture-size curve recorded in BENCH_repro.json (wall-clock)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_point_is_exact_and_accounted() {
        let points = run(&[3_000, 9_000], 0x7EDB);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.segments >= 1, "frames={}", p.frames);
            assert_eq!(p.count, p.frames, "full span counts every frame");
            assert!(p.stats_exact, "frames={}", p.frames);
            assert!(p.energy_rel_err <= 1e-9, "frames={}", p.frames);
            assert!(p.blocks >= p.frames / 1000, "frames={}", p.frames);
            assert!(p.pyramid_wall_s > 0.0 && p.decode_wall_s > 0.0);
        }
        let text = render(&points);
        assert!(text.contains("yes"), "{text}");
        assert!(!text.contains("NO"), "{text}");
    }
}
