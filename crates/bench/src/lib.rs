//! Experiment harness: one module per table/figure of the paper.
//!
//! Every module exposes a `run(...)` function returning plain data
//! (rows/series) plus a `render(...)` that formats the paper-style
//! output. The `repro` binary drives them and writes CSV artifacts;
//! the Criterion benches in `benches/` time reduced-scale versions so
//! `cargo bench` regenerates every experiment.
//!
//! | Paper item | Module |
//! |---|---|
//! | Table I (worst-case accuracy) | [`table1`] |
//! | Fig 4 (power error vs load sweep) | [`fig4`] |
//! | Table II (error vs sampling rate) | [`table2`] |
//! | §IV-B (50-hour stability) | [`stability`] |
//! | Fig 5 (step response) | [`fig5`] |
//! | Fig 7a/7b (GPU traces vs vendor APIs) | [`fig7`] |
//! | Fig 8 / Fig 10 (auto-tuning Pareto + 3.25×) | [`fig8`] |
//! | Fig 12a/12b (SSD bandwidth vs power) | [`fig12`] |
//! | Interference ablation (beyond the paper) | [`interference`] |
//! | §II tool-landscape comparison (beyond the paper) | [`related`] |
//! | Power-capping study (beyond the paper) | [`capping`] |
//! | §IV-A noise decomposition | [`noise`] |
//! | Archive store cost/exactness (beyond the paper) | [`archive`] |
//! | Fleet coordinator scaling (beyond the paper) | [`fleet`] |
//! | Pyramid query latency (beyond the paper) | [`tsdb`] |
//! | C10k stream daemon scaling (beyond the paper) | [`stream`] |

#![forbid(unsafe_code)]

/// Renders a trace as a 72×12 ASCII chart (shared by the `repro`
/// binary's figure output).
#[must_use]
pub fn report_plot(trace: &ps3_analysis::Trace) -> String {
    ps3_analysis::ascii_trace(trace, 72, 12)
}

pub mod archive;
pub mod capping;
pub mod driver;
pub mod fig12;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fleet;
pub mod interference;
pub mod noise;
pub mod overhead;
pub mod related;
pub mod report;
pub mod sim;
pub mod stability;
pub mod stream;
pub mod table1;
pub mod table2;
pub mod tsdb;
