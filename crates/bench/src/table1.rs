//! Table I: theoretical worst-case accuracy of the sensor modules.

use ps3_sensors::budget::{table1, ErrorBudget};
use ps3_sensors::AdcSpec;

use crate::report::text_table;

/// The paper's reference values: (E_u volts, E_i amps, E_p watts) per
/// row, for shape comparison in the rendered output.
pub const PAPER_ROWS: [(&str, f64, f64, f64); 4] = [
    ("12 V / 10 A", 0.0286, 0.35, 4.2),
    ("3.3 V / 10 A", 0.0199, 0.35, 1.2),
    ("USB-C (20 V / 10 A)", 0.0286, 0.35, 7.0),
    ("Ext (12 V / 20 A)", 0.0286, 0.41, 5.0),
];

/// Computes the four budgets of Table I.
#[must_use]
pub fn run() -> [ErrorBudget; 4] {
    table1(&AdcSpec::POWERSENSOR3)
}

/// Renders the table with the paper's values alongside.
#[must_use]
pub fn render(rows: &[ErrorBudget; 4]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .zip(PAPER_ROWS)
        .map(|(b, (label, eu, ei, ep))| {
            vec![
                label.to_owned(),
                format!("±{:.1}", b.voltage_error.value() * 1e3),
                format!("±{eu_mv:.1}", eu_mv = eu * 1e3),
                format!("±{:.2}", b.current_error.value()),
                format!("±{ei:.2}"),
                format!("±{:.1}", b.power_error.value()),
                format!("±{ep:.1}"),
            ]
        })
        .collect();
    text_table(
        &[
            "Module", "V [mV]", "paper", "I [A]", "paper", "P [W]", "paper",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_table_contains_all_rows() {
        let text = render(&run());
        for (label, ..) in PAPER_ROWS {
            assert!(text.contains(label), "{text}");
        }
    }

    #[test]
    fn budgets_within_five_percent_of_paper() {
        for (b, (_, eu, ei, ep)) in run().iter().zip(PAPER_ROWS) {
            assert!((b.voltage_error.value() - eu).abs() / eu < 0.05);
            assert!((b.current_error.value() - ei).abs() / ei < 0.05);
            assert!((b.power_error.value() - ep).abs() / ep < 0.05);
        }
    }
}
