//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--full] [experiment...]
//! experiments: table1 table2 fig4 fig5 stability fig7a fig7b fig8 fig10
//!              fig12a fig12b   (default: all)
//! ```
//!
//! Default scales are reduced so a full run finishes in minutes;
//! `--full` uses the paper's sample counts (128 k samples per point,
//! the whole 5120-configuration sweep, 50 hours of stability, >20 min
//! of random writes).

use std::time::Instant;

use ps3_bench::{
    capping, fig12, fig4, fig5, fig7, fig8, interference, noise, related, report, stability,
    table1, table2,
};
use ps3_units::SimDuration;

struct Scale {
    samples_per_point: usize,
    table2_samples: usize,
    stability_hours: f64,
    stability_window: usize,
    fig7_timing: fig7::Fig7Timing,
    tuner_stride: usize,
    tuner_clock_stride: usize,
    fig12a_window: SimDuration,
    fig12b_seconds: u64,
}

impl Scale {
    fn reduced() -> Self {
        Self {
            samples_per_point: 16 * 1024,
            table2_samples: 32 * 1024,
            stability_hours: 10.0,
            stability_window: 16 * 1024,
            fig7_timing: fig7::Fig7Timing::paper(),
            tuner_stride: 8,
            tuner_clock_stride: 1,
            fig12a_window: SimDuration::from_secs(1),
            fig12b_seconds: 240,
        }
    }

    fn full() -> Self {
        Self {
            samples_per_point: 128 * 1024,
            table2_samples: 128 * 1024,
            stability_hours: 50.0,
            stability_window: 128 * 1024,
            fig7_timing: fig7::Fig7Timing::paper(),
            tuner_stride: 1,
            tuner_clock_stride: 1,
            fig12a_window: SimDuration::from_secs(10),
            fig12b_seconds: 1300,
        }
    }
}

const SEED: u64 = 0x5EED_2026;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full {
        Scale::full()
    } else {
        Scale::reduced()
    };
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wanted.is_empty() {
        wanted = vec![
            "table1",
            "table2",
            "fig4",
            "fig5",
            "stability",
            "fig7a",
            "fig7b",
            "fig8",
            "fig10",
            "fig12a",
            "fig12b",
            "interference",
        ];
    }
    for experiment in wanted {
        let start = Instant::now();
        println!("==============================================================");
        println!("== {experiment}");
        println!("==============================================================");
        match experiment {
            "table1" => run_table1(),
            "table2" => run_table2(&scale),
            "fig4" => run_fig4(&scale),
            "fig5" => run_fig5(),
            "stability" => run_stability(&scale),
            "fig7a" => run_fig7a(&scale),
            "fig7b" => run_fig7b(&scale),
            "fig8" => run_fig8(&scale),
            "fig10" => run_fig10(&scale),
            "fig12a" => run_fig12a(&scale),
            "fig12b" => run_fig12b(&scale),
            "interference" => run_interference(&scale),
            "related" => run_related(&scale),
            "capping" => run_capping(),
            "noise" => run_noise(&scale),
            other => eprintln!("unknown experiment: {other}"),
        }
        println!(
            "[{experiment} took {:.1} s]\n",
            start.elapsed().as_secs_f64()
        );
    }
}

fn run_table1() {
    let rows = table1::run();
    print!("{}", table1::render(&rows));
    let csv: Vec<Vec<f64>> = rows
        .iter()
        .map(|b| {
            vec![
                b.rail.value(),
                b.full_scale.value(),
                b.voltage_error.value(),
                b.current_error.value(),
                b.power_error.value(),
            ]
        })
        .collect();
    save(
        "table1.csv",
        &["rail_v", "fullscale_a", "e_u", "e_i", "e_p"],
        &csv,
    );
}

fn run_table2(scale: &Scale) {
    let loads = table2::run(scale.table2_samples, SEED);
    print!("{}", table2::render(&loads));
    let mut csv = Vec::new();
    for load in &loads {
        for r in &load.rows {
            csv.push(vec![
                load.amps,
                r.rate_khz,
                r.stats.min,
                r.stats.max,
                r.stats.peak_to_peak(),
                r.stats.std,
            ]);
        }
    }
    save(
        "table2.csv",
        &["load_a", "rate_khz", "min_w", "max_w", "pp_w", "std_w"],
        &csv,
    );
}

fn run_fig4(scale: &Scale) {
    let series = fig4::run(scale.samples_per_point, SEED);
    let mut csv = Vec::new();
    for s in &series {
        println!("{}", fig4::render(s));
        for p in &s.points {
            csv.push(vec![
                s.module.nominal_rail().value(),
                p.amps,
                p.expected_w,
                p.mean_err,
                p.min_err,
                p.max_err,
            ]);
        }
    }
    save(
        "fig4.csv",
        &[
            "rail_v",
            "amps",
            "expected_w",
            "mean_err",
            "min_err",
            "max_err",
        ],
        &csv,
    );
}

fn run_fig5() {
    let r = fig5::run(30, SEED);
    print!("{}", fig5::render(&r));
    println!("ms-scale view:");
    print!("{}", ps3_bench::report_plot(&r.trace));
    let csv: Vec<Vec<f64>> = r
        .trace
        .iter()
        .map(|s| vec![s.time.as_secs_f64(), s.power.value()])
        .collect();
    save("fig5.csv", &["t_s", "power_w"], &csv);
}

fn run_stability(scale: &Scale) {
    let r = stability::run(
        scale.stability_hours,
        SimDuration::from_secs(900),
        scale.stability_window,
        SEED,
    );
    print!("{}", stability::render(&r));
    let csv: Vec<Vec<f64>> = r
        .probes
        .iter()
        .map(|p| vec![p.hours, p.avg_w, p.min_w, p.max_w])
        .collect();
    save("stability.csv", &["hours", "avg_w", "min_w", "max_w"], &csv);
}

fn run_fig7a(scale: &Scale) {
    let r = fig7::run_nvidia(scale.fig7_timing, SEED);
    print!("{}", fig7::render(&r));
    println!("PowerSensor3 trace:");
    print!("{}", ps3_bench::report_plot(&r.ps3));
    save_fig7(&r, "fig7a");
}

fn run_fig7b(scale: &Scale) {
    let r = fig7::run_amd(scale.fig7_timing, SEED);
    print!("{}", fig7::render(&r));
    println!("PowerSensor3 trace:");
    print!("{}", ps3_bench::report_plot(&r.ps3));
    save_fig7(&r, "fig7b");
}

fn save_fig7(r: &fig7::Fig7Result, name: &str) {
    // PS3 trace decimated to 2 kHz for a manageable artifact.
    let csv: Vec<Vec<f64>> = r
        .ps3
        .iter()
        .step_by(10)
        .map(|s| vec![s.time.as_secs_f64(), s.power.value()])
        .collect();
    save(&format!("{name}_ps3.csv"), &["t_s", "power_w"], &csv);
    for (sensor_name, trace) in &r.onboard {
        let slug: String = sensor_name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let csv: Vec<Vec<f64>> = trace
            .iter()
            .map(|s| vec![s.time.as_secs_f64(), s.power.value()])
            .collect();
        save(&format!("{name}_{slug}.csv"), &["t_s", "power_w"], &csv);
    }
}

fn run_fig8(scale: &Scale) {
    let f = fig8::run_rtx4000(scale.tuner_stride, scale.tuner_clock_stride, SEED);
    print!("{}", fig8::render(&f));
    save_tuning(&f, "fig8.csv");
}

fn run_fig10(scale: &Scale) {
    // Jetson kernels are ~8× longer; thin the sweep accordingly.
    let f = fig8::run_jetson(scale.tuner_stride * 4, scale.tuner_clock_stride, SEED);
    print!("{}", fig8::render(&f));
    save_tuning(&f, "fig10.csv");
}

fn save_tuning(f: &fig8::TuningFigure, name: &str) {
    let csv: Vec<Vec<f64>> = f
        .outcome
        .records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                r.clock_mhz,
                r.tflops,
                r.tflop_per_joule,
                r.energy_j,
                if f.pareto.contains(&i) { 1.0 } else { 0.0 },
            ]
        })
        .collect();
    save(
        name,
        &["clock_mhz", "tflops", "tflop_per_j", "energy_j", "pareto"],
        &csv,
    );
}

fn run_fig12a(scale: &Scale) {
    let rows = fig12::run_reads(scale.fig12a_window, SEED);
    print!("{}", fig12::render_reads(&rows));
    let csv: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| vec![f64::from(r.size_kib), r.bandwidth_mbps, r.power_w])
        .collect();
    save("fig12a.csv", &["size_kib", "bw_mbps", "power_w"], &csv);
}

fn run_fig12b(scale: &Scale) {
    let points = fig12::run_writes(scale.fig12b_seconds, SEED);
    print!("{}", fig12::render_writes(&points));
    let bw: Vec<f64> = points.iter().map(|p| p.bandwidth_mbps).collect();
    println!("bandwidth over time (MB/s):");
    print!("{}", ps3_analysis::ascii_plot(&bw, 72, 10));
    let csv: Vec<Vec<f64>> = points
        .iter()
        .map(|p| vec![p.t_s, p.bandwidth_mbps, p.power_w])
        .collect();
    save("fig12b.csv", &["t_s", "bw_mbps", "power_w"], &csv);
}

fn run_interference(scale: &Scale) {
    let fields = [0.0, 1.0, 2.0, 5.0, 10.0];
    let rows = interference::run(&fields, scale.table2_samples / 4, SEED);
    print!("{}", interference::render(&rows));
    let csv: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| vec![r.field_mt, r.differential_err_w, r.single_ended_err_w])
        .collect();
    save(
        "interference.csv",
        &["field_mt", "differential_err_w", "single_ended_err_w"],
        &csv,
    );
}

fn run_related(scale: &Scale) {
    let rows = related::run(scale.fig7_timing, SEED);
    print!("{}", related::render(&rows));
    let csv: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tool.rate_hz,
                r.samples as f64,
                r.min_w,
                r.max_w,
                r.energy_j,
                f64::from(u8::from(r.sees_dips)),
            ]
        })
        .collect();
    save(
        "related.csv",
        &[
            "rate_hz",
            "samples",
            "min_w",
            "max_w",
            "energy_j",
            "sees_dips",
        ],
        &csv,
    );
}

fn run_capping() {
    let caps = [130.0, 115.0, 100.0, 85.0, 70.0, 55.0, 45.0, 35.0, 25.0];
    let rows = capping::run(&caps, SEED);
    print!("{}", capping::render(&rows));
    let csv: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| vec![r.cap_w, r.runtime_s, r.energy_j, r.mean_power_w])
        .collect();
    save(
        "capping.csv",
        &["cap_w", "runtime_s", "energy_j", "mean_power_w"],
        &csv,
    );
}

fn run_noise(scale: &Scale) {
    let loads = [0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 9.5];
    let rows = noise::run(&loads, scale.table2_samples / 16, SEED);
    print!("{}", noise::render(&rows));
    let csv: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            vec![
                r.amps,
                r.sigma_i,
                r.sigma_u,
                r.current_term_w,
                r.voltage_term_w,
            ]
        })
        .collect();
    save(
        "noise.csv",
        &["amps", "sigma_i", "sigma_u", "u_term_w", "i_term_w"],
        &csv,
    );
}

fn save(name: &str, header: &[&str], rows: &[Vec<f64>]) {
    match report::write_csv(name, header, rows) {
        Ok(path) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[failed to write {name}: {e}]"),
    }
}
