//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--full] [--smoke] [--jobs N] [--compare-serial] [experiment...]
//! experiments: table1 table2 fig4 fig5 stability fig7a fig7b fig8 fig10
//!              fig12a fig12b interference archive tsdb overhead sim fleet
//!              stream
//!              (default: all)
//! ```
//!
//! Default scales are reduced so a full run finishes in minutes;
//! `--full` uses the paper's sample counts (128 k samples per point,
//! the whole 5120-configuration sweep, 50 hours of stability, >20 min
//! of random writes) and `--smoke` a seconds-scale CI subset.
//!
//! Experiments run in parallel on `--jobs` threads (default: the
//! `PS3_JOBS` environment variable, else all cores; `--jobs 1` is the
//! legacy serial mode). Output is bit-identical for every thread
//! count. `--compare-serial` first times a serial pass, so the emitted
//! `BENCH_repro.json` carries a measured speedup instead of only the
//! parallel wall times.

use std::process::ExitCode;
use std::time::Instant;

use ps3_bench::driver::{self, ExperimentRun, Scale};
use ps3_bench::report;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::reduced();
    let mut jobs: Option<usize> = None;
    let mut compare_serial = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => scale = Scale::full(),
            "--smoke" => scale = Scale::smoke(),
            "--compare-serial" => compare_serial = true,
            "--jobs" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = Some(n),
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag: {other}");
                return ExitCode::FAILURE;
            }
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() {
        wanted = driver::DEFAULT_EXPERIMENTS
            .iter()
            .map(|n| (*n).to_owned())
            .collect();
    }
    let names: Vec<&str> = wanted.iter().map(String::as_str).collect();

    // --jobs beats PS3_JOBS beats all cores (configure_global(0)).
    rayon::configure_global(jobs.unwrap_or(0));
    let jobs_used = rayon::current_num_threads();

    let serial_wall_s = if compare_serial && jobs_used > 1 {
        rayon::configure_global(1);
        let start = Instant::now(); // ps3-lint: allow(determinism) reason="wall-clock speedup metric: measures real elapsed time of the parallel run, outside the simulated timeline"
        let _ = driver::run_all(&names, &scale, driver::SEED);
        let serial = start.elapsed().as_secs_f64();
        rayon::configure_global(jobs.unwrap_or(0));
        Some(serial)
    } else {
        None
    };

    let start = Instant::now(); // ps3-lint: allow(determinism) reason="wall-clock speedup metric: measures real elapsed time of the parallel run, outside the simulated timeline"
    let runs = driver::run_all(&names, &scale, driver::SEED);
    let total_wall_s = start.elapsed().as_secs_f64();

    let mut entries = Vec::new();
    let mut unknown = false;
    for (name, run) in names.iter().zip(&runs) {
        println!("==============================================================");
        println!("== {name}");
        println!("==============================================================");
        let ExperimentRun { output, wall_s } = run;
        match output {
            Some(out) => {
                print!("{}", out.report);
                for csv in &out.csvs {
                    match report::write_csv(&csv.name, &csv.header, &csv.rows) {
                        Ok(path) => println!("[wrote {}]", path.display()),
                        Err(e) => eprintln!("[failed to write {}: {e}]", csv.name),
                    }
                }
                entries.push(report::BenchEntry {
                    name: out.name.clone(),
                    wall_s: *wall_s,
                    samples: out.samples,
                    metrics: out.metrics.clone(),
                });
            }
            None => {
                eprintln!("unknown experiment: {name}");
                unknown = true;
            }
        }
        println!("[{name} took {wall_s:.1} s]\n");
    }

    println!("== timing summary ({jobs_used} jobs) ==");
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            let rate = if e.samples > 0 && e.wall_s > 0.0 {
                format!("{:.0}", e.samples as f64 / e.wall_s)
            } else {
                "-".to_owned()
            };
            vec![e.name.clone(), format!("{:.2}", e.wall_s), rate]
        })
        .collect();
    print!(
        "{}",
        report::text_table(&["experiment", "wall [s]", "samples/s"], &rows)
    );
    println!("total: {total_wall_s:.2} s");
    if let Some(serial) = serial_wall_s {
        println!(
            "serial reference: {serial:.2} s -> speedup {:.2}x",
            serial / total_wall_s
        );
    }

    match report::write_bench_json(jobs_used, total_wall_s, serial_wall_s, &entries) {
        Ok(path) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("[failed to write BENCH_repro.json: {e}]"),
    }

    if unknown {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
