//! Fig 5: step response.
//!
//! The electronic load toggles between 3.3 A and 8 A at 100 Hz
//! (50 % modulation of an 8 A setpoint); the 12 V / 10 A module samples
//! at 20 kHz. The figure shows the square wave on a millisecond scale
//! and a single edge on a microsecond scale; the take-away is that the
//! sensor follows power transients within a sample or two.

use ps3_analysis::{dominant_frequency, find_edges, rise_time, step_levels, Trace};
use ps3_duts::LoadProgram;
use ps3_sensors::ModuleKind;
use ps3_testbed::setups::accuracy_bench;
use ps3_units::{Amps, SimDuration, SimTime};

/// The step-response result.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// The full 20 kHz trace (tens of ms — the left panel).
    pub trace: Trace,
    /// Low/high plateau levels in watts.
    pub levels: (f64, f64),
    /// 10–90 % rise time of the first clean rising edge.
    pub rise: Option<SimDuration>,
    /// Number of edges detected.
    pub edges: usize,
    /// Zoom window around one rising edge (the right panel).
    pub zoom: Trace,
    /// Modulation frequency recovered from the trace (sanity check on
    /// the end-to-end timing; the load runs at 100 Hz).
    pub detected_hz: Option<f64>,
}

/// Runs the experiment, capturing `millis` of trace (default 30).
#[must_use]
pub fn run(millis: u64, seed: u64) -> Fig5Result {
    let mut tb = accuracy_bench(
        ModuleKind::Slot10A12V,
        LoadProgram::SquareWave {
            low: Amps::new(3.3),
            high: Amps::new(8.0),
            frequency_hz: 100.0,
        },
        seed,
    );
    let ps = tb.connect().expect("connect");
    // Let a full period pass before capturing.
    tb.advance_and_sync(&ps, SimDuration::from_millis(10))
        .expect("settle");
    ps.begin_trace();
    tb.advance_and_sync(&ps, SimDuration::from_millis(millis))
        .expect("capture");
    let trace = ps.end_trace();

    let (low, high) = step_levels(&trace).expect("square wave has two levels");
    let edges = find_edges(&trace, low, high, SimDuration::from_millis(1));
    let rise = rise_time(&trace, low, high, SimTime::ZERO);
    // Zoom: 500 µs around the first rising edge.
    let zoom = edges
        .iter()
        .find(|e| e.rising)
        .map(|e| {
            trace.slice(
                e.time - SimDuration::from_micros(250),
                e.time + SimDuration::from_micros(250),
            )
        })
        .unwrap_or_default();
    let candidates: Vec<f64> = (1..=40).map(|k| f64::from(k) * 10.0).collect();
    let detected_hz = dominant_frequency(&trace, &candidates);
    Fig5Result {
        levels: (low, high),
        rise,
        edges: edges.len(),
        zoom,
        detected_hz,
        trace,
    }
}

/// Renders the summary and the µs-scale edge samples.
#[must_use]
pub fn render(r: &Fig5Result) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "levels: {:.1} W / {:.1} W (expected ≈39.6/95.6), edges: {}, 10-90% rise: {}, \
         detected modulation: {} Hz (load: 100 Hz)",
        r.levels.0,
        r.levels.1,
        r.edges,
        r.rise.map_or("n/a".to_owned(), |d| d.to_string()),
        r.detected_hz
            .map_or("n/a".to_owned(), |f| format!("{f:.0}"))
    );
    let _ = writeln!(out, "edge zoom (µs scale):");
    if let Some(first) = r.zoom.samples().first() {
        for s in r.zoom.iter() {
            let _ = writeln!(
                out,
                "  t+{:>4} µs  {:7.2} W",
                (s.time - first.time).as_micros(),
                s.power.value()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_square_wave_and_fast_edges() {
        let r = run(30, 12);
        // 100 Hz over 30 ms → ~6 edges.
        assert!(r.edges >= 4, "edges {}", r.edges);
        // Levels: 3.3 A & 8 A at ~12 V → ≈39.6 W and ≈95.5 W.
        assert!((r.levels.0 - 39.6).abs() < 3.0, "low {}", r.levels.0);
        assert!((r.levels.1 - 95.5).abs() < 3.0, "high {}", r.levels.1);
        // The response settles within a few 50 µs samples.
        let rise = r.rise.expect("a rising edge exists");
        assert!(
            rise <= SimDuration::from_micros(200),
            "rise time {rise} too slow for a 20 kHz sensor"
        );
        assert!(!r.zoom.is_empty());
        // The 100 Hz modulation is recoverable from the capture.
        assert_eq!(r.detected_hz, Some(100.0));
    }
}
