//! Shared reporting helpers: aligned text tables and CSV artifacts.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ps3_analysis::csv::CsvWriter;

/// Renders rows of cells as an aligned text table with a header.
#[must_use]
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in header.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Where CSV artifacts land (`results/` at the workspace root, or the
/// current directory as a fallback).
#[must_use]
pub fn results_dir() -> PathBuf {
    let candidate = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    candidate
}

/// Writes rows of `f64` values (with a string header) as a CSV file in
/// the results directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<f64>]) -> io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let file = fs::File::create(&path)?;
    let mut w = CsvWriter::new(io::BufWriter::new(file));
    w.write_row(header.iter().copied())?;
    for row in rows {
        w.write_f64_row(row.iter().copied(), 6)?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = text_table(
            &["a", "bee"],
            &[
                vec!["1".into(), "2".into()],
                vec!["100".into(), "2000".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bee"));
        assert!(lines[3].contains("100"));
        // All lines equal width (trailing spaces aside).
        let w: Vec<usize> = lines.iter().map(|l| l.trim_end().len()).collect();
        assert!(w[2] >= w[0] - 2);
    }

    #[test]
    fn csv_roundtrip_on_disk() {
        let path = write_csv(
            "unit_test_artifact.csv",
            &["x", "y"],
            &[vec![1.0, 2.0], vec![3.5, 4.25]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("x,y\n1.000000,2.000000\n"));
        let _ = std::fs::remove_file(path);
    }
}
