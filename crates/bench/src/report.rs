//! Shared reporting helpers: aligned text tables and CSV artifacts.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ps3_analysis::csv::CsvWriter;

/// Renders rows of cells as an aligned text table with a header.
#[must_use]
pub fn text_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(out, "{:>w$}  ", h, w = widths[i]);
    }
    out.push('\n');
    for (i, _) in header.iter().enumerate() {
        let _ = write!(out, "{}  ", "-".repeat(widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(out, "{:>w$}  ", cell, w = widths[i]);
        }
        out.push('\n');
    }
    out
}

/// Where CSV artifacts land: `$PS3_RESULTS_DIR` when set (CI smoke
/// runs point serial and parallel passes at separate directories),
/// otherwise `results/` at the workspace root.
#[must_use]
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("PS3_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results")
}

/// Writes rows of `f64` values (with a string header) as a CSV file in
/// the results directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<f64>]) -> io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let file = fs::File::create(&path)?;
    let mut w = CsvWriter::new(io::BufWriter::new(file));
    w.write_row(header.iter().copied())?;
    for row in rows {
        w.write_f64_row(row.iter().copied(), 6)?;
    }
    Ok(path)
}

/// One experiment's entry in `BENCH_repro.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Experiment name.
    pub name: String,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Device samples processed (0 where the experiment has no
    /// natural sample count).
    pub samples: u64,
    /// Named scalar results (e.g. the archive experiment's
    /// bytes/sample); emitted as a `"metrics"` object when non-empty.
    pub metrics: Vec<(String, f64)>,
}

/// Writes the machine-readable perf record `BENCH_repro.json` into the
/// results directory: thread count, total and per-experiment wall
/// time, samples/sec where defined, and — when a serial reference run
/// was taken — the measured speedup.
///
/// The format is a small fixed schema written by hand (the workspace
/// vendors no JSON library), e.g.:
///
/// ```json
/// {
///   "jobs": 8,
///   "total_wall_s": 12.41,
///   "serial_wall_s": 55.03,
///   "speedup_vs_serial": 4.43,
///   "experiments": [
///     {"name": "fig4", "wall_s": 3.1, "samples": 1376256,
///      "samples_per_sec": 443953.5}
///   ]
/// }
/// ```
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(
    jobs: usize,
    total_wall_s: f64,
    serial_wall_s: Option<f64>,
    entries: &[BenchEntry],
) -> io::Result<PathBuf> {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"total_wall_s\": {total_wall_s:.6},");
    if let Some(serial) = serial_wall_s {
        let _ = writeln!(json, "  \"serial_wall_s\": {serial:.6},");
        let speedup = if total_wall_s > 0.0 {
            serial / total_wall_s
        } else {
            0.0
        };
        let _ = writeln!(json, "  \"speedup_vs_serial\": {speedup:.4},");
    }
    let _ = writeln!(json, "  \"experiments\": [");
    for (i, e) in entries.iter().enumerate() {
        let rate = if e.samples > 0 && e.wall_s > 0.0 {
            e.samples as f64 / e.wall_s
        } else {
            0.0
        };
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let mut metrics = String::new();
        if !e.metrics.is_empty() {
            metrics.push_str(", \"metrics\": {");
            for (j, (key, value)) in e.metrics.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(metrics, "{sep}\"{key}\": {value:.6}");
            }
            metrics.push('}');
        }
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, \"samples\": {}, \
             \"samples_per_sec\": {:.1}{metrics}}}{comma}",
            e.name, e.wall_s, e.samples, rate
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_repro.json");
    fs::write(&path, json)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = text_table(
            &["a", "bee"],
            &[
                vec!["1".into(), "2".into()],
                vec!["100".into(), "2000".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bee"));
        assert!(lines[3].contains("100"));
        // All lines equal width (trailing spaces aside).
        let w: Vec<usize> = lines.iter().map(|l| l.trim_end().len()).collect();
        assert!(w[2] >= w[0] - 2);
    }

    #[test]
    fn bench_json_has_fixed_schema() {
        let path = write_bench_json(
            4,
            2.5,
            Some(10.0),
            &[
                BenchEntry {
                    name: "fig4".into(),
                    wall_s: 2.0,
                    samples: 1000,
                    metrics: Vec::new(),
                },
                BenchEntry {
                    name: "archive".into(),
                    wall_s: 0.5,
                    samples: 0,
                    metrics: vec![
                        ("archive_bytes_per_sample".into(), 0.875),
                        ("archive_compression_ratio".into(), 6.857),
                    ],
                },
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"jobs\": 4"), "{text}");
        assert!(text.contains("\"speedup_vs_serial\": 4.0000"), "{text}");
        assert!(text.contains("\"samples_per_sec\": 500.0"), "{text}");
        // Metrics only appear on entries that have them.
        assert!(
            text.contains("\"metrics\": {\"archive_bytes_per_sample\": 0.875000, \"archive_compression_ratio\": 6.857000}"),
            "{text}"
        );
        assert_eq!(text.matches("\"metrics\"").count(), 1, "{text}");
        // Exactly one trailing comma pattern: the list is valid JSON.
        assert!(!text.contains(",\n  ]"), "{text}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn csv_roundtrip_on_disk() {
        let path = write_csv(
            "unit_test_artifact.csv",
            &["x", "y"],
            &[vec![1.0, 2.0], vec![3.5, 4.25]],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("x,y\n1.000000,2.000000\n"));
        let _ = std::fs::remove_file(path);
    }
}
