//! Fig 7: GPU energy traces — PowerSensor3 at 20 kHz versus the
//! vendor's on-board sensor APIs.
//!
//! The synthetic workload is a grid of fused multiply-add thread
//! blocks: the x-dimension matches the SM/CU count and the y-dimension
//! makes the kernel run about two seconds as sequential waves. On the
//! NVIDIA-like GPU (Fig 7a) PowerSensor3 resolves the launch spike,
//! the clock ramp, the inter-wave dips, and the slow idle decay that
//! NVML's 10 Hz refresh misses entirely; on the AMD-like GPU (Fig 7b)
//! the AMD SMI readings track PowerSensor3 closely.

use ps3_analysis::Trace;
use ps3_duts::{AmdSmiSensor, GpuKernel, GpuSpec, NvmlSensor, OnboardSensor};
use ps3_testbed::setups::gpu_riser;
use ps3_units::{SimDuration, SimTime};

/// The trace bundle for one GPU.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// GPU name.
    pub gpu_name: &'static str,
    /// The PowerSensor3 trace (20 kHz, markers at kernel start/end).
    pub ps3: Trace,
    /// On-board sensor traces, polled at 10 ms (values hold between
    /// the sensors' own refreshes).
    pub onboard: Vec<(String, Trace)>,
    /// When the kernel was launched / finished (device time).
    pub kernel_window: (SimTime, SimTime),
}

/// Phase durations: idle lead-in, kernel length, decay tail.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Timing {
    /// Idle before the kernel.
    pub lead_in: SimDuration,
    /// Kernel execution target.
    pub kernel: SimDuration,
    /// Tail after the kernel (captures the idle decay).
    pub tail: SimDuration,
}

impl Fig7Timing {
    /// The paper's timing: short idle, ~2 s kernel, >1 s decay.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            lead_in: SimDuration::from_millis(300),
            kernel: SimDuration::from_secs(2),
            tail: SimDuration::from_millis(1500),
        }
    }

    /// A reduced version for tests and quick runs.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            lead_in: SimDuration::from_millis(100),
            kernel: SimDuration::from_millis(600),
            tail: SimDuration::from_millis(400),
        }
    }
}

/// Fig 7a: the NVIDIA-like GPU with NVML instantaneous + average.
#[must_use]
pub fn run_nvidia(timing: Fig7Timing, seed: u64) -> Fig7Result {
    let spec = GpuSpec::rtx4000_ada();
    let tb = gpu_riser(spec.clone(), seed);
    let sensors: Vec<(String, Box<dyn OnboardSensor>)> = vec![
        (
            "NVML (instantaneous)".to_owned(),
            Box::new(NvmlSensor::instantaneous(tb.dut())),
        ),
        (
            "NVML (average)".to_owned(),
            Box::new(NvmlSensor::average(tb.dut())),
        ),
    ];
    run_impl(tb, timing, spec.name, sensors, move |g| {
        g.lock().launch(GpuKernel {
            waves: 8,
            wave_duration: timing.kernel / 8,
            gap: SimDuration::from_micros(400),
            utilization: 0.9,
        });
    })
}

/// Fig 7b: the AMD-like GPU with ROCm SMI and AMD SMI.
#[must_use]
pub fn run_amd(timing: Fig7Timing, seed: u64) -> Fig7Result {
    let spec = GpuSpec::w7700();
    let tb = gpu_riser(spec.clone(), seed);
    let sensors: Vec<(String, Box<dyn OnboardSensor>)> = vec![
        (
            "ROCm SMI".to_owned(),
            Box::new(AmdSmiSensor::rocm_smi(tb.dut())),
        ),
        (
            "AMD SMI".to_owned(),
            Box::new(AmdSmiSensor::amd_smi(tb.dut())),
        ),
    ];
    run_impl(tb, timing, spec.name, sensors, move |g| {
        g.lock().launch(GpuKernel {
            waves: 8,
            wave_duration: timing.kernel / 8,
            gap: SimDuration::from_micros(400),
            utilization: 1.0,
        });
    })
}

fn run_impl(
    mut tb: ps3_testbed::Testbed<ps3_duts::GpuModel>,
    timing: Fig7Timing,
    gpu_name: &'static str,
    mut sensors: Vec<(String, Box<dyn OnboardSensor>)>,
    launch: impl FnOnce(std::sync::Arc<parking_lot::Mutex<ps3_duts::GpuModel>>),
) -> Fig7Result {
    let ps = tb.connect().expect("connect");
    let poll = SimDuration::from_millis(10);
    let mut traces: Vec<Trace> = sensors.iter().map(|_| Trace::new()).collect();
    ps.begin_trace();

    let mut drive = |tb: &ps3_testbed::Testbed<ps3_duts::GpuModel>, dur: SimDuration| {
        let chunks = dur / poll;
        for _ in 0..chunks {
            tb.advance_and_sync(&ps, poll).expect("advance");
            let now = tb.device_time();
            for ((_, sensor), trace) in sensors.iter_mut().zip(traces.iter_mut()) {
                trace.push(now, sensor.read(now).power);
            }
        }
    };

    drive(&tb, timing.lead_in);
    ps.mark('k').expect("marker");
    let kernel_start = tb.device_time();
    launch(tb.dut());
    drive(&tb, timing.kernel);
    let kernel_end = tb.device_time();
    ps.mark('e').expect("marker");
    drive(&tb, timing.tail);

    let ps3 = ps.end_trace();
    let onboard = sensors
        .into_iter()
        .map(|(name, _)| name)
        .zip(traces)
        .collect();
    Fig7Result {
        gpu_name,
        ps3,
        onboard,
        kernel_window: (kernel_start, kernel_end),
    }
}

/// Renders a summary: per-source statistics inside and outside the
/// kernel window.
#[must_use]
pub fn render(r: &Fig7Result) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{} — energy trace comparison", r.gpu_name);
    let (k0, k1) = r.kernel_window;
    let summarize = |name: &str, trace: &Trace| -> String {
        let during = trace.slice(k0, k1);
        let stats = ps3_analysis::SampleStats::from_samples(during.powers());
        match stats {
            Some(s) => format!(
                "{name:<22} samples={:<7} kernel: mean {:.1} W  min {:.1} W  max {:.1} W  energy {:.1} J",
                trace.len(),
                s.mean,
                s.min,
                s.max,
                during.energy().value()
            ),
            None => format!("{name:<22} (no samples)"),
        }
    };
    let _ = writeln!(out, "{}", summarize("PowerSensor3", &r.ps3));
    for (name, trace) in &r.onboard {
        let _ = writeln!(out, "{}", summarize(name, trace));
    }
    let _ = writeln!(
        out,
        "markers: {:?}",
        r.ps3.markers().iter().map(|m| m.label).collect::<Vec<_>>()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_analysis::SampleStats;

    #[test]
    fn nvidia_ps3_sees_dips_nvml_does_not() {
        let r = run_nvidia(Fig7Timing::quick(), 71);
        let (k0, k1) = r.kernel_window;
        // Steady part of the kernel (skip the ramp).
        let mid0 = k0 + SimDuration::from_millis(300);
        let ps3 = r.ps3.slice(mid0, k1);
        let s = SampleStats::from_samples(ps3.powers()).unwrap();
        assert!(
            s.min < 0.75 * s.max,
            "PS3 resolves dips: min {} max {}",
            s.min,
            s.max
        );
        let nvml = &r.onboard[0].1.slice(mid0, k1);
        let n = SampleStats::from_samples(nvml.powers()).unwrap();
        assert!(
            n.min > 0.8 * n.max,
            "NVML misses dips: min {} max {}",
            n.min,
            n.max
        );
    }

    #[test]
    fn nvidia_average_lags_behind() {
        let r = run_nvidia(Fig7Timing::quick(), 72);
        let (k0, _) = r.kernel_window;
        // Shortly after launch, the 1 s window average still mostly
        // contains idle samples.
        let early0 = k0 + SimDuration::from_millis(100);
        let early1 = k0 + SimDuration::from_millis(300);
        let instant = r.onboard[0].1.slice(early0, early1);
        let average = r.onboard[1].1.slice(early0, early1);
        let i = instant.mean_power().unwrap().value();
        let a = average.mean_power().unwrap().value();
        assert!(a < i - 15.0, "average {a} lags instant {i}");
    }

    #[test]
    fn amd_smi_matches_ps3() {
        let r = run_amd(Fig7Timing::quick(), 73);
        let (k0, k1) = r.kernel_window;
        let mid0 = k0 + SimDuration::from_millis(300);
        let ps3_mean = r.ps3.slice(mid0, k1).mean_power().unwrap().value();
        for (name, trace) in &r.onboard {
            let smi = trace.slice(mid0, k1).mean_power().unwrap().value();
            assert!(
                (smi - ps3_mean).abs() < 6.0,
                "{name} mean {smi} vs PS3 {ps3_mean}"
            );
        }
    }

    #[test]
    fn markers_recorded_at_kernel_boundaries() {
        let r = run_amd(Fig7Timing::quick(), 74);
        let labels: Vec<char> = r.ps3.markers().iter().map(|m| m.label).collect();
        assert_eq!(labels, vec!['k', 'e']);
    }

    #[test]
    fn ps3_rate_is_20khz_and_onboard_poll_is_100hz() {
        let r = run_amd(Fig7Timing::quick(), 75);
        assert!((r.ps3.sample_rate().unwrap() - 20_000.0).abs() < 200.0);
        let poll_rate = r.onboard[0].1.sample_rate().unwrap();
        assert!((poll_rate - 100.0).abs() < 5.0, "poll {poll_rate}");
    }
}
