//! Related-work comparison (beyond the paper's figures): what would
//! tools of different sampling classes see on the same GPU workload?
//!
//! §II surveys the landscape: Watts Up Pro at 1 Hz, Cray PMDB at
//! 10 Hz, PowerMon2 at 1 kHz, PowerSensor2 at 2.8 kHz, PMD's external
//! logger at 5 kHz, PowerSensor3 at 20 kHz. This experiment replays
//! one PowerSensor3 GPU capture through each tool's effective sampling
//! rate (sample-and-hold decimation) and reports what survives:
//! the visible power range, the kernel-energy estimate, and whether
//! the inter-wave dips are resolved at all.

use ps3_analysis::{decimate, SampleStats};

use crate::fig7::{run_nvidia, Fig7Timing};
use crate::report::text_table;

/// One tool class in the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToolClass {
    /// Representative tool name (from §II).
    pub name: &'static str,
    /// Effective sampling rate in Hz.
    pub rate_hz: f64,
}

/// The §II tool landscape, fastest first.
pub const TOOLS: [ToolClass; 6] = [
    ToolClass {
        name: "PowerSensor3",
        rate_hz: 20_000.0,
    },
    ToolClass {
        name: "PMD (external logger)",
        rate_hz: 5_000.0,
    },
    ToolClass {
        name: "PowerSensor2",
        rate_hz: 2_800.0,
    },
    ToolClass {
        name: "PowerMon2",
        rate_hz: 1_000.0,
    },
    ToolClass {
        name: "Cray PMDB",
        rate_hz: 10.0,
    },
    ToolClass {
        name: "Watts Up Pro",
        rate_hz: 1.0,
    },
];

/// What one tool class resolves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelatedRow {
    /// The tool class.
    pub tool: ToolClass,
    /// Samples available during the kernel.
    pub samples: usize,
    /// Minimum power seen during the kernel.
    pub min_w: f64,
    /// Maximum power seen during the kernel.
    pub max_w: f64,
    /// Kernel-energy estimate in joules (mean power × duration).
    pub energy_j: f64,
    /// Whether the inter-wave dips are resolved (min < 75 % of max).
    pub sees_dips: bool,
}

/// Runs the comparison on the Fig 7a workload.
#[must_use]
pub fn run(timing: Fig7Timing, seed: u64) -> Vec<RelatedRow> {
    let capture = run_nvidia(timing, seed);
    let (k0, k1) = capture.kernel_window;
    let kernel = capture.ps3.slice(k0, k1);
    let duration_s = kernel.span().as_secs_f64();
    let powers = kernel.powers();
    TOOLS
        .iter()
        .map(|&tool| {
            let stride = (20_000.0 / tool.rate_hz).round().max(1.0) as usize;
            let seen = decimate(&powers, stride);
            let stats = SampleStats::from_samples(seen.iter().copied())
                .expect("kernel window is non-empty");
            RelatedRow {
                tool,
                samples: seen.len(),
                min_w: stats.min,
                max_w: stats.max,
                energy_j: stats.mean * duration_s,
                sees_dips: stats.min < 0.75 * stats.max,
            }
        })
        .collect()
}

/// Renders the comparison table.
#[must_use]
pub fn render(rows: &[RelatedRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tool.name.to_owned(),
                format!("{}", r.tool.rate_hz),
                format!("{}", r.samples),
                format!("{:.1}", r.min_w),
                format!("{:.1}", r.max_w),
                format!("{:.1}", r.energy_j),
                if r.sees_dips { "yes" } else { "no" }.to_owned(),
            ]
        })
        .collect();
    text_table(
        &[
            "tool",
            "rate [Hz]",
            "samples",
            "min [W]",
            "max [W]",
            "E [J]",
            "dips?",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_fast_tools_resolve_dips() {
        let rows = run(Fig7Timing::quick(), 61);
        let by_name = |n: &str| rows.iter().find(|r| r.tool.name == n).unwrap();
        assert!(by_name("PowerSensor3").sees_dips);
        assert!(by_name("PMD (external logger)").sees_dips);
        // A 1 Hz whole-system meter gets ≈ one sample per 600 ms kernel
        // and cannot possibly resolve 400 µs dips.
        let wattsup = by_name("Watts Up Pro");
        assert!(!wattsup.sees_dips);
        assert!(wattsup.samples <= 2);
    }

    #[test]
    fn energy_estimates_stay_in_the_ballpark() {
        // Even slow tools get the *average* roughly right when the
        // kernel is long and steady — their failure is temporal
        // resolution, not calibration. (The 1 Hz tool's estimate rests
        // on 1–2 samples, so give it wide slack.)
        let rows = run(Fig7Timing::quick(), 62);
        let reference = rows[0].energy_j;
        for r in &rows {
            assert!(
                (r.energy_j - reference).abs() < 0.35 * reference,
                "{}: {} J vs reference {reference} J",
                r.tool.name,
                r.energy_j
            );
        }
    }

    #[test]
    fn sample_counts_scale_with_rate() {
        let rows = run(Fig7Timing::quick(), 63);
        for pair in rows.windows(2) {
            assert!(pair[0].samples >= pair[1].samples);
        }
        assert!(rows[0].samples > 1000 * rows[5].samples.max(1));
    }
}
