//! The `fleet` experiment: coordinator scaling, 1 → 8 → 32 (→ 100)
//! rigs.
//!
//! Each point stands up a full fleet — N in-process acquisition stacks,
//! per-rig archive shards, the coordinator endpoint — attaches one
//! fleet-wide merged subscriber, captures 100 ms of virtual time, and
//! drains the merged stream. The deterministic facts (frames published,
//! merged-stream accounting, cross-rig energy) go into the report and
//! CSV; wall-clock throughput is machine-dependent and is recorded only
//! as `BENCH_repro.json` metrics, so `repro` output stays bit-identical
//! across `--jobs` values.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ps3_fleet::{parse_shard_name, testbed_rig_factory, Fleet, FleetConfig, FleetQuery};
use ps3_stream::{RigSelector, StreamClient, StreamClientConfig};
use ps3_units::{SimDuration, SimTime};

/// Virtual capture per point: 100 ms at 20 kHz is 2000 frames per rig,
/// under the 8192-slot ring, so the merged subscriber must account for
/// every frame with zero gaps.
const CAPTURE_TICKS: u64 = 20;
/// Virtual tick length.
const TICK: SimDuration = SimDuration::from_millis(5);
/// Frames one rig publishes per tick at 20 kHz.
const FRAMES_PER_TICK: u64 = 100;

/// One rig-count point on the scaling curve.
#[derive(Debug, Clone)]
pub struct FleetPoint {
    /// Rigs in this fleet.
    pub rigs: u16,
    /// Frames the fleet published (deterministic: rigs × 2000).
    pub published: u64,
    /// Frames the merged subscriber received.
    pub received: u64,
    /// Gap events the merged subscriber saw (expected: zero).
    pub gap_events: u64,
    /// Frames the merged subscriber was told were dropped.
    pub dropped: u64,
    /// Samples the archive shards hold over the capture span.
    pub archive_samples: u64,
    /// Fleet-wide energy from the query plane.
    pub energy_j: f64,
    /// Whether the energy query matched a manual per-shard fold
    /// bit-for-bit.
    pub energy_exact: bool,
    /// Wall-clock seconds from first advance until the merged stream
    /// fully drained (machine-dependent; metrics only).
    pub stream_wall_s: f64,
    /// Wall-clock seconds for the cross-rig aggregate queries
    /// (machine-dependent; metrics only).
    pub query_wall_s: f64,
}

impl FleetPoint {
    /// End-to-end merged-stream throughput, frames per wall second.
    #[must_use]
    pub fn frames_per_sec(&self) -> f64 {
        if self.stream_wall_s > 0.0 {
            self.published as f64 / self.stream_wall_s
        } else {
            0.0
        }
    }
}

fn scratch_dir(rigs: u16, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ps3-bench-fleet-{}-{rigs}-{seed:x}",
        std::process::id()
    ))
}

/// Runs the scaling curve: one fleet per rig count, sequentially (each
/// point already fans out internally — per-rig daemons, writers, and
/// the query plane's parallel shard scans).
#[must_use]
pub fn run(rig_counts: &[u16], seed: u64) -> Vec<FleetPoint> {
    rig_counts
        .iter()
        .map(|&rigs| run_point(rigs, seed))
        .collect()
}

fn run_point(rigs: u16, seed: u64) -> FleetPoint {
    let dir = scratch_dir(rigs, seed);
    let _ = std::fs::remove_dir_all(&dir);
    let mut fleet = Fleet::start(
        rigs,
        testbed_rig_factory(seed ^ u64::from(rigs)),
        "127.0.0.1:0",
        FleetConfig::new(&dir),
    )
    .expect("start bench fleet");
    let merged = StreamClient::connect(
        fleet.local_addr(),
        StreamClientConfig {
            rig: Some(RigSelector::All),
            ..StreamClientConfig::default()
        },
    )
    .expect("connect merged subscriber");
    wait_for(Duration::from_secs(5), || {
        fleet.stats().active_subscribers == 1
    });

    let start = Instant::now(); // ps3-lint: allow(determinism) reason="wall-clock speedup metric: measures real elapsed time of the parallel run, outside the simulated timeline"
    for _ in 0..CAPTURE_TICKS {
        fleet.advance(TICK);
    }
    let published = fleet.stats().frames_published;
    debug_assert_eq!(
        published,
        u64::from(rigs) * CAPTURE_TICKS * FRAMES_PER_TICK,
        "advance is synchronous, so the published count is exact"
    );
    wait_for(Duration::from_secs(30), || {
        merged.is_evicted() || merged.frames_received() + merged.dropped_frames() == published
    });
    let stream_wall_s = start.elapsed().as_secs_f64();
    let (received, gap_events, dropped) = (
        merged.frames_received(),
        merged.gap_events(),
        merged.dropped_frames(),
    );
    fleet.shutdown();
    drop(merged);

    let (span_start, span_end) = (SimTime::from_micros(0), SimTime::from_micros(10_000_000));
    let start = Instant::now(); // ps3-lint: allow(determinism) reason="wall-clock speedup metric: measures real elapsed time of the parallel run, outside the simulated timeline"
    let query = FleetQuery::open(&dir).expect("open fleet shards");
    let energy = query
        .total_energy(span_start, span_end)
        .expect("fleet energy");
    let stats = query
        .fleet_stats(span_start, span_end)
        .expect("fleet stats");
    let query_wall_s = start.elapsed().as_secs_f64();

    // Ground truth for exactness: fold per-shard energies in shard
    // order with independently opened archives.
    let mut shards: Vec<(u16, u32, PathBuf)> = std::fs::read_dir(&dir)
        .expect("list fleet shards")
        .filter_map(|e| {
            let path = e.ok()?.path();
            let (rig, generation) = parse_shard_name(path.file_name()?.to_str()?)?;
            Some((rig, generation, path))
        })
        .collect();
    shards.sort_by_key(|&(rig, generation, _)| (rig, generation));
    let mut folded = 0.0f64;
    for (_, _, path) in shards {
        folded += ps3_archive::Archive::open(&path)
            .expect("reopen shard")
            .energy(span_start, span_end)
            .expect("shard energy")
            .value();
    }

    let _ = std::fs::remove_dir_all(&dir);
    FleetPoint {
        rigs,
        published,
        received,
        gap_events,
        dropped,
        archive_samples: stats.count,
        energy_j: energy.value(),
        energy_exact: energy.value().to_bits() == folded.to_bits(),
        stream_wall_s,
        query_wall_s,
    }
}

fn wait_for(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout; // ps3-lint: allow(determinism) reason="harness quiesce: waits on real OS subscriber threads, not simulated time"
    loop {
        if done() {
            return true;
        }
        // ps3-lint: allow(determinism) reason="harness quiesce: waits on real OS subscriber threads, not simulated time"
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(2)); // ps3-lint: allow(determinism) reason="harness quiesce: waits on real OS subscriber threads, not simulated time"
    }
}

/// Formats the report section (deterministic facts only — throughput
/// lives in `BENCH_repro.json`).
#[must_use]
pub fn render(points: &[FleetPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet scaling: {} ms merged capture per point, one subscriber fleet-wide",
        CAPTURE_TICKS * 5
    );
    let _ = writeln!(
        out,
        "  rigs  published  received  gaps  dropped  archive  energy [J]     exact"
    );
    for p in points {
        let _ = writeln!(
            out,
            "  {:>4}  {:>9}  {:>8}  {:>4}  {:>7}  {:>7}  {:>12.6}  {}",
            p.rigs,
            p.published,
            p.received,
            p.gap_events,
            p.dropped,
            p.archive_samples,
            p.energy_j,
            if p.energy_exact { "yes" } else { "NO" }
        );
    }
    let _ = writeln!(
        out,
        "  rigs-vs-throughput curve recorded in BENCH_repro.json (wall-clock)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_points_account_for_every_frame() {
        let points = run(&[1, 3], 0xF1EE7);
        assert_eq!(points.len(), 2);
        for p in &points {
            let expected = u64::from(p.rigs) * CAPTURE_TICKS * FRAMES_PER_TICK;
            assert_eq!(p.published, expected, "rigs={}", p.rigs);
            assert_eq!(p.received + p.dropped, p.published, "rigs={}", p.rigs);
            assert_eq!(p.gap_events, 0, "rigs={}", p.rigs);
            assert_eq!(p.archive_samples, p.published, "rigs={}", p.rigs);
            assert!(p.energy_exact, "rigs={}", p.rigs);
            assert!(p.energy_j > 0.0);
        }
        assert!(points[1].energy_j > points[0].energy_j);
        let text = render(&points);
        assert!(text.contains("yes"), "{text}");
        assert!(!text.contains("NO"), "{text}");
    }
}
