//! The `stream` experiment: the C10k curve — subscribers vs delivery
//! latency and throughput on one daemon event-loop thread.
//!
//! Each point stands up one [`StreamDaemon`] over a virtual testbed
//! sensor, attaches N raw TCP subscribers (all downsampled to 1 kHz so
//! the client side stays cheap; the daemon still ingests native
//! 20 kHz), then publishes a fixed capture in bursts of virtual time.
//! All N subscriber sockets are driven non-blocking by a single bench
//! thread, so the measured side — the daemon — is the only event loop
//! whose scaling is under test.
//!
//! Deterministic facts (frames published, per-subscriber deliveries,
//! gap/eviction counts — all exactly zero gaps because the ring is
//! sized to never lap) go into the report and `stream.csv`; per-burst
//! delivery latency percentiles and throughput are wall-clock and are
//! recorded only as `BENCH_repro.json` metrics, so `repro` output
//! stays bit-identical across `--jobs` values.

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ps3_core::SharedPowerSensor;
use ps3_duts::{BenchSetup, LoadProgram, RailId};
use ps3_sensors::ModuleKind;
use ps3_stream::event_loop::take_frame;
use ps3_stream::{ClientMsg, ServerMsg, StreamDaemon, StreamDaemonConfig};
use ps3_testbed::{Testbed, TestbedBuilder};
use ps3_units::{Amps, SimDuration};

/// Block-averaging divisor every subscriber asks for: 20 device frames
/// per delivered frame (1 kHz), keeping N× fan-out affordable while the
/// daemon still runs the full 20 kHz ingest path.
const DIVISOR: u64 = 20;
/// Virtual-time bursts per point.
const TICKS: u64 = 10;
/// Virtual length of one burst: 50 ms at 20 kHz is 1000 device frames.
const TICK: SimDuration = SimDuration::from_millis(50);
/// Device frames one burst publishes.
const FRAMES_PER_TICK: u64 = 1000;

/// One subscriber-count point on the C10k curve.
#[derive(Debug, Clone)]
pub struct StreamPoint {
    /// Concurrent subscribers at this point.
    pub subscribers: usize,
    /// Device frames the daemon published (deterministic).
    pub published: u64,
    /// Downsampled frames each keep-up subscriber must receive.
    pub expected_per_sub: u64,
    /// Frames delivered across all subscribers (deterministic:
    /// `subscribers × expected_per_sub` when nothing gapped).
    pub delivered: u64,
    /// Gap events across all subscribers (expected: zero — the ring
    /// never laps at this capture size).
    pub gap_events: u64,
    /// Frames any subscriber was told it lost (expected: zero).
    pub dropped: u64,
    /// Subscribers the daemon evicted (expected: zero).
    pub evicted: u64,
    /// Wall-clock seconds to connect and register every subscriber
    /// (machine-dependent; metrics only).
    pub connect_wall_s: f64,
    /// Wall-clock seconds from first burst until every subscriber
    /// fully drained (machine-dependent; metrics only).
    pub stream_wall_s: f64,
    /// Median per-subscriber burst delivery latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-subscriber burst delivery latency.
    pub p99_ms: f64,
}

impl StreamPoint {
    /// Device-frame ingest throughput over the streaming phase.
    #[must_use]
    pub fn frames_per_sec(&self) -> f64 {
        if self.stream_wall_s > 0.0 {
            self.published as f64 / self.stream_wall_s
        } else {
            0.0
        }
    }

    /// Delivered-frame fan-out throughput over the streaming phase.
    #[must_use]
    pub fn deliveries_per_sec(&self) -> f64 {
        if self.stream_wall_s > 0.0 {
            self.delivered as f64 / self.stream_wall_s
        } else {
            0.0
        }
    }
}

/// One raw subscriber socket, driven non-blocking by the bench thread.
struct ClientConn {
    sock: TcpStream,
    buf: Vec<u8>,
    frames: u64,
    gap_events: u64,
    dropped: u64,
    evicted: bool,
    saw_hello: bool,
}

impl ClientConn {
    /// Reads whatever the socket has and folds complete messages into
    /// the counters. Returns `true` if any byte arrived.
    fn pump(&mut self) -> bool {
        let mut progressed = false;
        let mut chunk = [0u8; 4096];
        loop {
            match self.sock.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => {
                    progressed = true;
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        while let Ok(Some(body)) = take_frame(&mut self.buf) {
            match ServerMsg::decode(&body) {
                Ok(ServerMsg::Hello { .. }) => self.saw_hello = true,
                Ok(ServerMsg::Batch { frames }) => self.frames += frames.len() as u64,
                Ok(ServerMsg::Gap { dropped }) => {
                    self.gap_events += 1;
                    self.dropped += dropped;
                }
                Ok(ServerMsg::Evicted { .. }) => self.evicted = true,
                _ => {}
            }
        }
        progressed
    }
}

fn bench_testbed(seed: u64) -> Testbed<BenchSetup> {
    TestbedBuilder::new(BenchSetup::twelve_volt(LoadProgram::Constant(Amps::new(
        2.0,
    ))))
    .attach(ModuleKind::Slot10A12V, RailId::Ext12V)
    .seed(seed)
    .build()
}

/// Runs the curve: one daemon per subscriber count, sequentially.
#[must_use]
pub fn run(sub_counts: &[usize], seed: u64) -> Vec<StreamPoint> {
    sub_counts
        .iter()
        .map(|&subs| run_point(subs, seed))
        .collect()
}

#[allow(clippy::too_many_lines)]
fn run_point(subs: usize, seed: u64) -> StreamPoint {
    let mut tb = bench_testbed(seed);
    let sensor = SharedPowerSensor::new(tb.connect().expect("connect bench testbed"));
    let daemon = StreamDaemon::start(
        sensor.clone(),
        "127.0.0.1:0",
        StreamDaemonConfig {
            // Never laps a TICKS × FRAMES_PER_TICK capture, so zero
            // gaps is an invariant of the point, not a race outcome.
            ring_capacity: 32768,
            ..StreamDaemonConfig::default()
        },
    )
    .expect("start bench stream daemon");
    let addr = daemon.local_addr();

    let subscribe = ClientMsg::Subscribe {
        pair_mask: 0x0F,
        divisor: DIVISOR as u32,
        rig: None,
    }
    .encode();
    let start = Instant::now(); // ps3-lint: allow(determinism) reason="wall-clock latency/throughput metric of the real event loop, outside the simulated timeline"
    let mut conns: Vec<ClientConn> = (0..subs)
        .map(|_| {
            let mut sock = TcpStream::connect(addr).expect("connect bench subscriber");
            sock.write_all(&subscribe).expect("send subscribe");
            sock.set_nonblocking(true).expect("set nonblocking");
            ClientConn {
                sock,
                buf: Vec::new(),
                frames: 0,
                gap_events: 0,
                dropped: 0,
                evicted: false,
                saw_hello: false,
            }
        })
        .collect();
    let registered = wait_for(Duration::from_secs(60), || {
        for conn in &mut conns {
            conn.pump();
        }
        daemon.stats().active_subscribers == subs as u64
    });
    assert!(
        registered,
        "{subs} subscribers failed to register: {:?}",
        daemon.stats()
    );
    let connect_wall_s = start.elapsed().as_secs_f64();

    // Publish TICKS bursts; after each, drive every socket until all
    // subscribers drained the burst, recording per-subscriber latency
    // from burst start to its final frame.
    let expected_per_tick = FRAMES_PER_TICK / DIVISOR;
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(subs * TICKS as usize);
    let start = Instant::now(); // ps3-lint: allow(determinism) reason="wall-clock latency/throughput metric of the real event loop, outside the simulated timeline"
    for tick in 0..TICKS {
        let target = (tick + 1) * expected_per_tick;
        let burst = Instant::now(); // ps3-lint: allow(determinism) reason="wall-clock latency/throughput metric of the real event loop, outside the simulated timeline"
        tb.advance_and_sync(&sensor, TICK).expect("advance testbed");
        let mut done = 0usize;
        let mut reached = vec![false; subs];
        let deadline = burst + Duration::from_secs(60);
        while done < subs {
            let mut progressed = false;
            for (i, conn) in conns.iter_mut().enumerate() {
                progressed |= conn.pump();
                if !reached[i] && conn.frames >= target {
                    reached[i] = true;
                    done += 1;
                    latencies_ms.push(burst.elapsed().as_secs_f64() * 1e3);
                }
            }
            // ps3-lint: allow(determinism) reason="wall-clock latency/throughput metric of the real event loop, outside the simulated timeline"
            if done < subs && Instant::now() >= deadline {
                break;
            }
            if !progressed {
                std::thread::sleep(Duration::from_micros(200)); // ps3-lint: allow(determinism) reason="harness pacing: yields while the daemon thread fills subscriber sockets"
            }
        }
        assert_eq!(
            done, subs,
            "burst {tick}: only {done}/{subs} subscribers drained within 60 s"
        );
    }
    let stream_wall_s = start.elapsed().as_secs_f64();

    let stats = daemon.stats();
    let published = stats.frames_published;
    let delivered: u64 = conns.iter().map(|c| c.frames).sum();
    let gap_events: u64 = conns.iter().map(|c| c.gap_events).sum();
    let dropped: u64 = conns.iter().map(|c| c.dropped).sum();
    let client_evicted = conns.iter().filter(|c| c.evicted).count() as u64;
    debug_assert!(conns.iter().all(|c| c.saw_hello), "hello precedes frames");

    drop(daemon);
    drop(conns);
    latencies_ms.sort_by(f64::total_cmp);
    StreamPoint {
        subscribers: subs,
        published,
        expected_per_sub: TICKS * expected_per_tick,
        delivered,
        gap_events,
        dropped,
        evicted: stats.evicted.max(client_evicted),
        connect_wall_s,
        stream_wall_s,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
    }
}

/// Nearest-rank percentile of an already-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn wait_for(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout; // ps3-lint: allow(determinism) reason="harness quiesce: waits on real OS subscriber registration, not simulated time"
    loop {
        if done() {
            return true;
        }
        // ps3-lint: allow(determinism) reason="harness quiesce: waits on real OS subscriber registration, not simulated time"
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1)); // ps3-lint: allow(determinism) reason="harness quiesce: waits on real OS subscriber registration, not simulated time"
    }
}

/// Formats the report section (deterministic facts only — the latency
/// and throughput curve lives in `BENCH_repro.json`).
#[must_use]
pub fn render(points: &[StreamPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "stream C10k: {} bursts x {} device frames per point, all subscribers at 1 kHz",
        TICKS, FRAMES_PER_TICK
    );
    let _ = writeln!(
        out,
        "  subscribers  published  per-sub  delivered  gaps  dropped  evicted"
    );
    for p in points {
        let _ = writeln!(
            out,
            "  {:>11}  {:>9}  {:>7}  {:>9}  {:>4}  {:>7}  {:>7}",
            p.subscribers,
            p.published,
            p.expected_per_sub,
            p.delivered,
            p.gap_events,
            p.dropped,
            p.evicted
        );
    }
    let _ = writeln!(
        out,
        "  subscribers-vs-p99-latency/throughput curve recorded in BENCH_repro.json (wall-clock)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_points_deliver_every_frame_gap_free() {
        let points = run(&[8, 32], 0xC10C);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(
                p.published,
                TICKS * FRAMES_PER_TICK,
                "subs={}",
                p.subscribers
            );
            assert_eq!(
                p.delivered,
                p.subscribers as u64 * p.expected_per_sub,
                "subs={}",
                p.subscribers
            );
            assert_eq!(p.gap_events, 0, "subs={}", p.subscribers);
            assert_eq!(p.dropped, 0, "subs={}", p.subscribers);
            assert_eq!(p.evicted, 0, "subs={}", p.subscribers);
            assert!(p.p99_ms >= p.p50_ms);
        }
        let text = render(&points);
        assert!(text.contains("BENCH_repro.json"), "{text}");
    }
}
