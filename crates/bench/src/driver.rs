//! The parallel experiment engine behind the `repro` binary.
//!
//! Every experiment is a pure function of `(Scale, seed)`: it builds
//! its own testbeds, returns its rendered report and CSV rows as data,
//! and performs no I/O. That makes the set of experiments trivially
//! parallel — [`run_all`] farms them over the global thread pool while
//! the binary prints reports and writes artifacts in request order, so
//! the observable output is bit-identical for any `--jobs` value.
//! Sweep-style experiments (fig4, table2, the fig8/fig10 tuner runs)
//! additionally parallelise *within* themselves; the pool's nested
//! scopes make the two levels compose.

use std::fmt::Write as _;
use std::time::Instant;

use ps3_units::SimDuration;

use crate::{
    archive, capping, fig12, fig4, fig5, fig7, fig8, fleet, interference, noise, overhead, related,
    sim, stability, stream, table1, table2, tsdb,
};

/// The seed every `repro` run uses, so artifacts are comparable
/// between runs and machines.
pub const SEED: u64 = 0x5EED_2026;

/// The default experiment list (the paper's tables and figures, in
/// paper order, plus the interference ablation).
pub const DEFAULT_EXPERIMENTS: [&str; 18] = [
    "table1",
    "table2",
    "fig4",
    "fig5",
    "stability",
    "fig7a",
    "fig7b",
    "fig8",
    "fig10",
    "fig12a",
    "fig12b",
    "interference",
    "archive",
    "tsdb",
    "overhead",
    "sim",
    "fleet",
    "stream",
];

/// Sample counts and sweep sizes for one run.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Samples per fig4 sweep point (paper: 128 k).
    pub samples_per_point: usize,
    /// Raw samples per Table II load (paper: 128 k).
    pub table2_samples: usize,
    /// Hours of simulated runtime for the stability experiment.
    pub stability_hours: f64,
    /// Samples per stability probe window.
    pub stability_window: usize,
    /// Kernel timing of the Fig 7 trace experiments.
    pub fig7_timing: fig7::Fig7Timing,
    /// Variant stride of the tuner sweeps (1 = all 512).
    pub tuner_stride: usize,
    /// Clock stride of the tuner sweeps (1 = all 10).
    pub tuner_clock_stride: usize,
    /// Averaging window per Fig 12a read-size point.
    pub fig12a_window: SimDuration,
    /// Simulated seconds of random writes for Fig 12b.
    pub fig12b_seconds: u64,
    /// Rig counts the fleet scaling experiment sweeps.
    pub fleet_rigs: Vec<u16>,
    /// Subscriber counts the stream C10k experiment sweeps.
    pub stream_subs: Vec<usize>,
    /// Capture sizes (frames) the tsdb query-latency experiment sweeps.
    pub tsdb_frames: Vec<u64>,
    /// Polling frequencies (Hz) the RAPL overhead study sweeps.
    pub overhead_freqs: Vec<u64>,
}

impl Scale {
    /// Reduced scales: a full run finishes in minutes.
    #[must_use]
    pub fn reduced() -> Self {
        Self {
            samples_per_point: 16 * 1024,
            table2_samples: 32 * 1024,
            stability_hours: 10.0,
            stability_window: 16 * 1024,
            fig7_timing: fig7::Fig7Timing::paper(),
            tuner_stride: 8,
            tuner_clock_stride: 1,
            fig12a_window: SimDuration::from_secs(1),
            fig12b_seconds: 240,
            fleet_rigs: vec![1, 8, 32],
            stream_subs: vec![256, 1024, 4096],
            tsdb_frames: vec![20_000, 80_000, 320_000],
            overhead_freqs: vec![1, 10, 100, 1_000, 10_000, 100_000],
        }
    }

    /// The paper's sample counts (128 k per point, the whole
    /// 5120-configuration sweep, 50 hours of stability, >20 min of
    /// random writes).
    #[must_use]
    pub fn full() -> Self {
        Self {
            samples_per_point: 128 * 1024,
            table2_samples: 128 * 1024,
            stability_hours: 50.0,
            stability_window: 128 * 1024,
            fig7_timing: fig7::Fig7Timing::paper(),
            tuner_stride: 1,
            tuner_clock_stride: 1,
            fig12a_window: SimDuration::from_secs(10),
            fig12b_seconds: 1300,
            fleet_rigs: vec![1, 8, 32, 100],
            stream_subs: vec![1024, 4096, 8192],
            tsdb_frames: vec![50_000, 200_000, 800_000],
            overhead_freqs: vec![1, 10, 100, 1_000, 10_000, 100_000],
        }
    }

    /// A tiny scale for smoke tests and CI (seconds, not minutes).
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            samples_per_point: 2 * 1024,
            table2_samples: 4 * 1024,
            stability_hours: 2.0,
            stability_window: 2 * 1024,
            fig7_timing: fig7::Fig7Timing::paper(),
            tuner_stride: 64,
            tuner_clock_stride: 5,
            fig12a_window: SimDuration::from_millis(250),
            fig12b_seconds: 60,
            fleet_rigs: vec![1, 4, 8],
            stream_subs: vec![64, 256, 1024],
            tsdb_frames: vec![10_000, 40_000, 160_000],
            overhead_freqs: vec![100, 10_000, 100_000],
        }
    }
}

/// One CSV artifact, as data: the binary decides where it lands.
#[derive(Debug, Clone, PartialEq)]
pub struct Csv {
    /// File name (e.g. `fig4.csv`).
    pub name: String,
    /// Column names.
    pub header: Vec<&'static str>,
    /// Numeric rows.
    pub rows: Vec<Vec<f64>>,
}

/// Everything one experiment produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutput {
    /// Experiment name (`table2`, `fig4`, …).
    pub name: String,
    /// The rendered paper-style report.
    pub report: String,
    /// CSV artifacts, in write order.
    pub csvs: Vec<Csv>,
    /// Device samples processed, where the experiment has a natural
    /// sample count (0 otherwise); feeds the samples/sec metric.
    pub samples: u64,
    /// Named scalar results worth recording in `BENCH_repro.json`
    /// (e.g. the archive store's bytes/sample). Empty for most
    /// experiments.
    pub metrics: Vec<(String, f64)>,
}

/// One experiment's result plus its wall-clock cost.
#[derive(Debug, Clone)]
pub struct ExperimentRun {
    /// `None` for an unknown experiment name.
    pub output: Option<ExperimentOutput>,
    /// Wall-clock seconds the experiment took.
    pub wall_s: f64,
}

/// Runs the named experiments in parallel over the global thread pool
/// and returns their results in request order. Use
/// [`rayon::configure_global`] first to pick the thread count.
#[must_use]
pub fn run_all(names: &[&str], scale: &Scale, seed: u64) -> Vec<ExperimentRun> {
    let units: Vec<String> = names.iter().map(|n| (*n).to_owned()).collect();
    rayon::global().par_map(units, |name| {
        let start = Instant::now(); // ps3-lint: allow(determinism) reason="wall-clock speedup metric: measures real elapsed time of the parallel run, outside the simulated timeline"
        let output = run_experiment(&name, scale, seed);
        ExperimentRun {
            output,
            wall_s: start.elapsed().as_secs_f64(),
        }
    })
}

/// Runs a single experiment; `None` if the name is unknown.
#[must_use]
pub fn run_experiment(name: &str, scale: &Scale, seed: u64) -> Option<ExperimentOutput> {
    let out = match name {
        "table1" => run_table1(),
        "table2" => run_table2(scale, seed),
        "fig4" => run_fig4(scale, seed),
        "fig5" => run_fig5(seed),
        "stability" => run_stability(scale, seed),
        "fig7a" => run_fig7(scale, seed, false),
        "fig7b" => run_fig7(scale, seed, true),
        "fig8" => run_fig8(scale, seed),
        "fig10" => run_fig10(scale, seed),
        "fig12a" => run_fig12a(scale, seed),
        "fig12b" => run_fig12b(scale, seed),
        "interference" => run_interference(scale, seed),
        "archive" => run_archive(scale, seed),
        "tsdb" => run_tsdb(scale, seed),
        "overhead" => run_overhead(scale),
        "sim" => run_sim(seed),
        "fleet" => run_fleet(scale, seed),
        "stream" => run_stream(scale, seed),
        "related" => run_related(scale, seed),
        "capping" => run_capping(seed),
        "noise" => run_noise(scale, seed),
        _ => return None,
    };
    Some(ExperimentOutput {
        name: name.to_owned(),
        ..out
    })
}

/// Shorthand: an output with the name filled in by the caller.
fn output(report: String, csvs: Vec<Csv>, samples: u64) -> ExperimentOutput {
    ExperimentOutput {
        name: String::new(),
        report,
        csvs,
        samples,
        metrics: Vec::new(),
    }
}

fn run_table1() -> ExperimentOutput {
    let rows = table1::run();
    let csv: Vec<Vec<f64>> = rows
        .iter()
        .map(|b| {
            vec![
                b.rail.value(),
                b.full_scale.value(),
                b.voltage_error.value(),
                b.current_error.value(),
                b.power_error.value(),
            ]
        })
        .collect();
    output(
        table1::render(&rows),
        vec![Csv {
            name: "table1.csv".into(),
            header: vec!["rail_v", "fullscale_a", "e_u", "e_i", "e_p"],
            rows: csv,
        }],
        0,
    )
}

fn run_table2(scale: &Scale, seed: u64) -> ExperimentOutput {
    let loads = table2::run(scale.table2_samples, seed);
    let mut csv = Vec::new();
    for load in &loads {
        for r in &load.rows {
            csv.push(vec![
                load.amps,
                r.rate_khz,
                r.stats.min,
                r.stats.max,
                r.stats.peak_to_peak(),
                r.stats.std,
            ]);
        }
    }
    output(
        table2::render(&loads),
        vec![Csv {
            name: "table2.csv".into(),
            header: vec!["load_a", "rate_khz", "min_w", "max_w", "pp_w", "std_w"],
            rows: csv,
        }],
        2 * scale.table2_samples as u64,
    )
}

fn run_fig4(scale: &Scale, seed: u64) -> ExperimentOutput {
    let series = fig4::run(scale.samples_per_point, seed);
    let mut report = String::new();
    let mut csv = Vec::new();
    for s in &series {
        let _ = writeln!(report, "{}", fig4::render(s));
        for p in &s.points {
            csv.push(vec![
                s.module.nominal_rail().value(),
                p.amps,
                p.expected_w,
                p.mean_err,
                p.min_err,
                p.max_err,
            ]);
        }
    }
    let points: u64 = series.iter().map(|s| s.points.len() as u64).sum();
    output(
        report,
        vec![Csv {
            name: "fig4.csv".into(),
            header: vec![
                "rail_v",
                "amps",
                "expected_w",
                "mean_err",
                "min_err",
                "max_err",
            ],
            rows: csv,
        }],
        points * scale.samples_per_point as u64,
    )
}

fn run_fig5(seed: u64) -> ExperimentOutput {
    let r = fig5::run(30, seed);
    let mut report = fig5::render(&r);
    report.push_str("ms-scale view:\n");
    report.push_str(&crate::report_plot(&r.trace));
    let csv: Vec<Vec<f64>> = r
        .trace
        .iter()
        .map(|s| vec![s.time.as_secs_f64(), s.power.value()])
        .collect();
    let samples = r.trace.len() as u64;
    output(
        report,
        vec![Csv {
            name: "fig5.csv".into(),
            header: vec!["t_s", "power_w"],
            rows: csv,
        }],
        samples,
    )
}

fn run_stability(scale: &Scale, seed: u64) -> ExperimentOutput {
    let r = stability::run(
        scale.stability_hours,
        SimDuration::from_secs(900),
        scale.stability_window,
        seed,
    );
    let csv: Vec<Vec<f64>> = r
        .probes
        .iter()
        .map(|p| vec![p.hours, p.avg_w, p.min_w, p.max_w])
        .collect();
    let samples = r.probes.len() as u64 * scale.stability_window as u64;
    output(
        stability::render(&r),
        vec![Csv {
            name: "stability.csv".into(),
            header: vec!["hours", "avg_w", "min_w", "max_w"],
            rows: csv,
        }],
        samples,
    )
}

fn run_fig7(scale: &Scale, seed: u64, amd: bool) -> ExperimentOutput {
    let (r, stem) = if amd {
        (fig7::run_amd(scale.fig7_timing, seed), "fig7b")
    } else {
        (fig7::run_nvidia(scale.fig7_timing, seed), "fig7a")
    };
    let mut report = fig7::render(&r);
    report.push_str("PowerSensor3 trace:\n");
    report.push_str(&crate::report_plot(&r.ps3));
    let mut csvs = Vec::new();
    // PS3 trace decimated to 2 kHz for a manageable artifact.
    csvs.push(Csv {
        name: format!("{stem}_ps3.csv"),
        header: vec!["t_s", "power_w"],
        rows: r
            .ps3
            .iter()
            .step_by(10)
            .map(|s| vec![s.time.as_secs_f64(), s.power.value()])
            .collect(),
    });
    for (sensor_name, trace) in &r.onboard {
        let slug: String = sensor_name
            .chars()
            .map(|c| {
                if c.is_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        csvs.push(Csv {
            name: format!("{stem}_{slug}.csv"),
            header: vec!["t_s", "power_w"],
            rows: trace
                .iter()
                .map(|s| vec![s.time.as_secs_f64(), s.power.value()])
                .collect(),
        });
    }
    let samples = r.ps3.len() as u64;
    output(report, csvs, samples)
}

fn run_fig8(scale: &Scale, seed: u64) -> ExperimentOutput {
    let f = fig8::run_rtx4000(scale.tuner_stride, scale.tuner_clock_stride, seed);
    output(fig8::render(&f), vec![tuning_csv(&f, "fig8.csv")], 0)
}

fn run_fig10(scale: &Scale, seed: u64) -> ExperimentOutput {
    // Jetson kernels are ~8× longer; thin the sweep accordingly.
    let f = fig8::run_jetson(scale.tuner_stride * 4, scale.tuner_clock_stride, seed);
    output(fig8::render(&f), vec![tuning_csv(&f, "fig10.csv")], 0)
}

fn tuning_csv(f: &fig8::TuningFigure, name: &str) -> Csv {
    Csv {
        name: name.to_owned(),
        header: vec!["clock_mhz", "tflops", "tflop_per_j", "energy_j", "pareto"],
        rows: f
            .outcome
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| {
                vec![
                    r.clock_mhz,
                    r.tflops,
                    r.tflop_per_joule,
                    r.energy_j,
                    if f.pareto.contains(&i) { 1.0 } else { 0.0 },
                ]
            })
            .collect(),
    }
}

fn run_fig12a(scale: &Scale, seed: u64) -> ExperimentOutput {
    let rows = fig12::run_reads(scale.fig12a_window, seed);
    let csv: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| vec![f64::from(r.size_kib), r.bandwidth_mbps, r.power_w])
        .collect();
    output(
        fig12::render_reads(&rows),
        vec![Csv {
            name: "fig12a.csv".into(),
            header: vec!["size_kib", "bw_mbps", "power_w"],
            rows: csv,
        }],
        0,
    )
}

fn run_fig12b(scale: &Scale, seed: u64) -> ExperimentOutput {
    let points = fig12::run_writes(scale.fig12b_seconds, seed);
    let mut report = fig12::render_writes(&points);
    let bw: Vec<f64> = points.iter().map(|p| p.bandwidth_mbps).collect();
    report.push_str("bandwidth over time (MB/s):\n");
    report.push_str(&ps3_analysis::ascii_plot(&bw, 72, 10));
    let csv: Vec<Vec<f64>> = points
        .iter()
        .map(|p| vec![p.t_s, p.bandwidth_mbps, p.power_w])
        .collect();
    output(
        report,
        vec![Csv {
            name: "fig12b.csv".into(),
            header: vec!["t_s", "bw_mbps", "power_w"],
            rows: csv,
        }],
        0,
    )
}

fn run_interference(scale: &Scale, seed: u64) -> ExperimentOutput {
    let fields = [0.0, 1.0, 2.0, 5.0, 10.0];
    let samples = scale.table2_samples / 4;
    let rows = interference::run(&fields, samples, seed);
    let csv: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| vec![r.field_mt, r.differential_err_w, r.single_ended_err_w])
        .collect();
    output(
        interference::render(&rows),
        vec![Csv {
            name: "interference.csv".into(),
            header: vec!["field_mt", "differential_err_w", "single_ended_err_w"],
            rows: csv,
        }],
        fields.len() as u64 * samples as u64,
    )
}

fn run_related(scale: &Scale, seed: u64) -> ExperimentOutput {
    let rows = related::run(scale.fig7_timing, seed);
    let csv: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            vec![
                r.tool.rate_hz,
                r.samples as f64,
                r.min_w,
                r.max_w,
                r.energy_j,
                f64::from(u8::from(r.sees_dips)),
            ]
        })
        .collect();
    output(
        related::render(&rows),
        vec![Csv {
            name: "related.csv".into(),
            header: vec![
                "rate_hz",
                "samples",
                "min_w",
                "max_w",
                "energy_j",
                "sees_dips",
            ],
            rows: csv,
        }],
        0,
    )
}

fn run_capping(seed: u64) -> ExperimentOutput {
    let caps = [130.0, 115.0, 100.0, 85.0, 70.0, 55.0, 45.0, 35.0, 25.0];
    let rows = capping::run(&caps, seed);
    let csv: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| vec![r.cap_w, r.runtime_s, r.energy_j, r.mean_power_w])
        .collect();
    output(
        capping::render(&rows),
        vec![Csv {
            name: "capping.csv".into(),
            header: vec!["cap_w", "runtime_s", "energy_j", "mean_power_w"],
            rows: csv,
        }],
        0,
    )
}

fn run_archive(scale: &Scale, seed: u64) -> ExperimentOutput {
    let r = archive::run(scale.samples_per_point, seed);
    let csv: Vec<Vec<f64>> = r
        .segments
        .iter()
        .map(|s| {
            vec![
                f64::from(s.seq),
                s.frames as f64,
                s.bytes as f64,
                if s.frames == 0 {
                    0.0
                } else {
                    s.bytes as f64 / s.frames as f64
                },
            ]
        })
        .collect();
    let mut out = output(
        archive::render(&r),
        vec![Csv {
            name: "archive.csv".into(),
            header: vec!["seq", "frames", "bytes", "bytes_per_sample"],
            rows: csv,
        }],
        r.frames,
    );
    out.metrics = vec![
        ("archive_bytes_per_sample".into(), r.bytes_per_sample()),
        ("archive_compression_ratio".into(), r.ratio()),
        (
            "archive_roundtrip_exact".into(),
            f64::from(r.roundtrip_exact),
        ),
        ("archive_stats_bit_exact".into(), f64::from(r.stats_exact)),
        ("archive_verify_clean".into(), f64::from(r.verify_clean)),
    ];
    out
}

fn run_tsdb(scale: &Scale, seed: u64) -> ExperimentOutput {
    let points = tsdb::run(&scale.tsdb_frames, seed);
    let csv: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            vec![
                p.frames as f64,
                p.segments as f64,
                p.blocks as f64,
                p.tier1 as f64,
                p.tier2 as f64,
                p.count as f64,
                f64::from(p.stats_exact),
                p.energy_rel_err,
            ]
        })
        .collect();
    let samples: u64 = points.iter().map(|p| p.frames).sum();
    let mut out = output(
        tsdb::render(&points),
        vec![Csv {
            name: "tsdb.csv".into(),
            header: vec![
                "frames",
                "segments",
                "blocks",
                "tier1",
                "tier2",
                "count",
                "stats_exact",
                "energy_rel_err",
            ],
            rows: csv,
        }],
        samples,
    );
    // The latency-vs-capture-size curve: wall-clock, so it belongs in
    // the perf record, never in the deterministic report or CSV.
    out.metrics = points
        .iter()
        .flat_map(|p| {
            [
                (format!("tsdb_{}_pyramid_s", p.frames), p.pyramid_wall_s),
                (format!("tsdb_{}_decode_s", p.frames), p.decode_wall_s),
                (format!("tsdb_{}_speedup", p.frames), p.speedup()),
            ]
        })
        .collect();
    if let Some(last) = points.last() {
        out.metrics
            .push(("tsdb_speedup_at_largest".into(), last.speedup()));
        out.metrics.push((
            "tsdb_stats_exact".into(),
            f64::from(points.iter().all(|p| p.stats_exact)),
        ));
    }
    out
}

fn run_overhead(scale: &Scale) -> ExperimentOutput {
    let cells = overhead::run(&scale.overhead_freqs);
    let csv: Vec<Vec<f64>> = cells
        .iter()
        .map(|c| {
            let kind_idx = ps3_pmt::ProbeKind::ALL
                .iter()
                .position(|&k| k == c.kind)
                .unwrap_or(0);
            vec![
                kind_idx as f64,
                c.freq_hz as f64,
                c.reads as f64,
                c.runtime_s,
                c.inflation_pct,
                c.stolen_ms,
                c.energy_est_j,
                c.truth_j,
                c.err_pct,
                c.energy_overhead_pct,
            ]
        })
        .collect();
    let samples: u64 = cells.iter().map(|c| c.reads).sum();
    let mut out = output(
        overhead::render(&cells),
        vec![Csv {
            name: "overhead.csv".into(),
            header: vec![
                "probe",
                "freq_hz",
                "reads",
                "runtime_s",
                "inflation_pct",
                "stolen_ms",
                "energy_est_j",
                "truth_j",
                "err_pct",
                "energy_overhead_pct",
            ],
            rows: csv,
        }],
        samples,
    );
    // Unlike the latency experiments these curves are fully simulated,
    // so they are deterministic — recording them as metrics puts the
    // perturbation/error story into BENCH_repro.json alongside the CSV.
    out.metrics = cells
        .iter()
        .flat_map(|c| {
            [
                (
                    format!("overhead_{}_{}hz_inflation_pct", c.kind.slug(), c.freq_hz),
                    c.inflation_pct,
                ),
                (
                    format!("overhead_{}_{}hz_err_pct", c.kind.slug(), c.freq_hz),
                    c.err_pct,
                ),
            ]
        })
        .collect();
    out.metrics.push((
        "overhead_ps3_ratio_at_max_hz".into(),
        overhead::ps3_ratio_at_max_hz(&cells),
    ));
    out
}

fn run_sim(seed: u64) -> ExperimentOutput {
    let r = sim::run(seed);
    let csv: Vec<Vec<f64>> = r
        .rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            vec![
                i as f64,
                row.seed as f64,
                row.frames as f64,
                row.violations as f64,
                // A u64 fingerprint does not fit an f64 exactly; split
                // it so the CSV still pins the replay identity.
                f64::from((row.fingerprint >> 32) as u32),
                f64::from(row.fingerprint as u32),
            ]
        })
        .collect();
    let mut out = output(
        sim::render(&r),
        vec![Csv {
            name: "sim.csv".into(),
            header: vec![
                "run",
                "seed",
                "frames",
                "violations",
                "fingerprint_hi",
                "fingerprint_lo",
            ],
            rows: csv,
        }],
        r.total_frames(),
    );
    out.metrics = vec![
        ("sim_scenarios".into(), r.rows.len() as f64),
        ("sim_violations".into(), r.total_violations() as f64),
        ("sim_sabotage_caught".into(), f64::from(r.sabotage_caught)),
    ];
    out
}

fn run_fleet(scale: &Scale, seed: u64) -> ExperimentOutput {
    let points = fleet::run(&scale.fleet_rigs, seed);
    let csv: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            vec![
                f64::from(p.rigs),
                p.published as f64,
                p.received as f64,
                p.gap_events as f64,
                p.dropped as f64,
                p.archive_samples as f64,
                p.energy_j,
                f64::from(u8::from(p.energy_exact)),
            ]
        })
        .collect();
    let samples: u64 = points.iter().map(|p| p.published).sum();
    let mut out = output(
        fleet::render(&points),
        vec![Csv {
            name: "fleet.csv".into(),
            header: vec![
                "rigs",
                "published",
                "received",
                "gap_events",
                "dropped",
                "archive_samples",
                "energy_j",
                "energy_exact",
            ],
            rows: csv,
        }],
        samples,
    );
    // The rigs-vs-throughput curve: wall-clock, so it belongs in the
    // perf record, never in the deterministic report or CSV.
    out.metrics = points
        .iter()
        .flat_map(|p| {
            [
                (
                    format!("fleet_{}_rigs_frames_per_sec", p.rigs),
                    p.frames_per_sec(),
                ),
                (format!("fleet_{}_rigs_query_s", p.rigs), p.query_wall_s),
            ]
        })
        .collect();
    out
}

fn run_stream(scale: &Scale, seed: u64) -> ExperimentOutput {
    let points = stream::run(&scale.stream_subs, seed);
    let csv: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            vec![
                p.subscribers as f64,
                p.published as f64,
                p.expected_per_sub as f64,
                p.delivered as f64,
                p.gap_events as f64,
                p.dropped as f64,
                p.evicted as f64,
            ]
        })
        .collect();
    let samples: u64 = points.iter().map(|p| p.published).sum();
    let mut out = output(
        stream::render(&points),
        vec![Csv {
            name: "stream.csv".into(),
            header: vec![
                "subscribers",
                "published",
                "expected_per_sub",
                "delivered",
                "gap_events",
                "dropped",
                "evicted",
            ],
            rows: csv,
        }],
        samples,
    );
    // The subscribers-vs-latency/throughput curve: wall-clock, so it
    // belongs in the perf record, never in the deterministic report
    // or CSV.
    out.metrics = points
        .iter()
        .flat_map(|p| {
            [
                (format!("stream_{}_subs_p50_ms", p.subscribers), p.p50_ms),
                (format!("stream_{}_subs_p99_ms", p.subscribers), p.p99_ms),
                (
                    format!("stream_{}_subs_frames_per_sec", p.subscribers),
                    p.frames_per_sec(),
                ),
                (
                    format!("stream_{}_subs_deliveries_per_sec", p.subscribers),
                    p.deliveries_per_sec(),
                ),
                (
                    format!("stream_{}_subs_connect_s", p.subscribers),
                    p.connect_wall_s,
                ),
            ]
        })
        .collect();
    out
}

fn run_noise(scale: &Scale, seed: u64) -> ExperimentOutput {
    let loads = [0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 9.5];
    let samples = scale.table2_samples / 16;
    let rows = noise::run(&loads, samples, seed);
    let csv: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            vec![
                r.amps,
                r.sigma_i,
                r.sigma_u,
                r.current_term_w,
                r.voltage_term_w,
            ]
        })
        .collect();
    output(
        noise::render(&rows),
        vec![Csv {
            name: "noise.csv".into(),
            header: vec!["amps", "sigma_i", "sigma_u", "u_term_w", "i_term_w"],
            rows: csv,
        }],
        loads.len() as u64 * samples as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("fig99", &Scale::smoke(), 1).is_none());
    }

    #[test]
    fn run_all_preserves_request_order() {
        let runs = run_all(&["table1", "fig99", "table1"], &Scale::smoke(), 1);
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0].output.as_ref().unwrap().name, "table1");
        assert!(runs[1].output.is_none());
        assert_eq!(
            runs[0].output.as_ref().unwrap().csvs,
            runs[2].output.as_ref().unwrap().csvs
        );
    }

    #[test]
    fn every_default_experiment_is_known() {
        // Cheap sanity check on the name table only: table1 is the one
        // default experiment that costs microseconds; the rest are
        // covered by the determinism integration test.
        assert!(DEFAULT_EXPERIMENTS.contains(&"table1"));
        for name in DEFAULT_EXPERIMENTS {
            assert!(
                [
                    "table1",
                    "table2",
                    "fig4",
                    "fig5",
                    "stability",
                    "fig7a",
                    "fig7b",
                    "fig8",
                    "fig10",
                    "fig12a",
                    "fig12b",
                    "interference",
                    "archive",
                    "tsdb",
                    "overhead",
                    "sim",
                    "fleet",
                    "stream",
                ]
                .contains(&name),
                "{name} missing from the dispatch table"
            );
        }
    }
}
