//! The `sim` experiment: a fixed-seed slice of the `ps3-sim`
//! deterministic fault-injection sweep, run inside the repro harness
//! so every report ships with evidence that the whole
//! acquisition→stream→archive stack still holds its invariants.
//!
//! Unlike the other experiments this one exercises real threads and
//! sockets, but every number it reports — frame counts, violation
//! counts, run fingerprints — is a pure function of `(scenario,
//! seed, plan)` by construction, so the rendered output stays
//! bit-identical across `--jobs` values and machines.

use std::fmt::Write as _;

use ps3_sim::{runner, Sabotage, SCENARIOS};

/// Seeds explored per scenario. Kept small: each pipeline run spends
/// 250 ms of virtual capture plus convergence waits.
pub const SEEDS_PER_SCENARIO: u64 = 2;

/// One scenario run in the sweep slice.
#[derive(Debug, Clone)]
pub struct SimRow {
    /// Scenario name (`pipeline`, `device-crash`, …).
    pub scenario: &'static str,
    /// Seed the plan and device noise derive from.
    pub seed: u64,
    /// Compact fault plan the run executed under.
    pub plan: String,
    /// Frames the acquisition path produced.
    pub frames: u64,
    /// Replay fingerprint of the run.
    pub fingerprint: u64,
    /// Invariant violations observed (expected: zero).
    pub violations: u64,
}

/// The full experiment result.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// One row per `(scenario, seed)` run.
    pub rows: Vec<SimRow>,
    /// Whether the planted `unsealed-tail` sabotage was caught.
    pub sabotage_caught: bool,
}

impl SimResult {
    /// Total invariant violations across the sweep slice.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.rows.iter().map(|r| r.violations).sum()
    }

    /// Total frames produced across the sweep slice.
    #[must_use]
    pub fn total_frames(&self) -> u64 {
        self.rows.iter().map(|r| r.frames).sum()
    }
}

/// Runs `SEEDS_PER_SCENARIO` seeds through every scenario, then one
/// deliberately sabotaged run that the invariant checker must catch.
#[must_use]
pub fn run(seed: u64) -> SimResult {
    let mut rows = Vec::new();
    for scenario in SCENARIOS {
        for i in 0..SEEDS_PER_SCENARIO {
            // Mix the scenario index in so no two rows share a seed.
            let run_seed = seed ^ (0x100 + i) ^ ((rows.len() as u64) << 32);
            let report = runner::run_one(scenario, run_seed, None, Sabotage::None)
                .expect("scenario runs to completion");
            rows.push(SimRow {
                scenario,
                seed: run_seed,
                plan: report.plan.to_string(),
                frames: report.frames,
                fingerprint: report.fingerprint,
                violations: report.violations.len() as u64,
            });
        }
    }
    // Negative control: a planted defect must produce a violation,
    // proving the checker has teeth.
    let sabotaged = runner::run_one("pipeline", seed ^ 0xBAD, None, Sabotage::UnsealedTail)
        .expect("sabotaged scenario runs to completion");
    let sabotage_caught = sabotaged
        .violations
        .iter()
        .any(|v| v.invariant == "archive-seal");
    SimResult {
        rows,
        sabotage_caught,
    }
}

/// Formats the report section.
#[must_use]
pub fn render(r: &SimResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ps3-sim: deterministic fault-injection sweep slice");
    let _ = writeln!(
        out,
        "  {} scenario runs, {} frames, {} invariant violation(s)",
        r.rows.len(),
        r.total_frames(),
        r.total_violations()
    );
    for row in &r.rows {
        let _ = writeln!(
            out,
            "  {:<13} seed {:>12x} plan {:<28} {:>5} frames  fp {:016x}{}",
            row.scenario,
            row.seed,
            row.plan,
            row.frames,
            row.fingerprint,
            if row.violations == 0 {
                String::new()
            } else {
                format!("  {} VIOLATION(S)", row.violations)
            }
        );
    }
    let _ = writeln!(
        out,
        "  planted unsealed-tail sabotage {}",
        if r.sabotage_caught {
            "caught by archive-seal (checker has teeth)"
        } else {
            "MISSED — checker is blind"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_slice_is_clean_and_deterministic() {
        let a = run(0x5EED);
        assert_eq!(
            a.rows.len() as u64,
            SCENARIOS.len() as u64 * SEEDS_PER_SCENARIO
        );
        assert_eq!(a.total_violations(), 0, "{}", render(&a));
        assert!(a.sabotage_caught);
        let b = run(0x5EED);
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(
                x.fingerprint, y.fingerprint,
                "{}: not replayable",
                x.scenario
            );
        }
        assert_eq!(render(&a), render(&b));
    }
}
