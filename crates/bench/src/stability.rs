//! §IV-B: long-term stability.
//!
//! A PCIe 8-pin module carries a 7.5 A load for 50 hours; every
//! 15 minutes a window of samples is captured and summarised. The
//! paper observes only ±0.09 W drift of the window averages, justifying
//! one-time calibration. Between windows the stream is paused so the
//! simulation fast-forwards through the idle hours.

use ps3_duts::LoadProgram;
use ps3_sensors::ModuleKind;
use ps3_testbed::setups::accuracy_bench;
use ps3_units::{Amps, SimDuration};

use crate::report::text_table;

/// One probe window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityProbe {
    /// Hours since the start of the run.
    pub hours: f64,
    /// Window-average power.
    pub avg_w: f64,
    /// Window minimum.
    pub min_w: f64,
    /// Window maximum.
    pub max_w: f64,
}

/// The full stability result.
#[derive(Debug, Clone)]
pub struct StabilityResult {
    /// All probe windows.
    pub probes: Vec<StabilityProbe>,
    /// Largest deviation of a window average from the grand mean — the
    /// paper's ±0.09 W number.
    pub worst_avg_deviation: f64,
}

/// Runs the stability experiment: `hours` of wall time, one probe
/// every `probe_interval`, each probe capturing `window_samples`
/// samples (the paper: 50 h, 15 min, 128 k).
#[must_use]
pub fn run(
    hours: f64,
    probe_interval: SimDuration,
    window_samples: usize,
    seed: u64,
) -> StabilityResult {
    let mut tb = accuracy_bench(
        ModuleKind::Pcie8Pin20A,
        LoadProgram::Constant(Amps::new(7.5)),
        seed,
    );
    let ps = tb.connect().expect("connect");
    let total = SimDuration::from_secs_f64(hours * 3600.0);
    let window = SimDuration::from_micros(window_samples as u64 * 50);
    let mut elapsed = SimDuration::ZERO;
    let mut probes = Vec::new();
    while elapsed < total {
        ps.resume_stream().expect("resume");
        ps.begin_trace();
        tb.advance_and_sync(&ps, window).expect("probe window");
        let trace = ps.end_trace();
        let stats = ps3_analysis::SampleStats::from_samples(trace.powers()).expect("window");
        probes.push(StabilityProbe {
            hours: elapsed.as_secs_f64() / 3600.0,
            avg_w: stats.mean,
            min_w: stats.min,
            max_w: stats.max,
        });
        ps.pause_stream().expect("pause");
        tb.advance_and_sync(&ps, probe_interval - window)
            .expect("fast-forward");
        elapsed += probe_interval;
    }
    let grand = probes.iter().map(|p| p.avg_w).sum::<f64>() / probes.len() as f64;
    let worst = probes
        .iter()
        .map(|p| (p.avg_w - grand).abs())
        .fold(0.0, f64::max);
    StabilityResult {
        probes,
        worst_avg_deviation: worst,
    }
}

/// Renders a summary plus a decimated probe table.
#[must_use]
pub fn render(result: &StabilityResult) -> String {
    let rows: Vec<Vec<String>> = result
        .probes
        .iter()
        .step_by((result.probes.len() / 20).max(1))
        .map(|p| {
            vec![
                format!("{:.2}", p.hours),
                format!("{:.3}", p.avg_w),
                format!("{:.2}", p.min_w),
                format!("{:.2}", p.max_w),
            ]
        })
        .collect();
    format!(
        "worst average deviation: ±{:.3} W (paper: ±0.09 W)\n{}",
        result.worst_avg_deviation,
        text_table(&["t [h]", "avg [W]", "min [W]", "max [W]"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_run_is_stable() {
        // Reduced scale: 2 simulated hours, probes every 15 min, 4 k
        // samples per window.
        let r = run(2.0, SimDuration::from_secs(900), 4096, 17);
        assert_eq!(r.probes.len(), 8);
        // Averages hover around 7.5 A × ~11.9 V ≈ 89.4 W.
        for p in &r.probes {
            assert!((p.avg_w - 89.4).abs() < 1.0, "avg {}", p.avg_w);
            assert!(p.min_w < p.avg_w && p.avg_w < p.max_w);
        }
        // Drift of averages stays in the paper's ballpark.
        assert!(
            r.worst_avg_deviation < 0.25,
            "deviation {}",
            r.worst_avg_deviation
        );
        // And is not exactly zero — the drift model is alive.
        assert!(r.worst_avg_deviation > 0.001);
    }
}
