//! Fig 8 (RTX 4000 Ada) and Fig 10 (Jetson AGX Orin): auto-tuning the
//! Tensor-Core Beamformer for performance and energy efficiency, with
//! PowerSensor3 providing per-kernel energy, and the 3.25× tuning-time
//! saving over the on-board-sensor workflow.

use std::sync::Arc;

use parking_lot::Mutex;

use ps3_duts::{GpuModel, GpuSpec, JetsonSpec};
use ps3_testbed::setups::{gpu_riser, jetson_usbc};
use ps3_tuner::{BeamformerModel, BeamformerProblem, Tuner, TuningOutcome, TuningRecord};
use ps3_units::SimDuration;

use crate::report::text_table;

/// Everything the figure needs.
#[derive(Debug, Clone)]
pub struct TuningFigure {
    /// Device label.
    pub device: &'static str,
    /// The sweep (possibly a subset; see `sweep_fraction`).
    pub outcome: TuningOutcome,
    /// Indices of Pareto-optimal records in `outcome.records`.
    pub pareto: Vec<usize>,
    /// The fastest configuration.
    pub fastest: TuningRecord,
    /// The most energy-efficient configuration.
    pub most_efficient: TuningRecord,
    /// Full-space session time with PowerSensor3 (paper: 2274 s).
    pub session_ps3: SimDuration,
    /// Full-space session time with the on-board sensor (paper:
    /// 7394 s).
    pub session_onboard: SimDuration,
    /// `session_onboard / session_ps3` (paper: 3.25×).
    pub speedup: f64,
}

/// Variants per parallel sweep chunk. Each chunk owns a full testbed,
/// so this balances spawn overhead against load-balancing granularity:
/// 8 variants × 10 clocks ≈ 80 kernel measurements per chunk keeps
/// even the full 512-variant sweep at 64 well-mixed units of work.
const CHUNK_PARAMS: usize = 8;

/// Runs the Fig 8 experiment on the RTX-4000-Ada-like GPU. `stride` /
/// `clock_stride` subsample the 512 × 10 space (1/1 = the full 5120
/// configurations).
#[must_use]
pub fn run_rtx4000(stride: usize, clock_stride: usize, seed: u64) -> TuningFigure {
    let spec = GpuSpec::rtx4000_ada();
    run_parallel(
        "RTX 4000 Ada (model)",
        spec.clone(),
        stride,
        clock_stride,
        move |chunk| {
            let mut tb = gpu_riser(spec.clone(), seed);
            let gpu: Arc<Mutex<GpuModel>> = tb.dut();
            let ps = tb.connect().expect("connect");
            chunk
                .run_with_powersensor(&gpu, &ps, &mut |d| {
                    tb.advance_and_sync(&ps, d).expect("advance");
                })
                .expect("tuning sweep")
        },
    )
}

/// Runs the Fig 10 experiment on the Jetson-AGX-Orin-like board; the
/// PowerSensor3 sits on the USB-C input and therefore measures the
/// whole board, carrier included.
#[must_use]
pub fn run_jetson(stride: usize, clock_stride: usize, seed: u64) -> TuningFigure {
    run_parallel(
        "Jetson AGX Orin (model)",
        GpuSpec::orin_igpu(),
        stride,
        clock_stride,
        move |chunk| {
            let mut tb = jetson_usbc(JetsonSpec::agx_orin(), seed);
            let gpu = tb.dut().lock().gpu();
            let ps = tb.connect().expect("connect");
            chunk
                .run_with_powersensor(&gpu, &ps, &mut |d| {
                    tb.advance_and_sync(&ps, d).expect("advance");
                })
                .expect("tuning sweep")
        },
    )
}

/// Shared sweep driver: splits the (possibly subsampled) sweep into
/// [`CHUNK_PARAMS`]-variant chunks and farms the chunks out over the
/// global pool. Every chunk builds its own testbed with the *same*
/// seed, so each is a pure function of `(chunk, seed)` and the merged
/// record list is bit-identical no matter how many threads run it.
fn run_parallel(
    device: &'static str,
    spec: GpuSpec,
    stride: usize,
    clock_stride: usize,
    run_chunk: impl Fn(&Tuner) -> TuningOutcome + Sync,
) -> TuningFigure {
    let model = BeamformerModel::new(spec, BeamformerProblem::paper());
    let tuner = Tuner::new(model.clone()).subset(stride, clock_stride);
    let chunks = tuner.split(CHUNK_PARAMS);
    let outcomes = rayon::global().par_map(chunks, |chunk| run_chunk(&chunk));
    let mut records = Vec::with_capacity(tuner.configurations());
    let mut total = SimDuration::ZERO;
    for o in outcomes {
        records.extend(o.records);
        total += o.total_tuning_time;
    }
    let outcome = TuningOutcome {
        strategy: "PowerSensor3",
        records,
        total_tuning_time: total,
    };
    let pareto = outcome.pareto_indices();
    let fastest = *outcome.fastest().expect("non-empty sweep");
    let most_efficient = *outcome.most_efficient().expect("non-empty sweep");
    // Full-space session accounting (independent of the subset).
    let (session_ps3, session_onboard) = Tuner::new(model).predicted_session_times();
    let speedup = session_onboard.as_secs_f64() / session_ps3.as_secs_f64();
    TuningFigure {
        device,
        outcome,
        pareto,
        fastest,
        most_efficient,
        session_ps3,
        session_onboard,
        speedup,
    }
}

/// Renders the figure summary the way the paper reports it.
#[must_use]
pub fn render(f: &TuningFigure) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} — {} configurations benchmarked ({} Pareto-optimal)",
        f.device,
        f.outcome.records.len(),
        f.pareto.len()
    );
    let _ = writeln!(
        out,
        "fastest:        {:6.1} TFLOP/s at {:.3} TFLOP/J ({:4.0} MHz)",
        f.fastest.tflops, f.fastest.tflop_per_joule, f.fastest.clock_mhz
    );
    let _ = writeln!(
        out,
        "most efficient: {:6.1} TFLOP/s at {:.3} TFLOP/J ({:4.0} MHz)",
        f.most_efficient.tflops, f.most_efficient.tflop_per_joule, f.most_efficient.clock_mhz
    );
    let eff_gain = (f.most_efficient.tflop_per_joule / f.fastest.tflop_per_joule - 1.0) * 100.0;
    let slowdown = (1.0 - f.most_efficient.tflops / f.fastest.tflops) * 100.0;
    let _ = writeln!(
        out,
        "trade-off: +{eff_gain:.1}% efficiency for -{slowdown:.1}% performance \
         (paper: +12.7% / -21.5%)"
    );
    let _ = writeln!(
        out,
        "full-space tuning session: PowerSensor3 {:.1} s vs on-board {:.1} s -> {:.2}x \
         (paper: 2274.4 s vs 7394 s -> 3.25x)",
        f.session_ps3.as_secs_f64(),
        f.session_onboard.as_secs_f64(),
        f.speedup
    );
    let rows: Vec<Vec<String>> = f
        .pareto
        .iter()
        .map(|&i| {
            let r = &f.outcome.records[i];
            vec![
                format!("{:.0}", r.clock_mhz),
                format!("{:.1}", r.tflops),
                format!("{:.3}", r.tflop_per_joule),
                format!("{:.2}", r.energy_j),
            ]
        })
        .collect();
    let _ = writeln!(out, "Pareto front:");
    out.push_str(&text_table(
        &["clock [MHz]", "TFLOP/s", "TFLOP/J", "E [J]"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx_subset_reproduces_figure_shape() {
        // 16 variants × 2 clocks through the full testbed.
        let f = run_rtx4000(32, 5, 81);
        assert_eq!(f.outcome.records.len(), 32);
        // The headline ratio comes from full-space accounting.
        assert!((f.speedup - 3.25).abs() < 0.6, "speedup {}", f.speedup);
        // Fastest beats most-efficient on speed; vice versa on energy.
        assert!(f.fastest.tflops >= f.most_efficient.tflops);
        assert!(f.most_efficient.tflop_per_joule >= f.fastest.tflop_per_joule);
        // Throughput in the right ballpark (paper: 80.4 TFLOP/s best;
        // the subset may miss the single best variant).
        assert!(
            f.fastest.tflops > 50.0 && f.fastest.tflops < 95.0,
            "fastest {}",
            f.fastest.tflops
        );
        // Efficiency in a plausible band (paper: 0.83–0.94 TFLOP/J).
        assert!(
            f.most_efficient.tflop_per_joule > 0.4 && f.most_efficient.tflop_per_joule < 1.5,
            "eff {}",
            f.most_efficient.tflop_per_joule
        );
        assert!(!f.pareto.is_empty());
    }

    #[test]
    fn jetson_subset_behaves_like_rtx_but_smaller() {
        let f = run_jetson(64, 5, 82);
        assert_eq!(f.outcome.records.len(), 16);
        // Orin-class throughput, an order of magnitude below the RTX.
        assert!(
            f.fastest.tflops > 3.0 && f.fastest.tflops < 12.0,
            "fastest {}",
            f.fastest.tflops
        );
        // Same qualitative trade-off.
        assert!(f.most_efficient.tflop_per_joule >= f.fastest.tflop_per_joule);
        // PowerSensor3 still pays off (longer kernels shrink the gap).
        assert!(f.speedup > 1.5, "speedup {}", f.speedup);
    }
}
