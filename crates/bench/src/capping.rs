//! Power-capping study (beyond the paper's figures): the class of
//! experiment §I motivates ("power capping \[18\]") that needs a fast
//! external sensor.
//!
//! A fixed amount of GPU work runs under decreasing board power caps;
//! PowerSensor3 measures the true energy-to-solution while the cap
//! stretches the runtime. The classic result appears: mild caps save
//! energy (the card runs closer to its efficiency sweet spot), while
//! aggressive caps cost energy because static/idle power integrates
//! over the stretched runtime.

use ps3_core::joules;
use ps3_duts::{GpuKernel, GpuSpec};
use ps3_testbed::setups::gpu_riser;
use ps3_units::SimDuration;

use crate::report::text_table;

/// One cap setting's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CappingRow {
    /// Board power limit in watts (`None` → factory limit shown as the
    /// spec value).
    pub cap_w: f64,
    /// Time to complete the fixed work, seconds.
    pub runtime_s: f64,
    /// Measured energy to solution, joules.
    pub energy_j: f64,
    /// Mean power over the run.
    pub mean_power_w: f64,
}

/// Runs the fixed work under each cap. Work: 6 waves of 50 ms
/// boost-clock execution (≈ 0.3 s uncapped).
#[must_use]
pub fn run(caps_w: &[f64], seed: u64) -> Vec<CappingRow> {
    let spec = GpuSpec::rtx4000_ada();
    let mut tb = gpu_riser(spec, seed);
    let gpu = tb.dut();
    let ps = tb.connect().expect("connect");
    let mut rows = Vec::new();
    for &cap in caps_w {
        gpu.lock().set_power_limit(Some(cap));
        // Idle settle between runs so each starts from the same state.
        tb.advance_and_sync(&ps, SimDuration::from_millis(2000))
            .expect("settle");
        let kernel = GpuKernel {
            waves: 6,
            wave_duration: SimDuration::from_millis(50),
            gap: SimDuration::from_micros(200),
            utilization: 0.9,
        };
        let start_time = tb.device_time();
        let first = ps.read();
        gpu.lock().launch(kernel);
        // Advance until the kernel completes (capped runs stretch).
        loop {
            tb.advance_and_sync(&ps, SimDuration::from_millis(10))
                .expect("advance");
            if !gpu.lock().busy(tb.device_time()) {
                break;
            }
        }
        let second = ps.read();
        let runtime_s = (tb.device_time() - start_time).as_secs_f64();
        let energy_j = joules(&first, &second).value();
        rows.push(CappingRow {
            cap_w: cap,
            runtime_s,
            energy_j,
            mean_power_w: energy_j / runtime_s,
        });
    }
    gpu.lock().set_power_limit(None);
    rows
}

/// Renders the capping table.
#[must_use]
pub fn render(rows: &[CappingRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.0}", r.cap_w),
                format!("{:.3}", r.runtime_s),
                format!("{:.2}", r.energy_j),
                format!("{:.1}", r.mean_power_w),
            ]
        })
        .collect();
    text_table(&["cap [W]", "runtime [s]", "E [J]", "mean P [W]"], &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capping_stretches_runtime_and_bends_energy() {
        // With P ≈ idle + dyn·(f/f_boost)², energy-to-solution is
        // minimised where the cap leaves ≈ idle watts of dynamic
        // headroom (~36 W on this card); caps below that waste energy.
        let rows = run(&[130.0, 100.0, 45.0, 24.0], 91);
        assert_eq!(rows.len(), 4);
        // Runtime grows monotonically as the cap tightens.
        for pair in rows.windows(2) {
            assert!(
                pair[1].runtime_s > pair[0].runtime_s * 0.99,
                "cap {} -> {:.3}s, cap {} -> {:.3}s",
                pair[0].cap_w,
                pair[0].runtime_s,
                pair[1].cap_w,
                pair[1].runtime_s
            );
        }
        // Mean power respects each cap (small sensor-noise slack).
        for r in &rows {
            assert!(
                r.mean_power_w < r.cap_w + 3.0,
                "cap {} but mean {}",
                r.cap_w,
                r.mean_power_w
            );
        }
        // A mild cap (100 W) saves energy vs uncapped…
        assert!(
            rows[1].energy_j < rows[0].energy_j,
            "mild cap should save: {} vs {}",
            rows[1].energy_j,
            rows[0].energy_j
        );
        // …while capping below the sweet spot wastes energy again
        // (idle power integrates over the stretched runtime).
        assert!(
            rows[3].energy_j > rows[2].energy_j,
            "harsh cap should cost: {} vs {}",
            rows[3].energy_j,
            rows[2].energy_j
        );
    }
}
