//! Archive experiment (beyond the paper): records the fig4-style
//! bench capture through the background [`ps3_archive::ArchiveWriter`]
//! and measures what the on-disk trace store costs and preserves —
//! bytes per sample versus the raw 2-byte wire stream, query
//! exactness against the live trace, and summary fast-path agreement.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ps3_archive::{Archive, ArchiveWriter, ArchiveWriterOptions};
use ps3_duts::LoadProgram;
use ps3_sensors::ModuleKind;
use ps3_testbed::setups::accuracy_bench;
use ps3_units::{Amps, SimDuration, SimTime};

/// One archived segment, for the CSV artifact.
#[derive(Debug, Clone)]
pub struct SegmentRow {
    /// Segment sequence number.
    pub seq: u32,
    /// Frames in the segment.
    pub frames: u64,
    /// On-disk bytes (header, tables, payload, seal).
    pub bytes: u64,
}

/// Everything the archive experiment measured.
#[derive(Debug, Clone)]
pub struct ArchiveResult {
    /// Frames captured and archived.
    pub frames: u64,
    /// Total archive file size in bytes (header + sealed segments).
    pub archive_bytes: u64,
    /// The same capture's raw wire footprint (one timestamp packet
    /// plus two sample packets, 2 bytes each, per one-pair frame).
    pub wire_bytes: u64,
    /// Sealed segments written.
    pub segments: Vec<SegmentRow>,
    /// Re-queried range equals the live trace bit for bit.
    pub roundtrip_exact: bool,
    /// Summary fast-path stats equal the full decode to the last bit.
    pub stats_exact: bool,
    /// Relative disagreement of the marker-window energy fast path
    /// against the live trace's trapezoid integral.
    pub energy_rel_err: f64,
    /// Deep verification found no damage.
    pub verify_clean: bool,
}

impl ArchiveResult {
    /// Archive bytes per stored sample frame.
    #[must_use]
    pub fn bytes_per_sample(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.archive_bytes as f64 / self.frames as f64
        }
    }

    /// Compression ratio versus the raw wire stream.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.archive_bytes == 0 {
            0.0
        } else {
            self.wire_bytes as f64 / self.archive_bytes as f64
        }
    }
}

fn temp_path() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("ps3-bench-archive-{}-{n}.ps3a", std::process::id()))
}

/// Runs the experiment: a constant-load capture on the 12 V accuracy
/// bench, archived live, then re-queried and checked against the
/// in-memory trace.
#[must_use]
pub fn run(samples: usize, seed: u64) -> ArchiveResult {
    let mut tb = accuracy_bench(
        ModuleKind::Slot10A12V,
        LoadProgram::Constant(Amps::new(6.0)),
        seed,
    );
    let ps = tb.connect().expect("connect");
    tb.advance_and_sync(&ps, SimDuration::from_millis(2))
        .expect("settle");

    let path = temp_path();
    let writer = ArchiveWriter::spawn(
        &path,
        ps.configs(),
        ArchiveWriterOptions {
            segment_frames: 4096,
            queue_capacity: 1 << 20,
        },
    )
    .expect("spawn archive writer");
    writer.attach(&ps);
    ps.begin_trace_with_capacity(samples);
    let quarter = SimDuration::from_micros(samples as u64 / 4 * 50);
    tb.advance_and_sync(&ps, quarter).expect("lead-in");
    ps.mark('k').expect("mark");
    tb.advance_and_sync(&ps, quarter * 2).expect("kernel");
    ps.mark('e').expect("mark");
    tb.advance_and_sync(&ps, quarter).expect("tail");
    let live = ps.end_trace();
    let stats = writer.finish().expect("finish archive");
    assert_eq!(stats.dropped, 0, "bounded queue dropped frames");

    let archive = Archive::open(&path).expect("open archive");
    let segments: Vec<SegmentRow> = archive
        .segments()
        .iter()
        .map(|meta| SegmentRow {
            seq: meta.header.seq,
            frames: u64::from(meta.header.frame_count),
            bytes: meta.header.disk_size(),
        })
        .collect();

    let t0 = live.samples()[0].time;
    let end = SimTime::from_micros(live.samples()[live.len() - 1].time.as_micros() + 1);
    let requeried = archive.read_range(t0, end).expect("read_range");
    let roundtrip_exact = requeried == live;

    let fast = archive.stats(t0, end).expect("stats");
    let slow = archive.stats_decoded(t0, end).expect("stats_decoded");
    let stats_exact = fast.count == slow.count
        && fast.sum_w.to_bits() == slow.sum_w.to_bits()
        && fast.min_w.to_bits() == slow.min_w.to_bits()
        && fast.max_w.to_bits() == slow.max_w.to_bits();

    let e_live = live
        .between_markers('k', 'e')
        .expect("marker window")
        .energy()
        .value();
    let e_arc = archive.energy_between('k', 'e').expect("energy").value();
    let energy_rel_err = (e_arc - e_live).abs() / e_live.abs().max(1e-12);

    let verify_clean = archive.verify().expect("verify").is_clean();

    drop(archive);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(ps3_archive::index_path_for(&path)).ok();

    ArchiveResult {
        frames: stats.frames,
        archive_bytes: stats.bytes,
        wire_bytes: stats.frames * 6,
        segments,
        roundtrip_exact,
        stats_exact,
        energy_rel_err,
        verify_clean,
    }
}

/// Formats the paper-style report.
#[must_use]
pub fn render(r: &ArchiveResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ps3-archive: compressed trace store");
    let _ = writeln!(
        out,
        "  {} frames -> {} bytes in {} sealed segments",
        r.frames,
        r.archive_bytes,
        r.segments.len()
    );
    let _ = writeln!(
        out,
        "  {:.3} bytes/sample vs {:.1} on the wire ({:.2}x compression)",
        r.bytes_per_sample(),
        if r.frames == 0 {
            0.0
        } else {
            r.wire_bytes as f64 / r.frames as f64
        },
        r.ratio()
    );
    let _ = writeln!(
        out,
        "  round-trip exact: {}   stats fast path bit-exact: {}   verify clean: {}",
        r.roundtrip_exact, r.stats_exact, r.verify_clean
    );
    let _ = writeln!(
        out,
        "  marker-window energy fast path rel. err: {:.2e}",
        r.energy_rel_err
    );
    out
}
