//! The parallel engine's core guarantee: `repro` output is
//! bit-identical for any thread count. Every parallel unit owns a
//! testbed and RNG stream derived purely from its identity, so runs on
//! a 1-thread pool and an 8-thread pool must produce byte-for-byte
//! equal reports and CSV rows.
//!
//! The experiments here run at smoke scale; the cross-check covers
//! every parallel code path: the experiment-level fan-out, the fig4
//! per-point sweep, the table2 per-load runs, and the fig8/fig10
//! chunked tuner sweeps (with their nested scopes).

use ps3_bench::driver::{run_all, Scale};

/// Experiments covering all intra-experiment parallel paths plus a
/// serial-by-nature one (table1) for the experiment-level fan-out and
/// the archive store (whose on-disk byte counts must also be
/// reproducible run to run).
const NAMES: [&str; 7] = [
    "table1", "table2", "fig4", "fig8", "fig10", "archive", "overhead",
];

const SEED: u64 = 0xD57E_4213;

#[test]
fn outputs_identical_for_one_and_eight_jobs() {
    let scale = Scale::smoke();

    rayon::configure_global(1);
    assert_eq!(rayon::current_num_threads(), 1);
    let serial = run_all(&NAMES, &scale, SEED);

    rayon::configure_global(8);
    assert_eq!(rayon::current_num_threads(), 8);
    let parallel = run_all(&NAMES, &scale, SEED);

    // Leave the global pool in its default state for other tests in
    // this binary (none today, but cheap insurance).
    rayon::configure_global(0);

    assert_eq!(serial.len(), parallel.len());
    for (name, (s, p)) in NAMES.iter().zip(serial.iter().zip(&parallel)) {
        let s = s.output.as_ref().expect("known experiment");
        let p = p.output.as_ref().expect("known experiment");
        // Reports are rendered with fixed-precision formatting, so a
        // byte-equal report means every displayed statistic agrees.
        assert_eq!(s.report, p.report, "{name}: report differs across jobs");
        // CSV rows carry the full-precision f64 values: this is the
        // bit-identical check (NaN never appears in these artifacts,
        // so f64 equality is exact bit equality here).
        assert_eq!(s.csvs.len(), p.csvs.len(), "{name}: artifact count");
        for (sc, pc) in s.csvs.iter().zip(&p.csvs) {
            assert_eq!(sc.name, pc.name);
            assert_eq!(sc.header, pc.header);
            assert_eq!(sc.rows, pc.rows, "{}: rows differ across jobs", sc.name);
        }
        assert_eq!(s.samples, p.samples);
        assert_eq!(s.metrics, p.metrics, "{name}: metrics differ across jobs");
    }
}
