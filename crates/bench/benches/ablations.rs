//! Ablation benches for the design choices DESIGN.md calls out:
//! firmware averaging depth, the pre-rendered display fonts, USB
//! buffering, fault-injection overhead, and the DUT governor/FTL step
//! costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use ps3_duts::{
    ConstantDut, Dut, FioJob, GpuKernel, GpuModel, GpuSpec, IoPattern, RailId, SsdModel, SsdSpec,
};
use ps3_firmware::{Display, PairReadout};
use ps3_sensors::ModuleKind;
use ps3_testbed::TestbedBuilder;
use ps3_transport::{FaultPlan, FaultyTransport, Transport, VirtualSerial};
use ps3_units::{Amps, SimDuration, SimTime, Volts};

/// End-to-end pipeline throughput at different firmware averaging
/// depths: deeper averaging lowers the output rate (and host load) at
/// the same ADC duty cycle — the §III-B trade-off that sets 20 kHz.
fn bench_averaging_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_averaging");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    for averages in [1u32, 3, 6, 12] {
        g.bench_with_input(
            BenchmarkId::from_parameter(averages),
            &averages,
            |b, &averages| {
                b.iter(|| {
                    let dut = ConstantDut::new(RailId::Slot12V, Volts::new(12.0), Amps::new(2.0));
                    let mut tb = TestbedBuilder::new(dut)
                        .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
                        .averaging(averages)
                        .build();
                    let ps = tb.connect().unwrap();
                    tb.advance_and_sync(&ps, SimDuration::from_millis(20))
                        .unwrap();
                    std::hint::black_box(ps.read().total_watts())
                })
            },
        );
    }
    g.finish();
}

/// Display DMA traffic: pre-rendered glyphs vs full-frame redraws
/// (§III-B2's two firmware optimisations).
fn bench_display_fonts(c: &mut Criterion) {
    let pairs = [
        PairReadout {
            volts: 12.0,
            amps: 8.0,
        },
        PairReadout {
            volts: 3.3,
            amps: 1.1,
        },
    ];
    let mut g = c.benchmark_group("ablation_display");
    for prerendered in [true, false] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if prerendered { "glyphs" } else { "full_frame" }),
            &prerendered,
            |b, &prerendered| {
                b.iter(|| {
                    let mut d = Display::new();
                    d.set_prerendered_fonts(prerendered);
                    for k in 0..100u64 {
                        d.update(SimTime::from_micros(k * 500_000), 99.4, &pairs);
                    }
                    std::hint::black_box(d.dma_bytes())
                })
            },
        );
    }
    g.finish();
}

/// Transport throughput with and without fault injection, and under
/// tight (USB-endpoint-sized) buffering.
fn bench_transport(c: &mut Criterion) {
    let payload = vec![0x55u8; 256 * 1024];
    let mut g = c.benchmark_group("ablation_transport");
    g.sample_size(10);
    g.bench_function("clean_link", |b| {
        b.iter(|| {
            let (tx, rx) = VirtualSerial::pair();
            let data = payload.clone();
            let writer = std::thread::spawn(move || tx.write_all(&data).unwrap());
            let mut buf = vec![0u8; payload.len()];
            rx.read_exact(&mut buf).unwrap();
            writer.join().unwrap();
            std::hint::black_box(buf[0])
        })
    });
    g.bench_function("noisy_link", |b| {
        b.iter(|| {
            let (tx, rx) = VirtualSerial::pair();
            let rx = FaultyTransport::new(rx, FaultPlan::NOISY, 5);
            let data = payload.clone();
            let writer = std::thread::spawn(move || tx.write_all(&data).unwrap());
            let mut buf = vec![0u8; payload.len()];
            rx.read_exact(&mut buf).unwrap();
            writer.join().unwrap();
            std::hint::black_box(buf[0])
        })
    });
    g.bench_function("tiny_buffers", |b| {
        b.iter(|| {
            let (tx, rx) = VirtualSerial::pair_with_capacity(64);
            let data = payload.clone();
            let writer = std::thread::spawn(move || tx.write_all(&data).unwrap());
            let mut buf = vec![0u8; payload.len()];
            rx.read_exact(&mut buf).unwrap();
            writer.join().unwrap();
            std::hint::black_box(buf[0])
        })
    });
    g.finish();
}

/// Cost of the DUT model steps the analog frontend pays per ADC
/// conversion.
fn bench_dut_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dut_step");
    g.bench_function("gpu_rail_state", |b| {
        let mut gpu = GpuModel::new(GpuSpec::rtx4000_ada(), 3);
        gpu.launch(GpuKernel::synthetic_fma(SimDuration::from_secs(3600), 100));
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_nanos(1042);
            std::hint::black_box(gpu.rail_state(RailId::Ext12V, t))
        })
    });
    g.bench_function("ssd_rail_state_under_gc", |b| {
        let mut ssd = SsdModel::new(SsdSpec::samsung_980_pro(), 4);
        ssd.precondition();
        ssd.start_job(FioJob {
            pattern: IoPattern::RandWrite { block_kib: 4 },
            queue_depth: 32,
        });
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_nanos(1042);
            std::hint::black_box(ssd.rail_state(RailId::Slot3V3, t))
        })
    });
    g.finish();
}

criterion_group!(
    ablations,
    bench_averaging_depth,
    bench_display_fonts,
    bench_transport,
    bench_dut_models
);
criterion_main!(ablations);
