//! One Criterion bench per paper table/figure.
//!
//! Each bench runs a reduced-scale version of the corresponding
//! experiment end-to-end (full sensor/firmware/host pipeline), so
//! `cargo bench` both regenerates every result and times it. The
//! full-scale numbers come from `cargo run --release -p ps3-bench --bin
//! repro -- --full`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use ps3_bench::{fig12, fig4, fig5, fig7, fig8, stability, table1, table2};
use ps3_units::SimDuration;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_error_budget", |b| {
        b.iter(|| std::hint::black_box(table1::run()))
    });
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    g.bench_function("error_vs_rate_4k_samples", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(table2::run(4096, seed))
        })
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10).measurement_time(Duration::from_secs(30));
    g.bench_function("sweep_all_modules_512_samples", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(fig4::run(512, seed))
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10).measurement_time(Duration::from_secs(15));
    g.bench_function("step_response_10ms", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(fig5::run(10, seed))
        })
    });
    g.finish();
}

fn bench_stability(c: &mut Criterion) {
    let mut g = c.benchmark_group("stability");
    g.sample_size(10).measurement_time(Duration::from_secs(20));
    g.bench_function("one_hour_4_probes", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(stability::run(1.0, SimDuration::from_secs(900), 4096, seed))
        })
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10).measurement_time(Duration::from_secs(40));
    g.bench_function("nvidia_quick", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(fig7::run_nvidia(fig7::Fig7Timing::quick(), seed))
        })
    });
    g.bench_function("amd_quick", |b| {
        let mut seed = 1000u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(fig7::run_amd(fig7::Fig7Timing::quick(), seed))
        })
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_fig10");
    g.sample_size(10).measurement_time(Duration::from_secs(60));
    g.bench_function("rtx4000_subset_64_configs", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(fig8::run_rtx4000(64, 2, seed))
        })
    });
    g.bench_function("jetson_subset_16_configs", |b| {
        let mut seed = 2000u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(fig8::run_jetson(128, 4, seed))
        })
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10).measurement_time(Duration::from_secs(40));
    g.bench_function("reads_100ms_windows", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(fig12::run_reads(SimDuration::from_millis(100), seed))
        })
    });
    g.bench_function("writes_15s", |b| {
        let mut seed = 3000u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(fig12::run_writes(15, seed))
        })
    });
    g.finish();
}

criterion_group!(
    experiments,
    bench_table1,
    bench_table2,
    bench_fig4,
    bench_fig5,
    bench_stability,
    bench_fig7,
    bench_fig8,
    bench_fig12
);
criterion_main!(experiments);
