//! Serial-vs-parallel benchmarks of the experiment engine.
//!
//! Runs reduced versions of the sweep-style experiments once on a
//! single-thread pool and once on the full pool, so the speedup of the
//! parallel engine (and any regression in the batched sample hot path)
//! shows up directly in the Criterion report. The machine-readable
//! counterpart lives in `BENCH_repro.json`, emitted by the `repro`
//! binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ps3_bench::{fig4, table2};

/// Samples per sweep point — small enough for a Criterion iteration,
/// large enough that the per-sample hot path dominates.
const SAMPLES: usize = 2048;

const SEED: u64 = 0x5EED_2026;

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel/fig4");
    // 4 modules × 21 steps × SAMPLES samples per iteration.
    g.throughput(Throughput::Elements(4 * 21 * SAMPLES as u64));
    g.sample_size(10);
    for jobs in [1usize, 0] {
        let label = if jobs == 1 { "serial" } else { "all-cores" };
        g.bench_with_input(BenchmarkId::from_parameter(label), &jobs, |b, &jobs| {
            rayon::configure_global(jobs);
            b.iter(|| std::hint::black_box(fig4::run(SAMPLES, SEED)));
        });
    }
    g.finish();
    rayon::configure_global(0);
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel/table2");
    g.throughput(Throughput::Elements(2 * SAMPLES as u64));
    g.sample_size(10);
    for jobs in [1usize, 0] {
        let label = if jobs == 1 { "serial" } else { "all-cores" };
        g.bench_with_input(BenchmarkId::from_parameter(label), &jobs, |b, &jobs| {
            rayon::configure_global(jobs);
            b.iter(|| std::hint::black_box(table2::run(SAMPLES, SEED)));
        });
    }
    g.finish();
    rayon::configure_global(0);
}

criterion_group!(benches, bench_fig4, bench_table2);
criterion_main!(benches);
