//! Microbenchmarks of the hot paths: wire protocol, ADC sequencing,
//! sensor models, host decode, and analysis kernels.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ps3_analysis::{block_average, pareto_front, ParetoPoint, Trace};
use ps3_firmware::protocol::{Packet, StreamDecoder};
use ps3_firmware::AdcSequencer;
use ps3_sensors::{HallCurrentSensor, HallSensorSpec, ModuleKind, SensorModule};
use ps3_units::{Amps, SimTime, Volts, Watts};

fn bench_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_sample", |b| {
        b.iter(|| {
            std::hint::black_box(
                Packet::Sample {
                    sensor: 3,
                    marker: false,
                    value: 0x2AB,
                }
                .encode(),
            )
        })
    });
    g.bench_function("decode_sample", |b| {
        let bytes = Packet::Sample {
            sensor: 3,
            marker: false,
            value: 0x2AB,
        }
        .encode();
        b.iter(|| std::hint::black_box(Packet::decode(bytes).unwrap()))
    });
    g.finish();

    // A second of wire traffic: 20 k frames × 9 packets × 2 bytes.
    let mut stream = Vec::new();
    for frame in 0..20_000u64 {
        stream.extend_from_slice(
            &Packet::Timestamp {
                micros: ((frame * 50) % 1024) as u16,
            }
            .encode(),
        );
        for s in 0..8u8 {
            stream.extend_from_slice(
                &Packet::Sample {
                    sensor: s % 7,
                    marker: false,
                    value: 512,
                }
                .encode(),
            );
        }
    }
    let mut g = c.benchmark_group("stream_decode");
    g.throughput(Throughput::Bytes(stream.len() as u64));
    g.bench_function("one_second_of_traffic", |b| {
        b.iter(|| {
            let mut dec = StreamDecoder::new();
            std::hint::black_box(dec.push_slice(&stream).len())
        })
    });
    g.finish();
}

fn bench_adc(c: &mut Criterion) {
    let mut g = c.benchmark_group("adc");
    g.throughput(Throughput::Elements(48));
    g.bench_function("frame_48_conversions", |b| {
        let mut seq = AdcSequencer::new();
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += ps3_firmware::FRAME_INTERVAL;
            std::hint::black_box(seq.run_frame(&mut |_c: usize, _t: SimTime| 1.65f64, t))
        })
    });
    g.finish();
}

fn bench_sensors(c: &mut Criterion) {
    let mut g = c.benchmark_group("sensors");
    g.throughput(Throughput::Elements(1));
    g.bench_function("hall_sample", |b| {
        let mut hall = HallCurrentSensor::new(HallSensorSpec::MLX91221_10A, 3.3, 7);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += ps3_units::SimDuration::from_nanos(1042);
            std::hint::black_box(hall.output_voltage(Amps::new(4.2), t))
        })
    });
    g.bench_function("module_pair_sample", |b| {
        let mut module = SensorModule::new(ModuleKind::Slot10A12V, 9);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += ps3_units::SimDuration::from_nanos(1042);
            std::hint::black_box(module.sample(Volts::new(12.0), Amps::new(4.2), t))
        })
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let samples: Vec<f64> = (0..131_072).map(|i| (i % 97) as f64).collect();
    let mut g = c.benchmark_group("analysis");
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("block_average_128k_by_20", |b| {
        b.iter(|| std::hint::black_box(block_average(&samples, 20)))
    });
    g.bench_function("stats_128k", |b| {
        b.iter(|| {
            std::hint::black_box(ps3_analysis::SampleStats::from_samples(
                samples.iter().copied(),
            ))
        })
    });
    g.finish();

    let points: Vec<ParetoPoint> = (0..5120u32)
        .map(|i| {
            let x = f64::from(i.wrapping_mul(2_654_435_761) % 100_000) / 1000.0;
            let y = f64::from(i.wrapping_mul(40_503) % 100_000) / 1000.0;
            ParetoPoint::new(x, y)
        })
        .collect();
    let mut g = c.benchmark_group("pareto");
    g.throughput(Throughput::Elements(points.len() as u64));
    g.bench_function("front_of_5120_points", |b| {
        b.iter(|| std::hint::black_box(pareto_front(&points).len()))
    });
    g.finish();

    let mut trace = Trace::with_capacity(131_072);
    for i in 0..131_072u64 {
        trace.push(SimTime::from_micros(i * 50), Watts::new(96.0));
    }
    let mut g = c.benchmark_group("trace");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("energy_integration_128k", |b| {
        b.iter(|| std::hint::black_box(trace.energy()))
    });
    g.finish();
}

criterion_group!(
    micro,
    bench_protocol,
    bench_adc,
    bench_sensors,
    bench_analysis
);
criterion_main!(micro);
