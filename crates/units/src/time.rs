//! Simulated-time primitives.
//!
//! The whole stack runs on a virtual clock with nanosecond resolution:
//! DUT power models are functions of [`SimTime`], the firmware emulator
//! advances in ADC-conversion-sized [`SimDuration`] steps, and the host
//! library reconstructs device time from 10-bit wire timestamps.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use ps3_units::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(50);
/// assert_eq!(t.as_nanos(), 50_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: Self = Self(0);

    /// Constructs an instant from nanoseconds since the epoch.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Constructs an instant from microseconds since the epoch.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros * 1_000)
    }

    /// Nanoseconds since the epoch.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: Self) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since with later instant");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating duration since another instant (zero if `other` is
    /// later).
    #[must_use]
    pub fn saturating_duration_since(self, other: Self) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: Self = Self(0);

    /// Constructs a duration from nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// Constructs a duration from microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Self(micros * 1_000)
    }

    /// Constructs a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Self(millis * 1_000_000)
    }

    /// Constructs a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self(secs * 1_000_000_000)
    }

    /// Constructs a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        Self((secs * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds (truncating).
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in milliseconds (truncating).
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length in seconds as a float.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the duration is zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = Self;
    fn mul(self, rhs: u64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Mul<SimDuration> for u64 {
    type Output = SimDuration;
    fn mul(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self * rhs.0)
    }
}

impl Div<u64> for SimDuration {
    type Output = Self;
    fn div(self, rhs: u64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Div for SimDuration {
    /// How many times `rhs` fits in `self` (flooring).
    type Output = u64;
    fn div(self, rhs: Self) -> u64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}µs", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::from_micros(100);
        let t1 = t0 + SimDuration::from_micros(50);
        assert_eq!(t1 - t0, SimDuration::from_micros(50));
        assert_eq!(t1.as_micros(), 150);
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(t1),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_division() {
        let frame = SimDuration::from_micros(50);
        let second = SimDuration::from_secs(1);
        assert_eq!(second / frame, 20_000); // 20 kHz sample frames per second
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(50).to_string(), "50.000µs");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
