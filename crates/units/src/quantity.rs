//! Electrical quantity newtypes with physically meaningful arithmetic.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::time::SimDuration;

/// Declares a `f64`-backed quantity newtype with standard arithmetic.
macro_rules! quantity {
    ($(#[$doc:meta])* $name:ident, $unit:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value expressed in the quantity's SI unit.
            ///
            /// # Examples
            ///
            /// ```
            /// let v = ps3_units::Volts::new(12.0);
            /// assert_eq!(v.value(), 12.0);
            /// ```
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The zero quantity.
            #[must_use]
            pub const fn zero() -> Self {
                Self(0.0)
            }

            /// Returns the underlying value in the quantity's SI unit.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value of the quantity.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Elementwise minimum.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Elementwise maximum.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns `true` when the value is finite (not NaN/∞).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $unit)
                } else {
                    write!(f, "{} {}", self.0, $unit)
                }
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(q: $name) -> f64 {
                q.0
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volts,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Amps,
    "A"
);
quantity!(
    /// Instantaneous power in watts.
    Watts,
    "W"
);
quantity!(
    /// Energy in joules.
    Joules,
    "J"
);

impl Mul<Amps> for Volts {
    type Output = Watts;
    /// `P = U · I`.
    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.value() * rhs.value())
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;
    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl Mul<SimDuration> for Watts {
    type Output = Joules;
    /// `E = P · t`.
    fn mul(self, rhs: SimDuration) -> Joules {
        Joules::new(self.value() * rhs.as_secs_f64())
    }
}

impl Mul<Watts> for SimDuration {
    type Output = Joules;
    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

impl Div<SimDuration> for Joules {
    type Output = Watts;
    /// Average power over an interval: `P = E / t`.
    fn div(self, rhs: SimDuration) -> Watts {
        Watts::new(self.value() / rhs.as_secs_f64())
    }
}

impl Div<Volts> for Watts {
    type Output = Amps;
    /// `I = P / U`.
    fn div(self, rhs: Volts) -> Amps {
        Amps::new(self.value() / rhs.value())
    }
}

impl Div<Amps> for Watts {
    type Output = Volts;
    /// `U = P / I`.
    fn div(self, rhs: Amps) -> Volts {
        Volts::new(self.value() / rhs.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_precision() {
        assert_eq!(format!("{:.2}", Watts::new(1.2345)), "1.23 W");
        assert_eq!(format!("{}", Amps::new(2.5)), "2.5 A");
    }

    #[test]
    fn arithmetic_identities() {
        let a = Volts::new(5.0);
        let b = Volts::new(3.0);
        assert_eq!(a + b, Volts::new(8.0));
        assert_eq!(a - b, Volts::new(2.0));
        assert_eq!(-a, Volts::new(-5.0));
        assert_eq!(a * 2.0, Volts::new(10.0));
        assert_eq!(2.0 * a, Volts::new(10.0));
        assert_eq!(a / 2.0, Volts::new(2.5));
        assert_eq!(a / b, 5.0 / 3.0);
    }

    #[test]
    fn cross_unit_arithmetic() {
        assert_eq!(Watts::new(60.0) / Volts::new(12.0), Amps::new(5.0));
        assert_eq!(Watts::new(60.0) / Amps::new(5.0), Volts::new(12.0));
        let e = SimDuration::from_secs_f64(3.0) * Watts::new(2.0);
        assert_eq!(e, Joules::new(6.0));
    }

    #[test]
    fn sum_of_quantities() {
        let total: Joules = (1..=4).map(|i| Joules::new(f64::from(i))).sum();
        assert_eq!(total, Joules::new(10.0));
    }

    #[test]
    fn min_max_abs() {
        let a = Watts::new(-3.0);
        assert_eq!(a.abs(), Watts::new(3.0));
        assert_eq!(a.min(Watts::new(1.0)), a);
        assert_eq!(a.max(Watts::new(1.0)), Watts::new(1.0));
    }

    #[test]
    fn conversions() {
        let w: Watts = 7.5.into();
        let raw: f64 = w.into();
        assert_eq!(raw, 7.5);
    }
}
