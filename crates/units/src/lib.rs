//! Physical-quantity newtypes and simulated-time primitives.
//!
//! Every crate in the PowerSensor3 reproduction exchanges electrical
//! quantities and simulated timestamps. Wrapping the raw `f64`/`u64`
//! values in newtypes ([`Volts`], [`Amps`], [`Watts`], [`Joules`],
//! [`SimTime`], [`SimDuration`]) keeps rails, sensors, and analysis code
//! from mixing up units, while the arithmetic impls encode the physics
//! (`V * A = W`, `W * t = J`, ...).
//!
//! # Examples
//!
//! ```
//! use ps3_units::{Amps, SimDuration, Volts};
//!
//! let power = Volts::new(12.0) * Amps::new(8.0);
//! assert_eq!(power.value(), 96.0);
//! let energy = power * SimDuration::from_millis(500);
//! assert!((energy.value() - 48.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]

mod quantity;
mod time;

pub use quantity::{Amps, Joules, Volts, Watts};
pub use time::{SimDuration, SimTime};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_from_voltage_and_current() {
        assert_eq!((Volts::new(3.3) * Amps::new(10.0)).value(), 33.0);
    }

    #[test]
    fn energy_roundtrip() {
        let p = Watts::new(120.0);
        let d = SimDuration::from_secs_f64(2.0);
        let e = p * d;
        assert!((e.value() - 240.0).abs() < 1e-9);
        assert!((e / d - p).value().abs() < 1e-9);
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Volts>();
        assert_send_sync::<SimTime>();
    }
}
