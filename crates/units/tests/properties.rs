//! Property-based tests of the unit types' algebra.

use proptest::prelude::*;

use ps3_units::{Amps, Joules, SimDuration, SimTime, Volts, Watts};

proptest! {
    #[test]
    fn power_identity(u in -1e3f64..1e3, i in -1e3f64..1e3) {
        let p = Volts::new(u) * Amps::new(i);
        prop_assert!((p.value() - u * i).abs() <= 1e-9 * (1.0 + (u * i).abs()));
        // Commutes.
        prop_assert_eq!(p, Amps::new(i) * Volts::new(u));
    }

    #[test]
    fn energy_power_roundtrip(w in 0.0f64..1e4, ms in 1u64..1_000_000) {
        let d = SimDuration::from_millis(ms);
        let e = Watts::new(w) * d;
        let back = e / d;
        prop_assert!((back.value() - w).abs() < 1e-6 * (1.0 + w));
    }

    #[test]
    fn duration_addition_is_associative(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, c in 0u64..1u64 << 40) {
        let (a, b, c) = (
            SimDuration::from_nanos(a),
            SimDuration::from_nanos(b),
            SimDuration::from_nanos(c),
        );
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn instant_plus_duration_ordering(t in 0u64..1u64 << 50, d in 1u64..1u64 << 30) {
        let t0 = SimTime::from_nanos(t);
        let t1 = t0 + SimDuration::from_nanos(d);
        prop_assert!(t1 > t0);
        prop_assert_eq!(t1 - t0, SimDuration::from_nanos(d));
        prop_assert_eq!(t1.saturating_duration_since(t0).as_nanos(), d);
        prop_assert_eq!(t0.saturating_duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn quantity_sum_matches_float_sum(values in proptest::collection::vec(-1e6f64..1e6, 0..64)) {
        let total: Joules = values.iter().map(|&v| Joules::new(v)).sum();
        let expect: f64 = values.iter().sum();
        prop_assert!((total.value() - expect).abs() < 1e-6 * (1.0 + expect.abs()));
    }

    #[test]
    fn duration_secs_roundtrip(ns in 0u64..1u64 << 52) {
        let d = SimDuration::from_nanos(ns);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        // f64 has 52 bits of mantissa; round-trip error stays tiny.
        let diff = back.as_nanos().abs_diff(d.as_nanos());
        prop_assert!(diff <= 1 + ns / (1 << 50), "diff {diff}");
    }

    #[test]
    fn scaling_durations(ns in 0u64..1u64 << 30, k in 1u64..1000) {
        let d = SimDuration::from_nanos(ns);
        prop_assert_eq!(d * k / k, d);
        prop_assert_eq!((k * d).as_nanos(), ns * k);
    }
}
