//! A Kernel-Tuner-like GPU auto-tuner (§V-A2, Fig 8/Fig 10).
//!
//! The paper tunes the Tensor-Core Beamformer: 512 functionally
//! equivalent code variants (thread-block dimensions, fragments per
//! block/warp, double buffering, split-K) × 10 locked GPU clock
//! frequencies = 5120 configurations, each benchmarked for execution
//! time and energy. The headline result is that measuring energy with
//! PowerSensor3 takes the energy reading *during the normal timing
//! runs*, while on-board sensors (NVML at ~10 Hz) force each kernel to
//! be re-run continuously for about a second — stretching the whole
//! tuning session by 3.25×.
//!
//! * [`TunableParams`] / [`enumerate_params`] — the 512-variant space.
//! * [`BeamformerModel`] — an analytic performance model mapping a
//!   variant + clock to achieved TFLOP/s and power intensity.
//! * [`measure_with_powersensor`] / [`measure_with_onboard`] — the two
//!   measurement strategies with faithful time accounting.
//! * [`Tuner`] — sweeps the space, returns per-configuration records,
//!   the Pareto front, and total tuning time per strategy.

#![forbid(unsafe_code)]

mod model;
pub mod optimizer;
mod strategy;
mod tuner;

pub use model::{BeamformerModel, BeamformerProblem, KernelEstimate};
pub use optimizer::{hill_climb, neighbours, random_search, SearchResult};
pub use strategy::{
    measure_with_onboard, measure_with_powersensor, Measurement, MeasurementStrategy,
};
pub use tuner::{Tuner, TuningOutcome, TuningRecord};

/// One point in the tunable-parameter space (the paper's 512 variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TunableParams {
    /// Thread-block x dimension (warps): 2, 4, 8, 16.
    pub block_x: u32,
    /// Thread-block y dimension: 1, 2, 4, 8.
    pub block_y: u32,
    /// Matrix fragments per thread block: 1, 2, 4, 8.
    pub frags_block: u32,
    /// Fragments per warp: 1, 2.
    pub frags_warp: u32,
    /// Double buffering in shared memory.
    pub double_buffer: bool,
    /// Split-K factor: 1, 2.
    pub split_k: u32,
}

/// Enumerates all 512 code variants (4 × 4 × 4 × 2 × 2 × 2).
#[must_use]
pub fn enumerate_params() -> Vec<TunableParams> {
    let mut out = Vec::with_capacity(512);
    for &block_x in &[2u32, 4, 8, 16] {
        for &block_y in &[1u32, 2, 4, 8] {
            for &frags_block in &[1u32, 2, 4, 8] {
                for &frags_warp in &[1u32, 2] {
                    for &double_buffer in &[false, true] {
                        for &split_k in &[1u32, 2] {
                            out.push(TunableParams {
                                block_x,
                                block_y,
                                frags_block,
                                frags_warp,
                                double_buffer,
                                split_k,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

/// The locked-clock sweep for a GPU: 10 frequencies spanning the range
/// a performance model would pre-select (the paper narrows the range
/// before tuning, §V-A2).
#[must_use]
pub fn clock_range(boost_mhz: f64) -> Vec<f64> {
    (0..10)
        .map(|i| boost_mhz * (0.72 + 0.28 * f64::from(i) / 9.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_has_512_variants() {
        let params = enumerate_params();
        assert_eq!(params.len(), 512);
        let unique: std::collections::HashSet<_> = params.iter().collect();
        assert_eq!(unique.len(), 512);
    }

    #[test]
    fn clock_range_spans_and_ends_at_boost() {
        let clocks = clock_range(2580.0);
        assert_eq!(clocks.len(), 10);
        assert!((clocks[9] - 2580.0).abs() < 1e-9);
        assert!(clocks[0] > 0.7 * 2580.0);
        assert!(clocks.windows(2).all(|w| w[1] > w[0]));
    }
}
