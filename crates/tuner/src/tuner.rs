//! The sweep driver: benchmarks every configuration, collects records,
//! extracts the Pareto front, and accounts total tuning time.

use std::sync::Arc;

use parking_lot::Mutex;

use ps3_analysis::{pareto_front_indices, ParetoPoint};
use ps3_core::{PowerSensor, PowerSensorError};
use ps3_duts::{GpuModel, OnboardSensor};
use ps3_units::{SimDuration, SimTime};

use crate::model::BeamformerModel;
use crate::strategy::{measure_with_onboard, measure_with_powersensor};
use crate::{clock_range, enumerate_params, TunableParams};

/// One benchmarked configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningRecord {
    /// The code variant.
    pub params: TunableParams,
    /// Locked clock in MHz.
    pub clock_mhz: f64,
    /// Achieved throughput in TFLOP/s.
    pub tflops: f64,
    /// Measured kernel energy in joules.
    pub energy_j: f64,
    /// Energy efficiency in TFLOP/J.
    pub tflop_per_joule: f64,
    /// Kernel execution time in seconds.
    pub kernel_seconds: f64,
}

/// Result of a tuning session.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Strategy label (plot legend).
    pub strategy: &'static str,
    /// Every benchmarked configuration.
    pub records: Vec<TuningRecord>,
    /// Total wall-clock cost of the session.
    pub total_tuning_time: SimDuration,
}

impl TuningOutcome {
    /// Indices of Pareto-optimal records (maximising TFLOP/s and
    /// TFLOP/J).
    #[must_use]
    pub fn pareto_indices(&self) -> Vec<usize> {
        let pts: Vec<ParetoPoint> = self
            .records
            .iter()
            .map(|r| ParetoPoint::new(r.tflops, r.tflop_per_joule))
            .collect();
        pareto_front_indices(&pts)
    }

    /// The fastest configuration.
    #[must_use]
    pub fn fastest(&self) -> Option<&TuningRecord> {
        self.records
            .iter()
            .max_by(|a, b| a.tflops.partial_cmp(&b.tflops).expect("finite"))
    }

    /// The most energy-efficient configuration.
    #[must_use]
    pub fn most_efficient(&self) -> Option<&TuningRecord> {
        self.records.iter().max_by(|a, b| {
            a.tflop_per_joule
                .partial_cmp(&b.tflop_per_joule)
                .expect("finite")
        })
    }
}

/// The auto-tuner.
#[derive(Debug, Clone)]
pub struct Tuner {
    model: BeamformerModel,
    params: Vec<TunableParams>,
    clocks: Vec<f64>,
    /// Trials charged to the time ledger per configuration (paper: 7).
    pub accounted_trials: u32,
    /// Kernels actually simulated per configuration on the
    /// PowerSensor3 path (1 keeps big sweeps cheap; energies barely
    /// change with more).
    pub sim_trials: u32,
}

impl Tuner {
    /// A tuner over the full 512-variant × 10-clock space.
    #[must_use]
    pub fn new(model: BeamformerModel) -> Self {
        let clocks = clock_range(model.gpu().boost_mhz);
        Self {
            model,
            params: enumerate_params(),
            clocks,
            accounted_trials: 7,
            sim_trials: 1,
        }
    }

    /// Restricts the sweep (tests, smoke runs): every `stride`-th
    /// variant and `clock_stride`-th clock.
    #[must_use]
    pub fn subset(mut self, stride: usize, clock_stride: usize) -> Self {
        self.params = self.params.into_iter().step_by(stride.max(1)).collect();
        self.clocks = self
            .clocks
            .into_iter()
            .step_by(clock_stride.max(1))
            .collect();
        self
    }

    /// Splits the sweep into sub-tuners of at most `chunk_params`
    /// variants each (every chunk keeps the full clock list), in sweep
    /// order. Concatenating the chunks' records reproduces the record
    /// order of a single-tuner sweep, so a harness can run the chunks
    /// on independent testbeds — in parallel — and merge the outcomes.
    #[must_use]
    pub fn split(&self, chunk_params: usize) -> Vec<Tuner> {
        self.params
            .chunks(chunk_params.max(1))
            .map(|chunk| Tuner {
                model: self.model.clone(),
                params: chunk.to_vec(),
                clocks: self.clocks.clone(),
                accounted_trials: self.accounted_trials,
                sim_trials: self.sim_trials,
            })
            .collect()
    }

    /// Number of configurations in the sweep.
    #[must_use]
    pub fn configurations(&self) -> usize {
        self.params.len() * self.clocks.len()
    }

    /// The performance model.
    #[must_use]
    pub fn model(&self) -> &BeamformerModel {
        &self.model
    }

    /// Runs the sweep measuring energy with PowerSensor3.
    ///
    /// # Errors
    ///
    /// Propagates host-library failures.
    pub fn run_with_powersensor(
        &self,
        gpu: &Arc<Mutex<GpuModel>>,
        ps: &PowerSensor,
        advance: &mut dyn FnMut(SimDuration),
    ) -> Result<TuningOutcome, PowerSensorError> {
        let mut records = Vec::with_capacity(self.configurations());
        let mut total = SimDuration::ZERO;
        let flops_t = self.model.problem().flops() / 1e12;
        for p in &self.params {
            for &clock in &self.clocks {
                let est = self.model.estimate(p, clock);
                let m = measure_with_powersensor(
                    gpu,
                    ps,
                    advance,
                    &est,
                    clock,
                    self.sim_trials,
                    self.accounted_trials,
                )?;
                total += m.tuning_cost;
                records.push(TuningRecord {
                    params: *p,
                    clock_mhz: clock,
                    tflops: flops_t / m.kernel_seconds,
                    energy_j: m.energy_j,
                    tflop_per_joule: flops_t / m.energy_j,
                    kernel_seconds: m.kernel_seconds,
                });
            }
        }
        Ok(TuningOutcome {
            strategy: "PowerSensor3",
            records,
            total_tuning_time: total,
        })
    }

    /// Runs the sweep measuring energy with an on-board sensor
    /// (extended kernel runs; no testbed needed).
    pub fn run_with_onboard(
        &self,
        gpu: &Arc<Mutex<GpuModel>>,
        sensor: &mut dyn OnboardSensor,
    ) -> TuningOutcome {
        let mut records = Vec::with_capacity(self.configurations());
        let mut total = SimDuration::ZERO;
        let mut cursor = SimTime::ZERO;
        let flops_t = self.model.problem().flops() / 1e12;
        for p in &self.params {
            for &clock in &self.clocks {
                let est = self.model.estimate(p, clock);
                let m = measure_with_onboard(
                    gpu,
                    sensor,
                    &mut cursor,
                    &est,
                    clock,
                    self.accounted_trials,
                );
                total += m.tuning_cost;
                records.push(TuningRecord {
                    params: *p,
                    clock_mhz: clock,
                    tflops: flops_t / m.kernel_seconds,
                    energy_j: m.energy_j,
                    tflop_per_joule: flops_t / m.energy_j,
                    kernel_seconds: m.kernel_seconds,
                });
            }
        }
        TuningOutcome {
            strategy: "on-board sensor",
            records,
            total_tuning_time: total,
        }
    }

    /// Pure time accounting of a full session for both strategies —
    /// the 3.25× headline without simulating every kernel (used by the
    /// figure harness to report the full-space numbers cheaply).
    #[must_use]
    pub fn predicted_session_times(&self) -> (SimDuration, SimDuration) {
        let mut ps3 = SimDuration::ZERO;
        let mut onboard = SimDuration::ZERO;
        for p in &self.params {
            for &clock in &self.clocks {
                let est = self.model.estimate(p, clock);
                let wall = est.duration + SimDuration::from_micros(150) * u64::from(est.waves);
                let per_trial = wall + SimDuration::from_millis(1);
                ps3 += crate::strategy::COMPILE_OVERHEAD
                    + per_trial * u64::from(self.accounted_trials);
                let window = SimDuration::from_secs(1).max(wall);
                onboard += crate::strategy::COMPILE_OVERHEAD
                    + per_trial * u64::from(self.accounted_trials)
                    + window;
            }
        }
        (ps3, onboard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BeamformerProblem;
    use ps3_duts::{GpuSpec, NvmlSensor};

    fn tuner() -> Tuner {
        let model = BeamformerModel::new(GpuSpec::rtx4000_ada(), BeamformerProblem::paper());
        Tuner::new(model)
    }

    #[test]
    fn full_space_is_5120() {
        assert_eq!(tuner().configurations(), 5120);
    }

    #[test]
    fn predicted_session_times_match_paper_ratio() {
        let (ps3, onboard) = tuner().predicted_session_times();
        let ratio = onboard.as_secs_f64() / ps3.as_secs_f64();
        // The paper reports 2274 s vs 7394 s → 3.25×.
        assert!(
            (ratio - 3.25).abs() < 0.6,
            "ratio {ratio}, ps3 {ps3}, onboard {onboard}"
        );
        assert!(
            (ps3.as_secs_f64() - 2274.0).abs() < 500.0,
            "ps3 session {ps3}"
        );
        assert!(
            (onboard.as_secs_f64() - 7394.0).abs() < 1200.0,
            "onboard session {onboard}"
        );
    }

    #[test]
    fn onboard_sweep_produces_sane_records() {
        let t = tuner().subset(64, 5); // 8 variants × 2 clocks
        let gpu = Arc::new(Mutex::new(GpuModel::new(GpuSpec::rtx4000_ada(), 41)));
        let mut sensor = NvmlSensor::instantaneous(Arc::clone(&gpu));
        let out = t.run_with_onboard(&gpu, &mut sensor);
        assert_eq!(out.records.len(), 16);
        for r in &out.records {
            assert!(r.tflops > 5.0 && r.tflops < 100.0, "tflops {}", r.tflops);
            assert!(
                r.tflop_per_joule > 0.1 && r.tflop_per_joule < 2.0,
                "eff {}",
                r.tflop_per_joule
            );
        }
        let fastest = out.fastest().unwrap();
        let efficient = out.most_efficient().unwrap();
        assert!(fastest.tflops >= efficient.tflops);
        assert!(efficient.tflop_per_joule >= fastest.tflop_per_joule);
    }

    #[test]
    fn split_preserves_sweep_order() {
        let t = tuner().subset(64, 5); // 8 variants × 2 clocks
        let chunks = t.split(3); // 3 + 3 + 2 variants
        assert_eq!(chunks.len(), 3);
        assert_eq!(
            chunks.iter().map(Tuner::configurations).sum::<usize>(),
            t.configurations()
        );
        // Each chunk on its own identically-seeded GPU visits the same
        // configurations, in the same order, as one contiguous sweep.
        let run = |t: &Tuner| {
            let gpu = Arc::new(Mutex::new(GpuModel::new(GpuSpec::rtx4000_ada(), 41)));
            let mut sensor = NvmlSensor::instantaneous(Arc::clone(&gpu));
            t.run_with_onboard(&gpu, &mut sensor).records
        };
        let whole = run(&t);
        let merged: Vec<_> = chunks.iter().flat_map(&run).collect();
        assert_eq!(whole.len(), merged.len());
        for (a, b) in whole.iter().zip(&merged) {
            assert_eq!(a.params, b.params);
            assert!((a.clock_mhz - b.clock_mhz).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn pareto_front_nonempty_and_valid() {
        let t = tuner().subset(32, 3);
        let gpu = Arc::new(Mutex::new(GpuModel::new(GpuSpec::rtx4000_ada(), 43)));
        let mut sensor = NvmlSensor::instantaneous(Arc::clone(&gpu));
        let out = t.run_with_onboard(&gpu, &mut sensor);
        let front = out.pareto_indices();
        assert!(!front.is_empty());
        // The fastest and most-efficient records are always on the front.
        let fastest_idx = out
            .records
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.tflops.partial_cmp(&b.1.tflops).unwrap())
            .unwrap()
            .0;
        assert!(front.contains(&fastest_idx));
    }
}
