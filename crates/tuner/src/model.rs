//! Analytic performance model of the Tensor-Core Beamformer kernel.
//!
//! Maps a code variant + locked clock to achieved TFLOP/s and a power
//! intensity, with enough structure (interactions between tile shape,
//! fragment counts and double buffering) that the tuning landscape has
//! a realistic spread and the energy/performance trade-off of Fig 8
//! emerges from the GPU power model.

use ps3_duts::GpuSpec;
use ps3_units::SimDuration;

use crate::TunableParams;

/// The beamforming problem size (the paper uses M = N = K = 4096 with
/// 16-bit complex samples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamformerProblem {
    /// Number of beams.
    pub m: u64,
    /// Number of samples.
    pub n: u64,
    /// Number of elements summed.
    pub k: u64,
}

impl BeamformerProblem {
    /// The paper's configuration: 4096³.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            m: 4096,
            n: 4096,
            k: 4096,
        }
    }

    /// Total floating-point operations: a complex multiply-accumulate
    /// is 8 real FLOPs.
    #[must_use]
    pub fn flops(&self) -> f64 {
        8.0 * self.m as f64 * self.n as f64 * self.k as f64
    }
}

/// What the model predicts for one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelEstimate {
    /// Achieved compute throughput in TFLOP/s.
    pub tflops: f64,
    /// Kernel execution time for the problem.
    pub duration: SimDuration,
    /// Power intensity (GPU utilisation equivalent, 0–1).
    pub utilization: f64,
    /// Number of sequential waves the launch decomposes into.
    pub waves: u32,
}

/// The performance model.
#[derive(Debug, Clone)]
pub struct BeamformerModel {
    gpu: GpuSpec,
    problem: BeamformerProblem,
}

impl BeamformerModel {
    /// A model of the beamformer on `gpu`.
    #[must_use]
    pub fn new(gpu: GpuSpec, problem: BeamformerProblem) -> Self {
        Self { gpu, problem }
    }

    /// The GPU this model targets.
    #[must_use]
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// The problem size.
    #[must_use]
    pub fn problem(&self) -> BeamformerProblem {
        self.problem
    }

    /// Fraction of peak the variant achieves at boost clock (0–1).
    #[must_use]
    pub fn efficiency(&self, p: &TunableParams) -> f64 {
        // Tile shape: large-ish, squarish tiles feed the tensor cores
        // best; tiny tiles starve them, huge ones spill registers.
        let tile_score = match (p.block_x, p.block_y) {
            (8, 4) => 1.00,
            (8, 2) | (4, 4) => 0.96,
            (16, 2) | (8, 8) => 0.92,
            (4, 2) | (16, 4) => 0.88,
            (4, 8) | (2, 4) => 0.82,
            (16, 8) => 0.78,
            (2, 2) | (4, 1) => 0.72,
            (16, 1) | (2, 8) => 0.66,
            (8, 1) => 0.70,
            (2, 1) => 0.55,
            _ => 0.60,
        };
        // Fragments per block: more fragments → better reuse, until
        // occupancy collapses (interacting with block size).
        let frag_score = match p.frags_block {
            1 => 0.78,
            2 => 0.90,
            4 => 1.00,
            8 => {
                if p.block_x * p.block_y >= 64 {
                    0.84 // register pressure at big blocks
                } else {
                    0.97
                }
            }
            _ => 0.70,
        };
        let warp_score = if p.frags_warp == 2 { 1.0 } else { 0.93 };
        // Double buffering hides latency, most valuable with few
        // fragments in flight.
        let buffer_score = if p.double_buffer {
            if p.frags_block <= 2 {
                1.06
            } else {
                1.02
            }
        } else {
            1.0
        };
        // Split-K helps only when parallelism is scarce.
        let split_score = if p.split_k == 2 {
            if p.block_x * p.block_y <= 8 {
                1.04
            } else {
                0.94
            }
        } else {
            1.0
        };
        // Deterministic per-variant jitter (compilers are fickle).
        let jitter = 0.96 + 0.08 * hash_unit(p);
        (tile_score * frag_score * warp_score * buffer_score * split_score * jitter).min(0.88)
    }

    /// How strongly performance scales with clock (1 = fully
    /// compute-bound). Memory-latency-bound variants scale weaker.
    #[must_use]
    pub fn clock_exponent(&self, p: &TunableParams) -> f64 {
        let mut alpha: f64 = 0.95;
        if !p.double_buffer {
            alpha -= 0.12; // latency-bound without prefetching
        }
        if p.frags_block == 1 {
            alpha -= 0.10;
        }
        alpha.clamp(0.6, 1.0)
    }

    /// Predicts throughput/time/power intensity for a variant at a
    /// locked clock (MHz).
    #[must_use]
    pub fn estimate(&self, p: &TunableParams, clock_mhz: f64) -> KernelEstimate {
        let e = self.efficiency(p);
        let alpha = self.clock_exponent(p);
        let rel_clock = (clock_mhz / self.gpu.boost_mhz).clamp(0.05, 1.0);
        let tflops = self.gpu.peak_tflops * e * rel_clock.powf(alpha);
        let seconds = self.problem.flops() / (tflops * 1e12);
        // Power intensity: efficient variants keep the tensor cores and
        // memory system busier.
        let utilization = (0.62 + 0.33 * e).min(0.95);
        // The y-dimension executes in sequential waves.
        let waves = (self.problem.n / 1024).max(1) as u32;
        KernelEstimate {
            tflops,
            duration: SimDuration::from_secs_f64(seconds),
            utilization,
            waves,
        }
    }
}

/// Deterministic hash of a variant to a unit float.
fn hash_unit(p: &TunableParams) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [
        u64::from(p.block_x),
        u64::from(p.block_y),
        u64::from(p.frags_block),
        u64::from(p.frags_warp),
        u64::from(p.double_buffer),
        u64::from(p.split_k),
    ] {
        h ^= v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate_params;
    use ps3_duts::GpuSpec;

    fn model() -> BeamformerModel {
        BeamformerModel::new(GpuSpec::rtx4000_ada(), BeamformerProblem::paper())
    }

    #[test]
    fn flops_of_paper_problem() {
        let f = BeamformerProblem::paper().flops();
        assert!((f - 8.0 * 4096f64.powi(3)).abs() < 1.0);
    }

    #[test]
    fn best_variant_close_to_paper_throughput() {
        let m = model();
        let best = enumerate_params()
            .iter()
            .map(|p| m.estimate(p, 2580.0).tflops)
            .fold(0.0, f64::max);
        // The paper's fastest configuration reaches 80.4 TFLOP/s.
        assert!(
            (best - 80.4).abs() < 6.0,
            "best throughput {best} TFLOP/s, expected ≈80"
        );
    }

    #[test]
    fn efficiency_spread_is_wide() {
        let m = model();
        let effs: Vec<f64> = enumerate_params().iter().map(|p| m.efficiency(p)).collect();
        let min = effs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = effs.iter().cloned().fold(0.0, f64::max);
        assert!(max <= 0.88);
        assert!(min < 0.5 * max, "bad variants exist: min {min}, max {max}");
    }

    #[test]
    fn estimates_are_deterministic() {
        let m = model();
        let p = enumerate_params()[137];
        assert_eq!(m.estimate(&p, 2000.0), m.estimate(&p, 2000.0));
    }

    #[test]
    fn lower_clock_is_slower() {
        let m = model();
        let p = enumerate_params()[0];
        let fast = m.estimate(&p, 2580.0);
        let slow = m.estimate(&p, 1900.0);
        assert!(slow.tflops < fast.tflops);
        assert!(slow.duration > fast.duration);
    }

    #[test]
    fn double_buffering_raises_clock_sensitivity() {
        let m = model();
        let with = TunableParams {
            block_x: 8,
            block_y: 4,
            frags_block: 4,
            frags_warp: 2,
            double_buffer: true,
            split_k: 1,
        };
        let without = TunableParams {
            double_buffer: false,
            ..with
        };
        assert!(m.clock_exponent(&with) > m.clock_exponent(&without));
    }

    #[test]
    fn kernel_duration_in_expected_range() {
        // ~0.55 PFLOP at ~80 TFLOP/s → ~7 ms.
        let m = model();
        let best = enumerate_params()
            .iter()
            .map(|p| m.estimate(p, 2580.0))
            .min_by(|a, b| a.duration.cmp(&b.duration))
            .unwrap();
        let ms = best.duration.as_secs_f64() * 1e3;
        assert!((4.0..12.0).contains(&ms), "duration {ms} ms");
    }
}
