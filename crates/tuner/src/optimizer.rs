//! Search strategies beyond the exhaustive sweep.
//!
//! Kernel Tuner ships several optimisers because full search spaces
//! (here 5120 configurations) can be expensive to benchmark; with
//! on-board sensors at ~1.5 s per configuration that is hours. This
//! module provides the two classic alternatives — random sampling and
//! restarted greedy hill climbing over the neighbourhood graph of the
//! tunable parameters — generic over any objective (TFLOP/s, TFLOP/J,
//! or a measured quantity).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::TunableParams;

/// Outcome of a guided search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// Best configuration found.
    pub params: TunableParams,
    /// Clock paired with it.
    pub clock_mhz: f64,
    /// Objective value at the best point.
    pub score: f64,
    /// Number of objective evaluations spent.
    pub evaluations: usize,
}

/// Evaluates `budget` uniformly random configurations and returns the
/// best (ties broken by first occurrence).
///
/// # Panics
///
/// Panics if `space` or `clocks` is empty or `budget` is zero.
pub fn random_search<F>(
    space: &[TunableParams],
    clocks: &[f64],
    budget: usize,
    seed: u64,
    mut objective: F,
) -> SearchResult
where
    F: FnMut(&TunableParams, f64) -> f64,
{
    assert!(
        !space.is_empty() && !clocks.is_empty(),
        "empty search space"
    );
    assert!(budget > 0, "zero budget");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<SearchResult> = None;
    for _ in 0..budget {
        let p = space[rng.gen_range(0..space.len())];
        let clock = clocks[rng.gen_range(0..clocks.len())];
        let score = objective(&p, clock);
        if best.is_none_or(|b| score > b.score) {
            best = Some(SearchResult {
                params: p,
                clock_mhz: clock,
                score,
                evaluations: 0,
            });
        }
    }
    let mut result = best.expect("budget > 0");
    result.evaluations = budget;
    result
}

/// All single-parameter neighbours of a configuration (one tunable
/// moved one notch).
#[must_use]
pub fn neighbours(p: &TunableParams) -> Vec<TunableParams> {
    fn step(values: &[u32], current: u32) -> Vec<u32> {
        let idx = values.iter().position(|&v| v == current).unwrap_or(0);
        let mut out = Vec::new();
        if idx > 0 {
            out.push(values[idx - 1]);
        }
        if idx + 1 < values.len() {
            out.push(values[idx + 1]);
        }
        out
    }
    let mut out = Vec::new();
    for bx in step(&[2, 4, 8, 16], p.block_x) {
        out.push(TunableParams { block_x: bx, ..*p });
    }
    for by in step(&[1, 2, 4, 8], p.block_y) {
        out.push(TunableParams { block_y: by, ..*p });
    }
    for fb in step(&[1, 2, 4, 8], p.frags_block) {
        out.push(TunableParams {
            frags_block: fb,
            ..*p
        });
    }
    for fw in step(&[1, 2], p.frags_warp) {
        out.push(TunableParams {
            frags_warp: fw,
            ..*p
        });
    }
    out.push(TunableParams {
        double_buffer: !p.double_buffer,
        ..*p
    });
    for sk in step(&[1, 2], p.split_k) {
        out.push(TunableParams { split_k: sk, ..*p });
    }
    out
}

/// Restarted greedy hill climbing: from each random start, repeatedly
/// moves to the best-scoring neighbour (over parameters *and* adjacent
/// clocks) until no neighbour improves. Stops early when the
/// evaluation budget runs out.
///
/// # Panics
///
/// Panics if `space`/`clocks` is empty or `starts`/`budget` is zero.
pub fn hill_climb<F>(
    space: &[TunableParams],
    clocks: &[f64],
    starts: usize,
    budget: usize,
    seed: u64,
    mut objective: F,
) -> SearchResult
where
    F: FnMut(&TunableParams, f64) -> f64,
{
    assert!(
        !space.is_empty() && !clocks.is_empty(),
        "empty search space"
    );
    assert!(starts > 0 && budget > 0, "zero starts/budget");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut spent = 0usize;
    let mut best: Option<SearchResult> = None;
    let mut shuffled = space.to_vec();
    shuffled.shuffle(&mut rng);

    'starts: for start in shuffled.into_iter().take(starts) {
        let mut here = start;
        let mut clock_idx = rng.gen_range(0..clocks.len());
        if spent >= budget {
            break;
        }
        let mut here_score = objective(&here, clocks[clock_idx]);
        spent += 1;
        loop {
            // Candidate moves: parameter neighbours at this clock, plus
            // the two adjacent clocks at these parameters.
            let mut candidates: Vec<(TunableParams, usize)> = neighbours(&here)
                .into_iter()
                .map(|p| (p, clock_idx))
                .collect();
            if clock_idx > 0 {
                candidates.push((here, clock_idx - 1));
            }
            if clock_idx + 1 < clocks.len() {
                candidates.push((here, clock_idx + 1));
            }
            let mut improved = false;
            for (p, ci) in candidates {
                if spent >= budget {
                    update_best(&mut best, here, clocks[clock_idx], here_score, spent);
                    break 'starts;
                }
                let score = objective(&p, clocks[ci]);
                spent += 1;
                if score > here_score {
                    here = p;
                    clock_idx = ci;
                    here_score = score;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        update_best(&mut best, here, clocks[clock_idx], here_score, spent);
    }
    let mut result = best.expect("at least one start evaluated");
    result.evaluations = spent;
    result
}

fn update_best(
    best: &mut Option<SearchResult>,
    params: TunableParams,
    clock_mhz: f64,
    score: f64,
    evaluations: usize,
) {
    if best.is_none_or(|b| score > b.score) {
        *best = Some(SearchResult {
            params,
            clock_mhz,
            score,
            evaluations,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BeamformerModel, BeamformerProblem};
    use crate::{clock_range, enumerate_params};
    use ps3_duts::GpuSpec;

    fn model() -> BeamformerModel {
        BeamformerModel::new(GpuSpec::rtx4000_ada(), BeamformerProblem::paper())
    }

    fn exhaustive_best_tflops() -> f64 {
        let m = model();
        let clocks = clock_range(2580.0);
        let mut best: f64 = 0.0;
        for p in enumerate_params() {
            for &c in &clocks {
                best = best.max(m.estimate(&p, c).tflops);
            }
        }
        best
    }

    #[test]
    fn neighbours_differ_in_exactly_one_field() {
        let p = enumerate_params()[200];
        for n in neighbours(&p) {
            let diffs = usize::from(n.block_x != p.block_x)
                + usize::from(n.block_y != p.block_y)
                + usize::from(n.frags_block != p.frags_block)
                + usize::from(n.frags_warp != p.frags_warp)
                + usize::from(n.double_buffer != p.double_buffer)
                + usize::from(n.split_k != p.split_k);
            assert_eq!(diffs, 1, "{n:?} vs {p:?}");
        }
    }

    #[test]
    fn interior_point_has_full_neighbourhood() {
        let p = TunableParams {
            block_x: 4,
            block_y: 2,
            frags_block: 2,
            frags_warp: 1,
            double_buffer: false,
            split_k: 1,
        };
        // 2+2+2+1+1+1 = 9 neighbours.
        assert_eq!(neighbours(&p).len(), 9);
    }

    #[test]
    fn random_search_finds_a_decent_config() {
        let m = model();
        let clocks = clock_range(2580.0);
        let result = random_search(&enumerate_params(), &clocks, 200, 7, |p, c| {
            m.estimate(p, c).tflops
        });
        assert_eq!(result.evaluations, 200);
        // 200 of 5120 samples should land within 15 % of the optimum.
        assert!(
            result.score > 0.85 * exhaustive_best_tflops(),
            "random search found only {:.1}",
            result.score
        );
    }

    #[test]
    fn hill_climb_beats_random_at_equal_budget() {
        let m = model();
        let clocks = clock_range(2580.0);
        let budget = 150;
        let random = random_search(&enumerate_params(), &clocks, budget, 3, |p, c| {
            m.estimate(p, c).tflops
        });
        let climbed = hill_climb(&enumerate_params(), &clocks, 4, budget, 3, |p, c| {
            m.estimate(p, c).tflops
        });
        assert!(climbed.evaluations <= budget);
        assert!(
            climbed.score >= random.score * 0.98,
            "hill climb {:.1} vs random {:.1}",
            climbed.score,
            random.score
        );
        // And lands close to the global optimum.
        assert!(climbed.score > 0.9 * exhaustive_best_tflops());
    }

    #[test]
    fn hill_climb_on_efficiency_prefers_lower_clocks() {
        let m = model();
        let clocks = clock_range(2580.0);
        let spec = GpuSpec::rtx4000_ada();
        let eff = hill_climb(&enumerate_params(), &clocks, 4, 400, 11, |p, c| {
            let est = m.estimate(p, c);
            let power = spec.power_at(
                c.min(spec.sustained_clock(est.utilization)),
                est.utilization,
            );
            est.tflops / power // TFLOP/J
        });
        let fast = hill_climb(&enumerate_params(), &clocks, 4, 400, 11, |p, c| {
            m.estimate(p, c).tflops
        });
        assert!(
            eff.clock_mhz < fast.clock_mhz,
            "efficiency optimum {} MHz should sit below performance optimum {} MHz",
            eff.clock_mhz,
            fast.clock_mhz
        );
    }
}
