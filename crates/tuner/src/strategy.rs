//! The two energy-measurement strategies and their time accounting.
//!
//! *PowerSensor3*: energy is captured during the normal timing runs —
//! two host-library `State`s bracket each kernel (§V-A2: "instant
//! capturing of the energy consumption of GPU kernels").
//!
//! *On-board*: the built-in sensor refreshes every ~100 ms, so Kernel
//! Tuner must re-run the kernel continuously for about a second per
//! configuration to collect enough sensor updates — the overhead that
//! stretches tuning sessions by hours.

use std::sync::Arc;

use parking_lot::Mutex;

use ps3_core::{joules, PowerSensor, PowerSensorError};
use ps3_duts::{GpuKernel, GpuModel, OnboardSensor};
use ps3_units::{SimDuration, SimTime};

use crate::model::KernelEstimate;

/// Which strategy produced a measurement (for labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasurementStrategy {
    /// External PowerSensor3 through the host library.
    PowerSensor3,
    /// Built-in (vendor) sensor with extended kernel runs.
    Onboard,
}

/// Result of measuring one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Measured kernel execution time in seconds (including inter-wave
    /// gaps).
    pub kernel_seconds: f64,
    /// Measured energy of one kernel execution in joules.
    pub energy_j: f64,
    /// Wall-clock time this configuration cost the tuning session
    /// (compilation + benchmarking + any extended energy runs).
    pub tuning_cost: SimDuration,
}

/// Compilation + setup overhead charged per configuration.
pub const COMPILE_OVERHEAD: SimDuration = SimDuration::from_millis(390);

/// Per-trial launch/transfer overhead.
const LAUNCH_OVERHEAD: SimDuration = SimDuration::from_millis(1);

/// Inter-wave scheduling gap used for tuner launches.
const WAVE_GAP: SimDuration = SimDuration::from_micros(150);

/// Minimum continuous run needed for the on-board sensor to deliver a
/// usable energy estimate (~10 refreshes at 10 Hz).
const ONBOARD_WINDOW: SimDuration = SimDuration::from_secs(1);

/// Builds the launch parameters for an estimate at a locked clock and
/// returns `(kernel, actual_total_duration)`.
fn plan_launch(
    gpu: &Arc<Mutex<GpuModel>>,
    est: &KernelEstimate,
    clock_mhz: f64,
    repeats: u32,
) -> (GpuKernel, SimDuration) {
    let spec = gpu.lock().spec().clone();
    // The power limit may hold the clock below the requested lock.
    let actual_clock = clock_mhz.min(spec.sustained_clock(est.utilization));
    // Wave durations are specified at boost clock; scale so the actual
    // execution time at `actual_clock` matches the estimate's duration
    // (the estimate already includes the clock's performance effect).
    let total_boost_s = est.duration.as_secs_f64() * (actual_clock / spec.boost_mhz);
    let waves = est.waves.max(1) * repeats;
    let kernel = GpuKernel {
        waves,
        wave_duration: SimDuration::from_secs_f64(
            total_boost_s * f64::from(repeats) / f64::from(waves),
        ),
        gap: WAVE_GAP,
        utilization: est.utilization,
    };
    let wall =
        est.duration.as_secs_f64() * f64::from(repeats) + f64::from(waves) * WAVE_GAP.as_secs_f64();
    (kernel, SimDuration::from_secs_f64(wall))
}

/// Measures one configuration with PowerSensor3 through the testbed.
///
/// `advance` must advance the testbed and synchronise the host (e.g.
/// `|d| testbed.advance_and_sync(&ps, d).unwrap()`). `sim_trials`
/// kernels are actually simulated (their energies averaged);
/// `accounted_trials` is what the tuning-time ledger charges (the
/// paper uses 7 trials — simulating fewer keeps the simulation cheap
/// without changing the statistics materially).
///
/// # Errors
///
/// Propagates host-library failures.
pub fn measure_with_powersensor(
    gpu: &Arc<Mutex<GpuModel>>,
    ps: &PowerSensor,
    advance: &mut dyn FnMut(SimDuration),
    est: &KernelEstimate,
    clock_mhz: f64,
    sim_trials: u32,
    accounted_trials: u32,
) -> Result<Measurement, PowerSensorError> {
    gpu.lock().set_locked_clock(Some(clock_mhz));
    let (kernel, wall) = plan_launch(gpu, est, clock_mhz, 1);
    let mut energies = Vec::with_capacity(sim_trials as usize);
    for _ in 0..sim_trials.max(1) {
        let first = ps.read();
        gpu.lock().launch(kernel);
        advance(wall + SimDuration::from_micros(200));
        let second = ps.read();
        energies.push(joules(&first, &second).value());
    }
    gpu.lock().set_locked_clock(None);
    let energy_j = energies.iter().sum::<f64>() / energies.len() as f64;
    let per_trial = wall + LAUNCH_OVERHEAD;
    let tuning_cost = COMPILE_OVERHEAD + per_trial * u64::from(accounted_trials);
    Ok(Measurement {
        kernel_seconds: wall.as_secs_f64(),
        energy_j,
        tuning_cost,
    })
}

/// Measures one configuration with an on-board sensor: timing runs
/// first, then a continuous ~1 s run polled at the sensor's own rate.
///
/// `cursor` is the strategy's private GPU timeline; it advances past
/// the extended run and is reused for the next configuration.
pub fn measure_with_onboard(
    gpu: &Arc<Mutex<GpuModel>>,
    sensor: &mut dyn OnboardSensor,
    cursor: &mut SimTime,
    est: &KernelEstimate,
    clock_mhz: f64,
    accounted_trials: u32,
) -> Measurement {
    gpu.lock().set_locked_clock(Some(clock_mhz));
    let (_, single_wall) = plan_launch(gpu, est, clock_mhz, 1);

    // Extended energy run: repeat the kernel until the window is full.
    let repeats = (ONBOARD_WINDOW.as_nanos() / single_wall.as_nanos().max(1) + 1) as u32;
    let (kernel, wall) = plan_launch(gpu, est, clock_mhz, repeats);
    gpu.lock().launch(kernel);
    let start = *cursor;
    let end = start + wall;
    let mut sum = 0.0;
    let mut count = 0u32;
    let step = sensor.update_interval();
    let mut t = start;
    while t < end {
        t += step;
        sum += sensor.read(t).power.value();
        count += 1;
    }
    gpu.lock().set_locked_clock(None);
    // Let the GPU drain back to idle before the next configuration.
    *cursor = end + SimDuration::from_millis(50);
    let mean_power = sum / f64::from(count.max(1));
    let energy_j = mean_power * single_wall.as_secs_f64();

    let timing_runs = (single_wall + LAUNCH_OVERHEAD) * u64::from(accounted_trials);
    let tuning_cost = COMPILE_OVERHEAD + timing_runs + wall.max(ONBOARD_WINDOW);
    Measurement {
        kernel_seconds: single_wall.as_secs_f64(),
        energy_j,
        tuning_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BeamformerModel, BeamformerProblem};
    use crate::TunableParams;
    use ps3_duts::{GpuSpec, NvmlSensor};

    fn setup() -> (Arc<Mutex<GpuModel>>, KernelEstimate) {
        let gpu = Arc::new(Mutex::new(GpuModel::new(GpuSpec::rtx4000_ada(), 31)));
        let model = BeamformerModel::new(GpuSpec::rtx4000_ada(), BeamformerProblem::paper());
        let p = TunableParams {
            block_x: 8,
            block_y: 4,
            frags_block: 4,
            frags_warp: 2,
            double_buffer: true,
            split_k: 1,
        };
        let est = model.estimate(&p, 2580.0);
        (gpu, est)
    }

    #[test]
    fn onboard_measurement_costs_at_least_a_second() {
        let (gpu, est) = setup();
        let mut sensor = NvmlSensor::instantaneous(Arc::clone(&gpu));
        let mut cursor = SimTime::ZERO;
        let m = measure_with_onboard(&gpu, &mut sensor, &mut cursor, &est, 2580.0, 7);
        assert!(m.tuning_cost >= ONBOARD_WINDOW + COMPILE_OVERHEAD);
        // Energy of a ~7 ms kernel at ~125 W ≈ 0.9 J.
        assert!(
            m.energy_j > 0.3 && m.energy_j < 3.0,
            "energy {}",
            m.energy_j
        );
        assert!(cursor > SimTime::ZERO);
    }

    #[test]
    fn onboard_cost_dwarfs_kernel_time() {
        let (gpu, est) = setup();
        let mut sensor = NvmlSensor::instantaneous(Arc::clone(&gpu));
        let mut cursor = SimTime::ZERO;
        let m = measure_with_onboard(&gpu, &mut sensor, &mut cursor, &est, 2580.0, 7);
        assert!(m.tuning_cost.as_secs_f64() > 100.0 * m.kernel_seconds);
    }

    #[test]
    fn plan_launch_preserves_duration() {
        let (gpu, est) = setup();
        let (_, wall) = plan_launch(&gpu, &est, 2580.0, 1);
        // Wall = duration + wave gaps; gaps are small.
        let d = est.duration.as_secs_f64();
        let w = wall.as_secs_f64();
        assert!(w >= d && w < d * 1.2, "wall {w} vs duration {d}");
    }
}
