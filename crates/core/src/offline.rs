//! Offline decoding of raw sensor-stream captures.
//!
//! A recorded byte stream (e.g. from
//! [`RecordingTransport`](ps3_transport::RecordingTransport), a logic
//! analyser on the real USB wire, or a file) can be decoded into a
//! trace without a device attached. The decoding pipeline mirrors the
//! live reader thread: framing-bit resynchronisation, timestamp
//! unwrapping, per-pair conversion through the sensor configuration,
//! and left-Riemann energy integration.

use ps3_analysis::Trace;
use ps3_firmware::protocol::{Packet, StreamDecoder, TimestampUnwrapper};
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_sensors::AdcSpec;
use ps3_units::{Joules, SimDuration, SimTime, Watts};

use crate::state::SENSOR_PAIRS;

/// Result of decoding a capture.
#[derive(Debug, Clone)]
pub struct OfflineDecode {
    /// Total power over time. Markers carry the labels supplied to
    /// [`decode_stream_with_labels`], or the placeholder `'?'` (the
    /// wire carries only the marker bit — labels live host-side).
    pub total: Trace,
    /// Per-pair power traces (enabled pairs only, in pair order).
    pub pairs: Vec<(usize, Trace)>,
    /// Total energy by frame integration.
    pub energy: Joules,
    /// Complete frames decoded.
    pub frames: u64,
    /// Framing resynchronisations the decoder needed (0 for a clean
    /// capture).
    pub resyncs: u64,
}

/// Decodes a raw device→host byte capture using the sensor
/// configuration that was active when it was recorded.
///
/// Incomplete frames (e.g. a capture cut mid-frame) are dropped;
/// corrupted bytes cost at most the frame they occur in. Markers get
/// the placeholder label `'?'`; use
/// [`decode_stream_with_labels`] to restore the host-side labels from
/// a sidecar.
#[must_use]
pub fn decode_stream(bytes: &[u8], configs: &[SensorConfig; SENSOR_SLOTS]) -> OfflineDecode {
    decode_stream_with_labels(bytes, configs, &[])
}

/// Decodes a capture like [`decode_stream`], restoring marker labels
/// from a host-side sidecar (see [`write_label_sidecar`]).
///
/// The wire protocol carries only a marker *bit*; the labels live on
/// the host. `labels` is consumed in marker order — the first marked
/// frame gets `labels[0]` and so on, falling back to `'?'` once the
/// list is exhausted (mirroring the live reader when `mark` labels run
/// out).
#[must_use]
pub fn decode_stream_with_labels(
    bytes: &[u8],
    configs: &[SensorConfig; SENSOR_SLOTS],
    labels: &[char],
) -> OfflineDecode {
    let adc = AdcSpec::POWERSENSOR3;
    let mut decoder = StreamDecoder::new();
    let mut unwrapper = TimestampUnwrapper::new();
    let mut total = Trace::new();
    let enabled_pairs: Vec<usize> = (0..SENSOR_PAIRS)
        .filter(|&p| configs[2 * p].enabled && configs[2 * p + 1].enabled)
        .collect();
    let mut pairs: Vec<(usize, Trace)> = enabled_pairs.iter().map(|&p| (p, Trace::new())).collect();
    let mut energy = Joules::zero();
    let mut frames = 0u64;
    let mut next_label = labels.iter().copied();

    let mut frame_time: Option<SimTime> = None;
    let mut prev_time: Option<SimTime> = None;
    let mut values: [Option<u16>; SENSOR_SLOTS] = [None; SENSOR_SLOTS];
    let mut marker = false;

    let mut finalize = |time: SimTime,
                        values: &[Option<u16>; SENSOR_SLOTS],
                        marker: bool,
                        prev_time: &mut Option<SimTime>| {
        let mut frame_total = Watts::zero();
        let mut complete = true;
        let mut pair_watts: Vec<(usize, Watts)> = Vec::with_capacity(enabled_pairs.len());
        for &pair in &enabled_pairs {
            let (Some(raw_i), Some(raw_u)) = (values[2 * pair], values[2 * pair + 1]) else {
                complete = false;
                break;
            };
            let i_cfg = &configs[2 * pair];
            let u_cfg = &configs[2 * pair + 1];
            let amps = (adc.to_volts(raw_i) - f64::from(i_cfg.vref) / 2.0) / f64::from(i_cfg.gain);
            let volts = adc.to_volts(raw_u) * f64::from(u_cfg.gain);
            let w = Watts::new(volts * amps);
            frame_total += w;
            pair_watts.push((pair, w));
        }
        if !complete {
            return;
        }
        let dt = prev_time
            .map(|p| time.saturating_duration_since(p))
            .unwrap_or(SimDuration::ZERO);
        *prev_time = Some(time);
        energy += frame_total * dt;
        total.push(time, frame_total);
        if marker {
            total.mark(time, next_label.next().unwrap_or('?'));
        }
        for ((_, trace), (_, w)) in pairs.iter_mut().zip(pair_watts) {
            trace.push(time, w);
        }
        frames += 1;
    };

    for &byte in bytes {
        let Some(packet) = decoder.push(byte) else {
            continue;
        };
        match packet {
            Packet::Timestamp { micros } => {
                // A timestamp opens a new frame: flush the previous one.
                if let Some(t) = frame_time.take() {
                    finalize(t, &values, marker, &mut prev_time);
                }
                values = [None; SENSOR_SLOTS];
                marker = false;
                frame_time = Some(SimTime::from_micros(unwrapper.unwrap(micros)));
            }
            Packet::Sample {
                sensor,
                marker: m,
                value,
            } => {
                values[sensor as usize] = Some(value);
                if m && sensor == 0 {
                    marker = true;
                }
            }
        }
    }
    // Flush the last complete frame.
    if let Some(t) = frame_time {
        finalize(t, &values, marker, &mut prev_time);
    }
    // `finalize` holds the mutable borrows; end its scope explicitly.
    #[allow(clippy::drop_non_drop)]
    drop(finalize);

    OfflineDecode {
        total,
        pairs,
        energy,
        frames,
        resyncs: decoder.resync_count(),
    }
}

/// Serialises marker labels into the text sidecar format: a header
/// comment followed by one label per line, in marker order.
///
/// Written next to a raw capture, the sidecar lets
/// [`decode_stream_with_labels`] round-trip the labels the wire
/// protocol cannot carry.
#[must_use]
pub fn write_label_sidecar(labels: &[char]) -> String {
    let mut out = String::from("# PowerSensor3 marker labels (one per line, marker order)\n");
    for &label in labels {
        out.push(label);
        out.push('\n');
    }
    out
}

/// Parses a sidecar produced by [`write_label_sidecar`].
///
/// Blank lines and `#` comments are skipped; each remaining line
/// contributes its first non-whitespace character. Unknown content
/// never fails — a mangled line simply yields whatever character it
/// starts with, keeping the label stream aligned.
#[must_use]
pub fn parse_label_sidecar(text: &str) -> Vec<char> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| l.chars().next())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configs_one_pair() -> [SensorConfig; SENSOR_SLOTS] {
        let mut configs: [SensorConfig; SENSOR_SLOTS] =
            core::array::from_fn(|_| SensorConfig::unpopulated());
        configs[0] = SensorConfig::new("I0", 3.3, 0.12, true);
        configs[1] = SensorConfig::new("U0", 3.3, 5.0, true);
        configs
    }

    /// Synthesises `n` wire frames carrying exactly 2 A / 12 V, with
    /// the marker bit set on the listed frames.
    fn synthetic_stream_with_markers(n: u64, marked: &[u64]) -> Vec<u8> {
        let adc = AdcSpec::POWERSENSOR3;
        let raw_i = adc.quantize(1.65 + 2.0 * 0.12);
        let raw_u = adc.quantize(12.0 / 5.0);
        let mut bytes = Vec::new();
        for frame in 0..n {
            let micros = ((frame * 50 + 25) % 1024) as u16;
            bytes.extend_from_slice(&Packet::Timestamp { micros }.encode());
            for (sensor, value) in [(0u8, raw_i), (1, raw_u)] {
                bytes.extend_from_slice(
                    &Packet::Sample {
                        sensor,
                        marker: sensor == 0 && marked.contains(&frame),
                        value,
                    }
                    .encode(),
                );
            }
        }
        bytes
    }

    /// Synthesises `n` wire frames carrying exactly 2 A / 12 V.
    fn synthetic_stream(n: u64) -> Vec<u8> {
        synthetic_stream_with_markers(n, &[])
    }

    #[test]
    fn decodes_clean_capture() {
        let bytes = synthetic_stream(200);
        let decoded = decode_stream(&bytes, &configs_one_pair());
        assert_eq!(decoded.frames, 200);
        assert_eq!(decoded.resyncs, 0);
        assert_eq!(decoded.pairs.len(), 1);
        let mean = decoded.total.mean_power().unwrap().value();
        assert!((mean - 24.0).abs() < 0.3, "mean {mean}");
        // 24 W for 199 frame gaps of 50 µs ≈ 0.239 J.
        assert!((decoded.energy.value() - 24.0 * 199.0 * 50e-6).abs() < 0.01);
    }

    #[test]
    fn tolerates_truncated_capture() {
        let mut bytes = synthetic_stream(10);
        bytes.truncate(bytes.len() - 3); // cut mid-frame
        let decoded = decode_stream(&bytes, &configs_one_pair());
        assert_eq!(decoded.frames, 9, "incomplete last frame dropped");
    }

    #[test]
    fn tolerates_corruption_with_resync() {
        let mut bytes = synthetic_stream(100);
        // Flip framing bits in a handful of places.
        for idx in [30usize, 151, 322] {
            bytes[idx] ^= 0x80;
        }
        let decoded = decode_stream(&bytes, &configs_one_pair());
        assert!(decoded.resyncs > 0);
        assert!(decoded.frames >= 95, "frames {}", decoded.frames);
        let mean = decoded.total.mean_power().unwrap().value();
        assert!((mean - 24.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn labels_attach_in_marker_order_and_exhaust_to_placeholder() {
        let bytes = synthetic_stream_with_markers(50, &[5, 20, 40]);
        // Without labels: the legacy placeholder behaviour.
        let plain = decode_stream(&bytes, &configs_one_pair());
        let labels: Vec<char> = plain.total.markers().iter().map(|m| m.label).collect();
        assert_eq!(labels, vec!['?', '?', '?']);

        // With a sidecar: labels round-trip in order; the third marker
        // falls back to '?' because only two labels were recorded.
        let decoded = decode_stream_with_labels(&bytes, &configs_one_pair(), &['k', 'e']);
        let labels: Vec<char> = decoded.total.markers().iter().map(|m| m.label).collect();
        assert_eq!(labels, vec!['k', 'e', '?']);
        assert_eq!(decoded.frames, plain.frames);
        assert_eq!(decoded.total.samples(), plain.total.samples());
    }

    #[test]
    fn label_sidecar_round_trips() {
        let labels = vec!['k', 'e', '#', 'x'];
        let text = write_label_sidecar(&labels);
        assert!(text.starts_with("# PowerSensor3 marker labels"));
        // '#' as a *label* collides with the comment syntax: it is the
        // one character the text sidecar cannot carry.
        assert_eq!(parse_label_sidecar(&text), vec!['k', 'e', 'x']);
        let clean = vec!['a', 'b', 'c'];
        assert_eq!(parse_label_sidecar(&write_label_sidecar(&clean)), clean);
        assert!(parse_label_sidecar("# only comments\n\n").is_empty());
        // CRLF sidecars parse the same.
        let dos = write_label_sidecar(&clean).replace('\n', "\r\n");
        assert_eq!(parse_label_sidecar(&dos), clean);
    }

    #[test]
    fn empty_capture_decodes_to_nothing() {
        let decoded = decode_stream(&[], &configs_one_pair());
        assert_eq!(decoded.frames, 0);
        assert!(decoded.total.is_empty());
        assert_eq!(decoded.energy, Joules::zero());
    }
}
