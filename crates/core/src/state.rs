//! Measurement state snapshots and interval-mode arithmetic.

use ps3_units::{Amps, Joules, SimDuration, SimTime, Volts, Watts};

/// Number of sensor pairs (modules) on the baseboard.
pub const SENSOR_PAIRS: usize = 4;

/// Live readings and accumulated energy for one sensor pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PairState {
    /// `true` when both sensors of the pair are enabled in the EEPROM.
    pub enabled: bool,
    /// Most recent rail voltage.
    pub volts: Volts,
    /// Most recent current.
    pub amps: Amps,
    /// Most recent instantaneous power.
    pub watts: Watts,
    /// Energy accumulated since the stream started.
    pub energy: Joules,
}

/// A snapshot of the measurement state — the PowerSensor3 library's
/// `State` (§III-C), used for interval-mode measurements.
///
/// # Examples
///
/// ```
/// use ps3_core::{joules, seconds, watts, State};
/// // Obtain two snapshots from a running PowerSensor and compute the
/// // energy consumed between them:
/// let first = State::default();
/// let mut second = State::default();
/// second.total_energy = ps3_units::Joules::new(42.0);
/// second.timestamp = ps3_units::SimTime::from_micros(2_000_000);
/// assert_eq!(joules(&first, &second).value(), 42.0);
/// assert_eq!(seconds(&first, &second), 2.0);
/// assert_eq!(watts(&first, &second).value(), 21.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct State {
    /// Device time of the most recent frame (reconstructed from the
    /// wire timestamps).
    pub timestamp: SimTime,
    /// Per-pair readings.
    pub pairs: [PairState; SENSOR_PAIRS],
    /// Latest raw 10-bit ADC codes, one per sensor slot (calibration
    /// and diagnostics).
    pub raw: [u16; 2 * SENSOR_PAIRS],
    /// Total energy accumulated across all pairs since stream start.
    pub total_energy: Joules,
    /// Number of frames received since connect.
    pub frames: u64,
}

impl State {
    /// Total instantaneous power across all enabled pairs.
    #[must_use]
    pub fn total_watts(&self) -> Watts {
        self.pairs
            .iter()
            .filter(|p| p.enabled)
            .map(|p| p.watts)
            .sum()
    }
}

/// Energy consumed between two snapshots (all sensors).
#[must_use]
pub fn joules(first: &State, second: &State) -> Joules {
    second.total_energy - first.total_energy
}

/// Energy consumed between two snapshots on one pair.
///
/// # Panics
///
/// Panics if `pair >= SENSOR_PAIRS`.
#[must_use]
pub fn pair_joules(first: &State, second: &State, pair: usize) -> Joules {
    second.pairs[pair].energy - first.pairs[pair].energy
}

/// Elapsed device time between two snapshots, in seconds.
#[must_use]
pub fn seconds(first: &State, second: &State) -> f64 {
    second
        .timestamp
        .saturating_duration_since(first.timestamp)
        .as_secs_f64()
}

/// Average power between two snapshots.
///
/// Returns zero when the snapshots coincide in time.
#[must_use]
pub fn watts(first: &State, second: &State) -> Watts {
    let dt = second.timestamp.saturating_duration_since(first.timestamp);
    if dt.is_zero() {
        return Watts::zero();
    }
    joules(first, second) / dt
}

/// Elapsed device time between two snapshots as a duration.
#[must_use]
pub fn interval(first: &State, second: &State) -> SimDuration {
    second.timestamp.saturating_duration_since(first.timestamp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(t_us: u64, energy: f64) -> State {
        State {
            timestamp: SimTime::from_micros(t_us),
            total_energy: Joules::new(energy),
            ..State::default()
        }
    }

    #[test]
    fn interval_arithmetic() {
        let a = state(0, 0.0);
        let b = state(500_000, 30.0);
        assert_eq!(joules(&a, &b), Joules::new(30.0));
        assert_eq!(seconds(&a, &b), 0.5);
        assert_eq!(watts(&a, &b), Watts::new(60.0));
        assert_eq!(interval(&a, &b), SimDuration::from_millis(500));
    }

    #[test]
    fn zero_interval_power_is_zero() {
        let a = state(100, 1.0);
        let b = state(100, 2.0);
        assert_eq!(watts(&a, &b), Watts::zero());
    }

    #[test]
    fn total_watts_skips_disabled_pairs() {
        let mut s = State::default();
        s.pairs[0] = PairState {
            enabled: true,
            watts: Watts::new(10.0),
            ..PairState::default()
        };
        s.pairs[1] = PairState {
            enabled: false,
            watts: Watts::new(99.0),
            ..PairState::default()
        };
        assert_eq!(s.total_watts(), Watts::new(10.0));
    }

    #[test]
    fn pair_energy_difference() {
        let mut a = State::default();
        let mut b = State::default();
        a.pairs[2].energy = Joules::new(5.0);
        b.pairs[2].energy = Joules::new(9.0);
        assert_eq!(pair_joules(&a, &b, 2), Joules::new(4.0));
    }
}
