//! Host library for PowerSensor3 — the Rust equivalent of the paper's
//! C++ `PowerSensor` class and its accompanying tools (§III-C).
//!
//! # Overview
//!
//! Connect a [`PowerSensor`] to any [`Transport`](ps3_transport::Transport)
//! (in this repository: the virtual USB link to the emulated device).
//! On connect, the library stops any stale stream, reads the sensor
//! configuration from the device's EEPROM, starts streaming, and spawns
//! a lightweight reader thread that decodes sensor packets, tracks
//! cumulative energy per sensor pair, and serves [`State`] snapshots.
//!
//! Both of the paper's measurement modes are supported, simultaneously:
//!
//! * **Interval mode** — take two [`State`]s and compute the energy and
//!   average power between them with [`joules`], [`watts`], [`seconds`].
//! * **Continuous mode** — record every 20 kHz frame into a
//!   [`Trace`](ps3_analysis::Trace) and/or an on-disk dump, with
//!   time-synced [marker characters](PowerSensor::mark).
//!
//! The four command-line utilities shipped with PowerSensor3 are
//! available as library functions in [`tools`] (`psinfo`, `pstest`,
//! `psrun`, `psconfig`) and as runnable demos in the repository's
//! `examples/` directory.
//!
//! # Examples
//!
//! See `examples/quickstart.rs` for the end-to-end flow against the
//! emulated device.

#![forbid(unsafe_code)]

mod calibration;
mod convert;
mod error;
mod offline;
mod power_sensor;
mod state;
#[cfg(test)]
pub(crate) mod testharness;
pub mod tools;

pub use calibration::{calibrate_pair, CalibrationReport, DEFAULT_CALIBRATION_FRAMES};
pub use convert::pair_readings;
pub use error::PowerSensorError;
pub use offline::{
    decode_stream, decode_stream_with_labels, parse_label_sidecar, write_label_sidecar,
    OfflineDecode,
};
pub use power_sensor::{
    FrameRecord, FrameSink, PowerSensor, RawCapture, SharedPowerSensor, SENSOR_PAIRS,
};
pub use state::{interval, joules, pair_joules, seconds, watts, PairState, State};
