//! Host-library error type.

use core::fmt;
use std::error::Error;

use ps3_firmware::protocol::ProtocolError;
use ps3_transport::TransportError;

/// Errors surfaced by the [`PowerSensor`](crate::PowerSensor) API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PowerSensorError {
    /// The transport failed (device unplugged, link closed).
    Transport(TransportError),
    /// The device sent bytes that do not parse as protocol traffic.
    Protocol(ProtocolError),
    /// The device did not answer within the allowed time.
    Timeout(&'static str),
    /// A sensor or pair index outside the populated range.
    InvalidSensor(usize),
    /// The reader thread has shut down (device disconnected earlier).
    Shutdown,
}

impl fmt::Display for PowerSensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerSensorError::Transport(e) => write!(f, "transport failure: {e}"),
            PowerSensorError::Protocol(e) => write!(f, "protocol violation: {e}"),
            PowerSensorError::Timeout(what) => write!(f, "device timeout while {what}"),
            PowerSensorError::InvalidSensor(i) => write!(f, "invalid sensor index {i}"),
            PowerSensorError::Shutdown => write!(f, "reader thread has shut down"),
        }
    }
}

impl Error for PowerSensorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PowerSensorError::Transport(e) => Some(e),
            PowerSensorError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TransportError> for PowerSensorError {
    fn from(e: TransportError) -> Self {
        PowerSensorError::Transport(e)
    }
}

#[doc(hidden)]
impl From<ProtocolError> for PowerSensorError {
    fn from(e: ProtocolError) -> Self {
        PowerSensorError::Protocol(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = PowerSensorError::Timeout("reading configuration");
        assert_eq!(e.to_string(), "device timeout while reading configuration");
        let e: PowerSensorError = TransportError::Disconnected.into();
        assert!(e.to_string().contains("disconnected"));
    }

    #[test]
    fn source_chains() {
        let e = PowerSensorError::Transport(TransportError::TimedOut);
        assert!(e.source().is_some());
        assert!(PowerSensorError::Shutdown.source().is_none());
    }
}
