//! Shared in-crate test harness: a minimal device thread driving the
//! emulated firmware on a virtual clock (the full-featured version
//! lives in `ps3-testbed`; this one avoids the circular dev-dependency).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ps3_firmware::{Device, Eeprom, SensorConfig};
use ps3_transport::VirtualSerial;
use ps3_units::{SimDuration, SimTime};

/// Runs the emulated firmware in a thread, advancing its virtual clock
/// towards a shared target.
pub(crate) struct Harness {
    target_ns: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl Harness {
    pub(crate) fn spawn<S: ps3_firmware::AnalogSource + 'static>(
        source: S,
        eeprom: Eeprom,
    ) -> (Self, ps3_transport::SerialEndpoint) {
        let (host_end, dev_end) = VirtualSerial::pair();
        let target_ns = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let t = Arc::clone(&target_ns);
        let s = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            let mut dev = Device::new(source, eeprom);
            while !s.load(Ordering::SeqCst) {
                let target = SimTime::from_nanos(t.load(Ordering::SeqCst));
                if dev.clock() < target {
                    dev.run_until(&dev_end, target);
                } else {
                    dev.process_commands(&dev_end);
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        });
        (
            Self {
                target_ns,
                stop,
                join: Some(join),
            },
            host_end,
        )
    }

    pub(crate) fn advance(&self, d: SimDuration) {
        self.target_ns.fetch_add(d.as_nanos(), Ordering::SeqCst);
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// An EEPROM with a single populated 12 V / 10 A pair.
pub(crate) fn one_pair_eeprom() -> Eeprom {
    let mut e = Eeprom::new();
    e.write(0, SensorConfig::new("I0", 3.3, 0.12, true));
    e.write(1, SensorConfig::new("U0", 3.3, 5.0, true));
    e
}

/// A source producing exactly 2 A at 12 V on pair 0 (ideal codes).
pub(crate) fn two_amp_source() -> impl ps3_firmware::AnalogSource {
    |ch: usize, _t: SimTime| -> f64 {
        match ch {
            0 => 1.65 + 2.0 * 0.12, // 2 A through 120 mV/A
            1 => 12.0 / 5.0,        // 12 V through gain 5
            _ => 0.0,
        }
    }
}
