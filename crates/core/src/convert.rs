//! Raw-code → physical-unit conversion, shared by the live reader
//! thread, the offline decoder, and network consumers (`ps3-stream`
//! clients convert on their side of the wire with the same math).

use ps3_firmware::SensorConfig;
use ps3_sensors::AdcSpec;
use ps3_units::{Amps, Volts, Watts};

/// Converts one sensor pair's raw 10-bit ADC codes into physical
/// readings using the pair's EEPROM configuration (§III-C conversion:
/// the current sensor is offset by `vref/2` and scaled by its
/// sensitivity; the voltage sensor is scaled by its divider gain).
#[must_use]
pub fn pair_readings(
    i_cfg: &SensorConfig,
    u_cfg: &SensorConfig,
    adc: &AdcSpec,
    raw_i: u16,
    raw_u: u16,
) -> (Volts, Amps, Watts) {
    let v_i = adc.to_volts(raw_i);
    let v_u = adc.to_volts(raw_u);
    let amps = Amps::new((v_i - f64::from(i_cfg.vref) / 2.0) / f64::from(i_cfg.gain));
    let volts = Volts::new(v_u * f64::from(u_cfg.gain));
    let watts = volts * amps;
    (volts, amps, watts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converts_ideal_codes() {
        // 2 A through a 120 mV/A sensor around 1.65 V mid-rail, 12 V
        // through a gain-5 divider (the shared test-harness source).
        let i_cfg = SensorConfig::new("I0", 3.3, 0.12, true);
        let u_cfg = SensorConfig::new("U0", 3.3, 5.0, true);
        let adc = AdcSpec::POWERSENSOR3;
        let raw_i = adc.quantize(1.65 + 2.0 * 0.12);
        let raw_u = adc.quantize(12.0 / 5.0);
        let (volts, amps, watts) = pair_readings(&i_cfg, &u_cfg, &adc, raw_i, raw_u);
        assert!((volts.value() - 12.0).abs() < 0.05, "volts {volts}");
        assert!((amps.value() - 2.0).abs() < 0.03, "amps {amps}");
        assert!((watts.value() - 24.0).abs() < 0.4, "watts {watts}");
    }
}
