//! The one-time calibration procedure (§III-D).
//!
//! With the sensor module unloaded (zero current) and a known supply
//! voltage applied, averaging many raw samples yields the Hall sensor's
//! offset (the mid-scale reference actually produced at 0 A) and the
//! voltage path's true gain. Both corrections are written back to the
//! device EEPROM, after which no recalibration is needed — the paper's
//! 50-hour stability experiment bounds the residual drift to ±0.09 W.

use std::time::Duration;

use ps3_firmware::SensorConfig;
use ps3_sensors::AdcSpec;
use ps3_units::Volts;

use crate::error::PowerSensorError;
use crate::power_sensor::PowerSensor;
use crate::state::SENSOR_PAIRS;

/// Default number of frames averaged per calibration step — the
/// paper's 128 k samples.
pub const DEFAULT_CALIBRATION_FRAMES: usize = 128 * 1024;

/// Outcome of calibrating one sensor pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// The pair that was calibrated.
    pub pair: usize,
    /// Frames averaged.
    pub frames: usize,
    /// Hall offset that was removed, in amps (as seen through the old
    /// configuration).
    pub current_offset_amps: f64,
    /// Multiplicative correction applied to the voltage gain.
    pub voltage_gain_correction: f64,
    /// The configurations written to the device.
    pub new_current_config: SensorConfig,
    pub new_voltage_config: SensorConfig,
}

/// Calibrates one sensor pair against a known reference.
///
/// Preconditions (the caller's testbed must arrange them, mirroring the
/// paper's bench setup in Fig 3):
///
/// * the module carries **zero current** (unloaded), and
/// * the rail sits at exactly `reference_voltage`.
///
/// Averages `frames` raw frames (start the capture, then advance the
/// simulated device; `wait_timeout` bounds the real-time wait), derives
/// the corrected mid-scale reference (current) and gain (voltage), and
/// writes both to the device.
///
/// # Errors
///
/// * [`PowerSensorError::InvalidSensor`] for an out-of-range pair.
/// * [`PowerSensorError::Timeout`] when the capture does not complete
///   (is the testbed advancing?).
/// * Transport failures if the device link drops mid-procedure.
pub fn calibrate_pair(
    ps: &PowerSensor,
    pair: usize,
    reference_voltage: Volts,
    frames: usize,
    wait_timeout: Duration,
) -> Result<CalibrationReport, PowerSensorError> {
    if pair >= SENSOR_PAIRS {
        return Err(PowerSensorError::InvalidSensor(pair));
    }
    let configs = ps.configs();
    let i_cfg = configs[2 * pair].clone();
    let u_cfg = configs[2 * pair + 1].clone();

    let capture = ps.begin_raw_capture(frames);
    let means = capture.wait(wait_timeout)?;
    let adc = AdcSpec::POWERSENSOR3;

    // Current sensor: at 0 A the output should sit at vref/2. Whatever
    // mean we observed *is* the true mid-scale; store vref = 2 × mean.
    let mean_i_volts = (means[2 * pair] + 0.5) * adc.lsb();
    let old_zero = f64::from(i_cfg.vref) / 2.0;
    let current_offset_amps = (mean_i_volts - old_zero) / f64::from(i_cfg.gain);
    let new_current_config = SensorConfig::new(
        &i_cfg.name,
        (2.0 * mean_i_volts) as f32,
        i_cfg.gain,
        i_cfg.enabled,
    );

    // Voltage sensor: gain = reference / observed ADC volts.
    let mean_u_volts = (means[2 * pair + 1] + 0.5) * adc.lsb();
    let true_gain = reference_voltage.value() / mean_u_volts;
    let voltage_gain_correction = true_gain / f64::from(u_cfg.gain);
    let new_voltage_config =
        SensorConfig::new(&u_cfg.name, u_cfg.vref, true_gain as f32, u_cfg.enabled);

    ps.update_configs(&[
        (2 * pair, new_current_config.clone()),
        (2 * pair + 1, new_voltage_config.clone()),
    ])?;

    Ok(CalibrationReport {
        pair,
        frames,
        current_offset_amps,
        voltage_gain_correction,
        new_current_config,
        new_voltage_config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_frame_count_matches_paper() {
        // §III-D / §IV-A: calibration and accuracy sweeps average
        // 128 k samples. (Full calibration round-trips are exercised
        // in the repository-level integration tests, where a reference
        // supply exists.)
        assert_eq!(DEFAULT_CALIBRATION_FRAMES, 131_072);
        assert_eq!(SENSOR_PAIRS, 4);
    }
}
