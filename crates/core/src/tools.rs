//! Library equivalents of the PowerSensor3 command-line utilities
//! (§III-C): `psinfo`, `pstest`, `psrun` and `psconfig`.
//!
//! The real tools talk to physical hardware; here each function takes a
//! connected [`PowerSensor`] plus — where the tool has to let simulated
//! time pass — an `advance` closure that the caller wires to their
//! testbed. Runnable demonstrations live in the repository's
//! `examples/` directory.

use core::fmt;
use std::time::Duration;

use ps3_units::{Joules, SimDuration, Volts, Watts};

use crate::error::PowerSensorError;
use crate::power_sensor::PowerSensor;
use crate::state::{joules, seconds, watts, State, SENSOR_PAIRS};

/// How long tools wait (in real time) for simulated frames to arrive.
const TOOL_TIMEOUT: Duration = Duration::from_secs(30);

/// `psinfo`: renders the configuration and latest measurement of every
/// enabled sensor, plus the total power.
#[must_use]
pub fn info(ps: &PowerSensor) -> String {
    use core::fmt::Write as _;
    let configs = ps.configs();
    let state = ps.read();
    let mut out = String::new();
    let _ = writeln!(out, "PowerSensor3 sensor overview");
    for pair in 0..SENSOR_PAIRS {
        let i_cfg = &configs[2 * pair];
        let u_cfg = &configs[2 * pair + 1];
        if !(i_cfg.enabled && u_cfg.enabled) {
            let _ = writeln!(out, "pair {pair}: (not populated)");
            continue;
        }
        let p = &state.pairs[pair];
        let _ = writeln!(
            out,
            "pair {pair}: {} / {}  vref={:.3} V  sens={:.4}  gain={:.3}  \
             -> {:.3} V  {:.3} A  {:.3} W",
            i_cfg.name,
            u_cfg.name,
            i_cfg.vref,
            i_cfg.gain,
            u_cfg.gain,
            p.volts.value(),
            p.amps.value(),
            p.watts.value()
        );
    }
    let _ = writeln!(out, "total: {:.3} W", state.total_watts().value());
    out
}

/// One row of `pstest` output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestRow {
    /// Length of the measurement interval.
    pub interval: SimDuration,
    /// Energy consumed during the interval.
    pub joules: Joules,
    /// Average power over the interval.
    pub watts: Watts,
}

impl fmt::Display for TestRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12}  {:>12.6} J  {:>10.4} W",
            self.interval.to_string(),
            self.joules.value(),
            self.watts.value()
        )
    }
}

/// `pstest`: measures energy and average power over each of the given
/// intervals (the paper uses exponentially increasing intervals to
/// sanity-check a device).
///
/// `advance` must move the simulated device forward by the requested
/// duration (e.g. `|d| testbed.advance(d)`).
///
/// # Errors
///
/// Propagates timeouts when frames do not arrive.
pub fn pstest<F>(
    ps: &PowerSensor,
    intervals: &[SimDuration],
    mut advance: F,
) -> Result<Vec<TestRow>, PowerSensorError>
where
    F: FnMut(SimDuration),
{
    let mut rows = Vec::with_capacity(intervals.len());
    for &interval in intervals {
        let first = measure_point(ps, &mut advance, interval)?;
        rows.push(first);
    }
    Ok(rows)
}

fn measure_point<F>(
    ps: &PowerSensor,
    advance: &mut F,
    interval: SimDuration,
) -> Result<TestRow, PowerSensorError>
where
    F: FnMut(SimDuration),
{
    let frames_needed = interval.as_micros() / 50;
    let start_frames = ps.frames_received();
    let first = ps.read();
    advance(interval);
    ps.wait_for_frames(start_frames + frames_needed, TOOL_TIMEOUT)?;
    let second = ps.read();
    Ok(TestRow {
        interval,
        joules: joules(&first, &second),
        watts: watts(&first, &second),
    })
}

/// Result of a `psrun` measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunReport {
    /// Total energy consumed while the workload ran.
    pub joules: Joules,
    /// Elapsed device time in seconds.
    pub seconds: f64,
    /// Average power.
    pub watts: Watts,
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.6} J over {:.6} s  (avg {:.4} W)",
            self.joules.value(),
            self.seconds,
            self.watts.value()
        )
    }
}

/// `psrun`: runs `workload` and reports the energy it consumed.
///
/// The workload closure receives no arguments; it is expected to drive
/// the simulated device (through a testbed) and return when done. After
/// it returns, `settle` lets the host catch up on in-flight frames.
///
/// # Errors
///
/// Propagates timeouts when frames do not arrive.
pub fn psrun<W>(ps: &PowerSensor, workload: W) -> Result<RunReport, PowerSensorError>
where
    W: FnOnce(),
{
    let first = ps.read();
    let frames_before = ps.frames_received();
    workload();
    // Wait until at least one more frame than before has landed so the
    // second snapshot reflects the workload (no-op workloads tolerate
    // the timeout).
    let _ = ps.wait_for_frames(frames_before + 1, Duration::from_millis(200));
    settle(ps);
    let second = ps.read();
    Ok(RunReport {
        joules: joules(&first, &second),
        seconds: seconds(&first, &second),
        watts: watts(&first, &second),
    })
}

/// Waits until the frame counter stops moving (all in-flight frames
/// processed).
fn settle(ps: &PowerSensor) {
    let mut last = ps.frames_received();
    loop {
        std::thread::sleep(Duration::from_millis(5));
        let now = ps.frames_received();
        if now == last {
            return;
        }
        last = now;
    }
}

/// `psconfig --auto`: calibrates every populated pair against a known
/// reference voltage (see [`calibrate_pair`](crate::calibrate_pair) for
/// the preconditions).
///
/// # Errors
///
/// Propagates calibration failures; pairs that are not populated are
/// skipped.
pub fn autocalibrate(
    ps: &PowerSensor,
    reference_voltages: &[Option<Volts>; SENSOR_PAIRS],
    frames: usize,
    mut advance: impl FnMut(SimDuration),
) -> Result<Vec<crate::CalibrationReport>, PowerSensorError> {
    let mut reports = Vec::new();
    let configs = ps.configs();
    for pair in 0..SENSOR_PAIRS {
        let Some(reference) = reference_voltages[pair] else {
            continue;
        };
        if !(configs[2 * pair].enabled && configs[2 * pair + 1].enabled) {
            continue;
        }
        // Kick the capture off, then advance enough device time to
        // cover it (frames × 50 µs), then collect.
        let handle = std::thread::scope(|scope| {
            let worker =
                scope.spawn(|| crate::calibrate_pair(ps, pair, reference, frames, TOOL_TIMEOUT));
            advance(SimDuration::from_micros(frames as u64 * 50 + 1000));
            worker.join().expect("calibration thread panicked")
        });
        reports.push(handle?);
    }
    Ok(reports)
}

/// Formats a state snapshot the way the `psinfo` footer does (used by
/// several examples).
#[must_use]
pub fn format_state(state: &State) -> String {
    format!(
        "t={:.6}s total={:.3}W energy={:.4}J frames={}",
        state.timestamp.as_secs_f64(),
        state.total_watts().value(),
        state.total_energy.value(),
        state.frames
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testharness::{one_pair_eeprom, two_amp_source, Harness};
    use ps3_units::SimDuration;

    #[test]
    fn info_renders_live_configuration_and_readings() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = crate::PowerSensor::connect(host_end).unwrap();
        h.advance(SimDuration::from_millis(5));
        ps.wait_for_frames(90, Duration::from_secs(10)).unwrap();
        let text = info(&ps);
        assert!(text.contains("pair 0: I0 / U0"), "{text}");
        assert!(text.contains("(not populated)"), "{text}");
        // 2 A × 12 V ≈ 24 W in the footer.
        let total_line = text.lines().last().unwrap();
        assert!(total_line.starts_with("total: 24."), "{total_line}");
        drop(ps);
        drop(h);
    }

    #[test]
    fn pstest_measures_each_interval() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = crate::PowerSensor::connect(host_end).unwrap();
        let intervals = [SimDuration::from_millis(5), SimDuration::from_millis(10)];
        let rows = pstest(&ps, &intervals, |d| {
            let before = ps.frames_received();
            h.advance(d);
            let frames = d.as_micros() / 50;
            ps.wait_for_frames(before + frames, Duration::from_secs(10))
                .unwrap();
        })
        .unwrap();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!((row.watts.value() - 24.0).abs() < 0.5, "{row}");
        }
        let ratio = rows[1].joules.value() / rows[0].joules.value();
        assert!((ratio - 2.0).abs() < 0.1, "energy ratio {ratio}");
        drop(ps);
        drop(h);
    }

    #[test]
    fn psrun_reports_workload_energy() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = crate::PowerSensor::connect(host_end).unwrap();
        let report = psrun(&ps, || {
            h.advance(SimDuration::from_millis(20));
            let _ = ps.wait_for_frames(390, Duration::from_secs(10));
        })
        .unwrap();
        assert!((report.watts.value() - 24.0).abs() < 0.5, "{report}");
        assert!((report.seconds - 0.02).abs() < 0.002, "{report}");
        drop(ps);
        drop(h);
    }

    #[test]
    fn test_row_formats() {
        let row = TestRow {
            interval: SimDuration::from_millis(10),
            joules: Joules::new(0.5),
            watts: Watts::new(50.0),
        };
        let text = row.to_string();
        assert!(text.contains("10.000ms"), "{text}");
        assert!(text.contains("0.500000 J"), "{text}");
        assert!(text.contains("50.0000 W"), "{text}");
    }

    #[test]
    fn run_report_formats() {
        let r = RunReport {
            joules: Joules::new(1.5),
            seconds: 0.5,
            watts: Watts::new(3.0),
        };
        assert_eq!(r.to_string(), "1.500000 J over 0.500000 s  (avg 3.0000 W)");
    }
}
