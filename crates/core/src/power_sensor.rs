//! The `PowerSensor` host class and its background reader thread.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use ps3_analysis::Trace;
use ps3_firmware::protocol::{opcode, Command, Packet, StreamDecoder, TimestampUnwrapper};
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_sensors::AdcSpec;
use ps3_transport::{Transport, TransportError};
use ps3_units::{Joules, SimDuration, SimTime, Watts};

use crate::convert::pair_readings;
use crate::error::PowerSensorError;
use crate::state::{PairState, State};

pub use crate::state::SENSOR_PAIRS;

/// One fully assembled 20 kHz sample frame, as delivered to frame
/// sinks (see [`PowerSensor::add_frame_sink`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameRecord {
    /// Unwrapped device timestamp of the frame.
    pub time: SimTime,
    /// Raw 10-bit ADC code per sensor slot (0 where absent).
    pub raw: [u16; SENSOR_SLOTS],
    /// Bit `i` set when slot `i` reported a sample in this frame.
    pub present: u8,
    /// Host-side marker label paired with this frame, if any.
    pub marker: Option<char>,
    /// Total power across enabled pairs.
    pub total: Watts,
}

/// Callback receiving every assembled frame; return `false` to
/// deregister.
pub type FrameSink = Box<dyn FnMut(&FrameRecord) -> bool + Send>;

/// How long connect-time handshakes may take before we give up.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Idle read timeout of the reader thread (so it can notice shutdown).
const READER_POLL: Duration = Duration::from_millis(20);

/// The PowerSensor3 host interface.
///
/// Mirrors the C++ `PowerSensor` class from the paper (§III-C): it
/// connects over a transport, loads the sensor configuration from the
/// device EEPROM, starts the 20 kHz stream, and keeps cumulative energy
/// accounting in a lightweight background thread.
///
/// Dropping the `PowerSensor` stops the stream and joins the reader.
pub struct PowerSensor {
    transport: Arc<dyn Transport>,
    shared: Arc<Shared>,
    reader: Option<JoinHandle<()>>,
}

#[derive(Debug)]
struct Shared {
    inner: Mutex<Inner>,
    changed: Condvar,
    stop: AtomicBool,
    frames: AtomicU64,
    alive: AtomicBool,
    /// Why the reader thread exited, when it exited on a transport
    /// fault rather than a clean stop.
    link_error: Mutex<Option<TransportError>>,
    /// Parking place for an in-flight version reply (reader → caller).
    version: Mutex<Option<String>>,
}

struct Inner {
    state: State,
    configs: [SensorConfig; SENSOR_SLOTS],
    adc: AdcSpec,
    unwrapper: TimestampUnwrapper,
    prev_frame_time: Option<SimTime>,
    frame: FrameAssembly,
    marker_labels: VecDeque<char>,
    trace: Option<Trace>,
    dump: Option<DumpState>,
    raw_capture: Option<RawCaptureState>,
    sinks: Vec<FrameSink>,
}

impl core::fmt::Debug for PowerSensor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PowerSensor")
            .field("frames_received", &self.frames_received())
            .field("alive", &self.is_alive())
            .finish_non_exhaustive()
    }
}

impl core::fmt::Debug for Inner {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Inner")
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

/// Continuous-mode dump writer plus the line count it has produced,
/// so the seal record can state how many frames a complete dump holds.
struct DumpState {
    writer: std::io::BufWriter<Box<dyn Write + Send>>,
    frames: u64,
}

impl DumpState {
    /// Writes the seal record and flushes. A dump without this final
    /// `# end frames=N` line was cut short (process killed mid-write).
    fn seal(mut self) {
        let _ = writeln!(self.writer, "# end frames={}", self.frames);
        let _ = self.writer.flush();
    }
}

struct FrameAssembly {
    time: Option<SimTime>,
    values: [Option<u16>; SENSOR_SLOTS],
    marker: bool,
}

impl FrameAssembly {
    fn empty() -> Self {
        Self {
            time: None,
            values: [None; SENSOR_SLOTS],
            marker: false,
        }
    }
}

#[derive(Debug)]
struct RawCaptureState {
    remaining: usize,
    count: u64,
    sums: [f64; SENSOR_SLOTS],
    done: bool,
}

/// Handle to an in-flight raw-sample capture (see
/// [`PowerSensor::begin_raw_capture`]).
#[derive(Debug)]
pub struct RawCapture {
    shared: Arc<Shared>,
}

impl RawCapture {
    /// Blocks until the requested number of frames has been averaged,
    /// returning the mean raw ADC code per sensor slot.
    ///
    /// # Errors
    ///
    /// [`PowerSensorError::Timeout`] if the capture does not finish
    /// within `timeout` (e.g. nobody is advancing the simulated
    /// device), or [`PowerSensorError::Shutdown`] if the reader died.
    pub fn wait(self, timeout: Duration) -> Result<[f64; SENSOR_SLOTS], PowerSensorError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock();
        loop {
            if let Some(cap) = &inner.raw_capture {
                if cap.done {
                    let cap = inner.raw_capture.take().expect("checked");
                    let n = cap.count.max(1) as f64;
                    return Ok(core::array::from_fn(|i| cap.sums[i] / n));
                }
            } else {
                return Err(PowerSensorError::Shutdown);
            }
            if !self.shared.alive.load(Ordering::SeqCst) {
                return Err(PowerSensorError::Shutdown);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PowerSensorError::Timeout("capturing raw samples"));
            }
            self.shared.changed.wait_for(&mut inner, deadline - now);
        }
    }
}

impl PowerSensor {
    /// Connects to a device on `transport`: stops any stale stream,
    /// reads the sensor configuration, starts streaming, and spawns the
    /// reader thread.
    ///
    /// # Errors
    ///
    /// Fails with a [`PowerSensorError::Timeout`] when the device does
    /// not answer the configuration request, or a transport error when
    /// the link is down.
    pub fn connect<T: Transport + 'static>(transport: T) -> Result<Self, PowerSensorError> {
        let transport: Arc<dyn Transport> = Arc::new(transport);
        transport.write_all(&Command::StopStreaming.encode())?;
        drain(&*transport);
        transport.write_all(&Command::ReadConfig.encode())?;
        let configs = read_config_response(&*transport)?;

        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                state: State::default(),
                configs: configs.clone(),
                adc: AdcSpec::POWERSENSOR3,
                unwrapper: TimestampUnwrapper::new(),
                prev_frame_time: None,
                frame: FrameAssembly::empty(),
                marker_labels: VecDeque::new(),
                trace: None,
                dump: None,
                raw_capture: None,
                sinks: Vec::new(),
            }),
            changed: Condvar::new(),
            stop: AtomicBool::new(false),
            frames: AtomicU64::new(0),
            alive: AtomicBool::new(true),
            link_error: Mutex::new(None),
            version: Mutex::new(None),
        });

        transport.write_all(&Command::StartStreaming.encode())?;

        let reader = {
            let transport = Arc::clone(&transport);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ps3-reader".into())
                .spawn(move || reader_loop(&*transport, &shared))
                .expect("spawn reader thread")
        };

        Ok(Self {
            transport,
            shared,
            reader: Some(reader),
        })
    }

    /// The current measurement snapshot.
    #[must_use]
    pub fn read(&self) -> State {
        self.shared.inner.lock().state
    }

    /// Number of sample frames received since connect.
    #[must_use]
    pub fn frames_received(&self) -> u64 {
        self.shared.frames.load(Ordering::SeqCst)
    }

    /// `false` once the device link has died.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.shared.alive.load(Ordering::SeqCst)
    }

    /// The transport fault that killed the reader thread, if one did.
    /// `None` while the link is healthy and after a clean stop —
    /// so `!is_alive() && link_error().is_some()` distinguishes a
    /// dead device from an ordinary shutdown.
    #[must_use]
    pub fn link_error(&self) -> Option<TransportError> {
        self.shared.link_error.lock().clone()
    }

    /// The sensor configuration read from the device EEPROM at connect
    /// (or as updated through [`PowerSensor::update_configs`]).
    #[must_use]
    pub fn configs(&self) -> [SensorConfig; SENSOR_SLOTS] {
        self.shared.inner.lock().configs.clone()
    }

    /// Sends a marker: the device flags the next sensor-0 sample and
    /// the host pairs that flag with `label` in traces and dumps
    /// (continuous-mode markers, §III-C).
    ///
    /// # Errors
    ///
    /// Transport failure if the link is down.
    pub fn mark(&self, label: char) -> Result<(), PowerSensorError> {
        {
            let mut inner = self.shared.inner.lock();
            inner.marker_labels.push_back(label);
        }
        self.transport.write_all(&Command::Marker.encode())?;
        Ok(())
    }

    /// Begins recording every frame into an in-memory
    /// [`Trace`](ps3_analysis::Trace) (continuous mode). Any previous
    /// unfinished trace is discarded.
    pub fn begin_trace(&self) {
        self.shared.inner.lock().trace = Some(Trace::new());
    }

    /// Like [`PowerSensor::begin_trace`], but pre-allocates room for
    /// `samples` frames so a capture of known length never reallocates
    /// on the reader thread.
    pub fn begin_trace_with_capacity(&self, samples: usize) {
        self.shared.inner.lock().trace = Some(Trace::with_capacity(samples));
    }

    /// Stops recording and returns the captured trace (empty if
    /// [`PowerSensor::begin_trace`] was never called).
    #[must_use]
    pub fn end_trace(&self) -> Trace {
        self.shared.inner.lock().trace.take().unwrap_or_default()
    }

    /// Streams every frame as a text line into `writer` (continuous
    /// mode dump file): `t_us p0_W p1_W p2_W p3_W total_W`, with
    /// `M t_us <label>` lines for markers.
    ///
    /// Output is buffered; [`PowerSensor::stop_dump`] (or dropping the
    /// sensor) flushes it and appends a `# end frames=N` seal line so
    /// readers can tell a complete dump from one cut short by a crash.
    pub fn dump_to<W: Write + Send + 'static>(&self, writer: W) {
        let mut writer = std::io::BufWriter::new(Box::new(writer) as Box<dyn Write + Send>);
        let _ = writeln!(writer, "# PowerSensor3 dump (times in device µs)");
        self.shared.inner.lock().dump = Some(DumpState { writer, frames: 0 });
    }

    /// Stops dumping, appends the seal line, and flushes the writer.
    pub fn stop_dump(&self) {
        if let Some(state) = self.shared.inner.lock().dump.take() {
            state.seal();
        }
    }

    /// Starts averaging raw ADC codes over the next `frames` frames —
    /// the building block of the calibration procedure (§III-D).
    #[must_use]
    pub fn begin_raw_capture(&self, frames: usize) -> RawCapture {
        let mut inner = self.shared.inner.lock();
        inner.raw_capture = Some(RawCaptureState {
            remaining: frames,
            count: 0,
            sums: [0.0; SENSOR_SLOTS],
            done: frames == 0,
        });
        RawCapture {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until the host has processed at least `target` frames.
    ///
    /// # Errors
    ///
    /// [`PowerSensorError::Timeout`] if the frames do not arrive within
    /// `timeout`.
    pub fn wait_for_frames(&self, target: u64, timeout: Duration) -> Result<(), PowerSensorError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock();
        while self.shared.frames.load(Ordering::SeqCst) < target {
            if !self.shared.alive.load(Ordering::SeqCst) {
                return Err(PowerSensorError::Shutdown);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PowerSensorError::Timeout("waiting for frames"));
            }
            self.shared.changed.wait_for(&mut inner, deadline - now);
        }
        Ok(())
    }

    /// Rewrites the configuration of the given sensor slots, both on
    /// the device EEPROM and in the host's conversion tables. The
    /// stream is paused for the update and restarted afterwards; energy
    /// accounting continues, but a small time discontinuity is
    /// unavoidable (the paper recommends configuring before measuring).
    ///
    /// # Errors
    ///
    /// Transport failure, or [`PowerSensorError::InvalidSensor`] for an
    /// out-of-range slot.
    pub fn update_configs(
        &self,
        updates: &[(usize, SensorConfig)],
    ) -> Result<(), PowerSensorError> {
        for (slot, _) in updates {
            if *slot >= SENSOR_SLOTS {
                return Err(PowerSensorError::InvalidSensor(*slot));
            }
        }
        self.transport.write_all(&Command::StopStreaming.encode())?;
        for (slot, cfg) in updates {
            self.transport.write_all(
                &Command::WriteConfig {
                    sensor: *slot as u8,
                    config: cfg.clone(),
                }
                .encode(),
            )?;
        }
        {
            let mut inner = self.shared.inner.lock();
            for (slot, cfg) in updates {
                inner.configs[*slot] = cfg.clone();
            }
            // The stream pauses: restart interval accounting cleanly.
            inner.prev_frame_time = None;
            inner.frame = FrameAssembly::empty();
        }
        self.transport
            .write_all(&Command::StartStreaming.encode())?;
        Ok(())
    }

    /// Pauses the sensor stream (device keeps time, emits nothing).
    ///
    /// Long measurement campaigns with sparse probe windows (the
    /// paper's 50-hour stability run takes 128 k samples every
    /// 15 minutes) pause between windows so the simulation can
    /// fast-forward. Resume with [`PowerSensor::resume_stream`].
    ///
    /// # Errors
    ///
    /// Transport failure if the link is down.
    pub fn pause_stream(&self) -> Result<(), PowerSensorError> {
        self.transport.write_all(&Command::StopStreaming.encode())?;
        Ok(())
    }

    /// Resumes a paused stream. Interval accounting restarts cleanly
    /// (the pause is a time discontinuity on the wire).
    ///
    /// # Errors
    ///
    /// Transport failure if the link is down.
    pub fn resume_stream(&self) -> Result<(), PowerSensorError> {
        {
            let mut inner = self.shared.inner.lock();
            inner.prev_frame_time = None;
            inner.frame = FrameAssembly::empty();
        }
        self.transport
            .write_all(&Command::StartStreaming.encode())?;
        Ok(())
    }

    /// Registers a callback invoked with every assembled frame, on the
    /// reader thread. Keep it fast — it runs inside the 50 µs sample
    /// cadence. Return `false` from the callback to deregister it.
    ///
    /// This is the tap the `ps3-stream` daemon uses to feed its
    /// broadcast ring without a second decode of the wire stream.
    pub fn add_frame_sink<F>(&self, sink: F)
    where
        F: FnMut(&FrameRecord) -> bool + Send + 'static,
    {
        self.shared.inner.lock().sinks.push(Box::new(sink));
    }

    /// Requests the firmware version string.
    ///
    /// The stream is paused for the exchange.
    ///
    /// # Errors
    ///
    /// Transport failure or timeout.
    pub fn firmware_version(&self) -> Result<String, PowerSensorError> {
        self.transport.write_all(&Command::StopStreaming.encode())?;
        // Let the reader drain remaining stream bytes, then take over.
        std::thread::sleep(Duration::from_millis(10));
        self.transport.write_all(&Command::Version.encode())?;
        let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
        // The reader thread will stash the version reply for us.
        let mut inner = self.shared.inner.lock();
        loop {
            if let Some(v) = self.shared.version.lock().take() {
                drop(inner);
                self.transport
                    .write_all(&Command::StartStreaming.encode())?;
                return Ok(v);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PowerSensorError::Timeout("reading firmware version"));
            }
            self.shared.changed.wait_for(&mut inner, deadline - now);
        }
    }
}

/// A cheaply clonable, thread-shareable handle to a [`PowerSensor`].
///
/// Subsystems that hand one sensor to several consumers (the streaming
/// daemon's acquisition side, `Ps3Meter`, application threads) share
/// this instead of threading `&PowerSensor` lifetimes through their
/// APIs. Derefs to [`PowerSensor`], so all its methods are available
/// directly.
#[derive(Debug, Clone)]
pub struct SharedPowerSensor {
    inner: Arc<PowerSensor>,
}

impl SharedPowerSensor {
    /// Wraps a connected sensor for shared ownership.
    #[must_use]
    pub fn new(sensor: PowerSensor) -> Self {
        Self {
            inner: Arc::new(sensor),
        }
    }

    /// The underlying `Arc` (for APIs that take `Arc<PowerSensor>`).
    #[must_use]
    pub fn arc(&self) -> Arc<PowerSensor> {
        Arc::clone(&self.inner)
    }
}

impl From<PowerSensor> for SharedPowerSensor {
    fn from(sensor: PowerSensor) -> Self {
        Self::new(sensor)
    }
}

impl From<Arc<PowerSensor>> for SharedPowerSensor {
    fn from(inner: Arc<PowerSensor>) -> Self {
        Self { inner }
    }
}

impl std::ops::Deref for SharedPowerSensor {
    type Target = PowerSensor;
    fn deref(&self) -> &PowerSensor {
        &self.inner
    }
}

impl Drop for PowerSensor {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.transport.write_all(&Command::StopStreaming.encode());
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
        if let Some(dump) = self.shared.inner.lock().dump.take() {
            dump.seal();
        }
    }
}

/// Discards incoming bytes until the link is quiet.
fn drain(transport: &dyn Transport) {
    let mut buf = [0u8; 4096];
    while transport
        .read(&mut buf, Some(Duration::from_millis(20)))
        .is_ok()
    {}
}

/// Reads the `R` command response: eight `C <slot> <record>` entries
/// terminated by `E`.
fn read_config_response(
    transport: &dyn Transport,
) -> Result<[SensorConfig; SENSOR_SLOTS], PowerSensorError> {
    use ps3_firmware::CONFIG_WIRE_SIZE;
    let mut configs: [SensorConfig; SENSOR_SLOTS] =
        core::array::from_fn(|_| SensorConfig::unpopulated());
    let deadline = Instant::now() + HANDSHAKE_TIMEOUT;
    loop {
        let mut op = [0u8; 1];
        read_with_deadline(transport, &mut op, deadline)?;
        match op[0] {
            opcode::CONFIG_RECORD => {
                let mut slot = [0u8; 1];
                read_with_deadline(transport, &mut slot, deadline)?;
                let mut record = [0u8; CONFIG_WIRE_SIZE];
                read_with_deadline(transport, &mut record, deadline)?;
                let cfg = SensorConfig::from_wire(&record)?;
                if (slot[0] as usize) < SENSOR_SLOTS {
                    configs[slot[0] as usize] = cfg;
                }
            }
            opcode::CONFIG_END => return Ok(configs),
            _ => { /* stale stream byte: skip */ }
        }
    }
}

fn read_with_deadline(
    transport: &dyn Transport,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<(), PowerSensorError> {
    let mut filled = 0;
    while filled < buf.len() {
        let now = Instant::now();
        if now >= deadline {
            return Err(PowerSensorError::Timeout("reading configuration"));
        }
        match transport.read(&mut buf[filled..], Some(deadline - now)) {
            Ok(n) => filled += n,
            Err(TransportError::TimedOut) => {
                return Err(PowerSensorError::Timeout("reading configuration"))
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// The background reader: decodes the stream and maintains state.
fn reader_loop(transport: &dyn Transport, shared: &Shared) {
    let mut decoder = StreamDecoder::new();
    let mut buf = [0u8; 4096];
    let mut version_pending: Option<(usize, Vec<u8>)> = None;
    while !shared.stop.load(Ordering::SeqCst) {
        let n = match transport.read(&mut buf, Some(READER_POLL)) {
            Ok(n) => n,
            Err(TransportError::TimedOut) => continue,
            Err(e) => {
                *shared.link_error.lock() = Some(e);
                break;
            }
        };
        let mut bytes = &buf[..n];
        // One state lock and one waiter wakeup per read chunk — a
        // chunk carries hundreds of packets under streaming load, so
        // per-packet locking would dominate the reader.
        let frames_before = shared.frames.load(Ordering::SeqCst);
        {
            let mut inner = shared.inner.lock();
            // A version reply may be interleaved when the stream is
            // paused.
            while !bytes.is_empty() {
                if let Some((want, partial)) = &mut version_pending {
                    let take = bytes.len().min(*want - partial.len());
                    partial.extend_from_slice(&bytes[..take]);
                    bytes = &bytes[take..];
                    if partial.len() == *want {
                        let text = String::from_utf8_lossy(partial).into_owned();
                        *shared.version.lock() = Some(text);
                        shared.changed.notify_all();
                        version_pending = None;
                    }
                    continue;
                }
                if bytes[0] == opcode::VERSION_REPLY && bytes.len() >= 2 {
                    let len = bytes[1] as usize;
                    version_pending = Some((len, Vec::with_capacity(len)));
                    bytes = &bytes[2..];
                    continue;
                }
                let byte = bytes[0];
                bytes = &bytes[1..];
                if let Some(packet) = decoder.push(byte) {
                    handle_packet(shared, &mut inner, packet);
                }
            }
        }
        if shared.frames.load(Ordering::SeqCst) != frames_before {
            shared.changed.notify_all();
        }
    }
    shared.alive.store(false, Ordering::SeqCst);
    shared.changed.notify_all();
}

fn handle_packet(shared: &Shared, inner: &mut Inner, packet: Packet) {
    match packet {
        Packet::Timestamp { micros } => {
            // A timestamp opens a new frame; finalise the previous one.
            finalize_frame(shared, inner);
            let abs = inner.unwrapper.unwrap(micros);
            inner.frame.time = Some(SimTime::from_micros(abs));
        }
        Packet::Sample {
            sensor,
            marker,
            value,
        } => {
            inner.frame.values[sensor as usize] = Some(value);
            if marker && sensor == 0 {
                inner.frame.marker = true;
            }
            // Finalise eagerly once every enabled slot has reported, so
            // state updates land one frame earlier than waiting for the
            // next timestamp.
            let complete = inner.frame.time.is_some()
                && (0..SENSOR_SLOTS)
                    .all(|s| !inner.configs[s].enabled || inner.frame.values[s].is_some());
            if complete {
                finalize_frame(shared, inner);
            }
        }
    }
}

fn finalize_frame(shared: &Shared, inner: &mut Inner) {
    let Some(time) = inner.frame.time else {
        inner.frame = FrameAssembly::empty();
        return;
    };
    let values = inner.frame.values;
    let had_marker = inner.frame.marker;
    inner.frame = FrameAssembly::empty();

    let dt = inner
        .prev_frame_time
        .map(|prev| time.saturating_duration_since(prev))
        .unwrap_or(SimDuration::ZERO);
    inner.prev_frame_time = Some(time);

    let adc = inner.adc;
    let mut total_power = Watts::zero();
    let mut pair_updates: [Option<PairState>; SENSOR_PAIRS] = [None; SENSOR_PAIRS];
    for pair in 0..SENSOR_PAIRS {
        let i_cfg = &inner.configs[2 * pair];
        let u_cfg = &inner.configs[2 * pair + 1];
        if !(i_cfg.enabled && u_cfg.enabled) {
            continue;
        }
        let (Some(raw_i), Some(raw_u)) = (values[2 * pair], values[2 * pair + 1]) else {
            continue;
        };
        let (volts, amps, watts) = pair_readings(i_cfg, u_cfg, &adc, raw_i, raw_u);
        total_power += watts;
        let prev_energy = inner.state.pairs[pair].energy;
        pair_updates[pair] = Some(PairState {
            enabled: true,
            volts,
            amps,
            watts,
            energy: prev_energy + watts * dt,
        });
    }

    // Raw-capture accumulation.
    if let Some(cap) = &mut inner.raw_capture {
        if !cap.done {
            for (slot, sum) in cap.sums.iter_mut().enumerate() {
                if let Some(v) = values[slot] {
                    *sum += f64::from(v);
                }
            }
            cap.count += 1;
            cap.remaining -= 1;
            if cap.remaining == 0 {
                cap.done = true;
            }
        }
    }

    // Commit state.
    let mut delta_energy = Joules::zero();
    for (pair, update) in pair_updates.into_iter().enumerate() {
        if let Some(p) = update {
            delta_energy += p.energy - inner.state.pairs[pair].energy;
            inner.state.pairs[pair] = p;
        }
    }
    for (slot, value) in values.iter().enumerate() {
        if let Some(v) = value {
            inner.state.raw[slot] = *v;
        }
    }
    inner.state.total_energy += delta_energy;
    inner.state.timestamp = time;
    inner.state.frames += 1;
    shared.frames.fetch_add(1, Ordering::SeqCst);

    // Markers.
    let marker_label = if had_marker {
        Some(inner.marker_labels.pop_front().unwrap_or('?'))
    } else {
        None
    };

    // Continuous-mode consumers.
    if let Some(trace) = &mut inner.trace {
        trace.push(time, total_power);
        if let Some(label) = marker_label {
            trace.mark(time, label);
        }
    }
    let pairs_snapshot = inner.state.pairs;
    if let Some(dump) = &mut inner.dump {
        let mut line = String::new();
        use core::fmt::Write as _;
        let _ = write!(line, "{}", time.as_micros());
        for p in &pairs_snapshot {
            if p.enabled {
                let _ = write!(line, " {:.4}", p.watts.value());
            }
        }
        let _ = writeln!(line, " {:.4}", total_power.value());
        let _ = dump.writer.write_all(line.as_bytes());
        if let Some(label) = marker_label {
            let _ = writeln!(dump.writer, "M {} {label}", time.as_micros());
        }
        dump.frames += 1;
    }
    if !inner.sinks.is_empty() {
        let mut raw = [0u16; SENSOR_SLOTS];
        let mut present = 0u8;
        for (slot, value) in values.iter().enumerate() {
            if let Some(v) = value {
                raw[slot] = *v;
                present |= 1 << slot;
            }
        }
        let record = FrameRecord {
            time,
            raw,
            present,
            marker: marker_label,
            total: total_power,
        };
        inner.sinks.retain_mut(|sink| sink(&record));
    }
    // Waiters are woken once per read chunk (in `reader_loop`), keyed
    // off the frame counter bumped above — not per frame here.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testharness::{one_pair_eeprom, two_amp_source, Harness};

    #[test]
    fn connect_reads_configs() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        let configs = ps.configs();
        assert_eq!(configs[0].name, "I0");
        assert!(configs[0].enabled);
        assert!(!configs[2].enabled);
        drop(ps);
        drop(h);
    }

    #[test]
    fn state_tracks_power_and_energy() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        h.advance(SimDuration::from_millis(100));
        ps.wait_for_frames(2000, Duration::from_secs(10)).unwrap();
        let state = ps.read();
        // ~24 W, quantisation-limited accuracy.
        assert!(
            (state.total_watts().value() - 24.0).abs() < 0.3,
            "power {}",
            state.total_watts()
        );
        // Energy over ~0.1 s ≈ 2.4 J (first frame contributes no dt).
        assert!(
            (state.total_energy.value() - 2.4).abs() < 0.05,
            "energy {}",
            state.total_energy
        );
        assert!((state.pairs[0].volts.value() - 12.0).abs() < 0.05);
        assert!((state.pairs[0].amps.value() - 2.0).abs() < 0.03);
        drop(ps);
        drop(h);
    }

    #[test]
    fn interval_mode_between_states() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        h.advance(SimDuration::from_millis(10));
        ps.wait_for_frames(200, Duration::from_secs(10)).unwrap();
        let first = ps.read();
        h.advance(SimDuration::from_millis(50));
        ps.wait_for_frames(1200, Duration::from_secs(10)).unwrap();
        let second = ps.read();
        let w = crate::state::watts(&first, &second);
        assert!((w.value() - 24.0).abs() < 0.3, "avg power {w}");
        let s = crate::state::seconds(&first, &second);
        assert!((s - 0.05).abs() < 0.001, "interval {s}");
        drop(ps);
        drop(h);
    }

    #[test]
    fn trace_capture_at_20khz() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        ps.begin_trace();
        h.advance(SimDuration::from_millis(50));
        ps.wait_for_frames(1000, Duration::from_secs(10)).unwrap();
        let trace = ps.end_trace();
        assert!(trace.len() >= 999, "got {} samples", trace.len());
        let rate = trace.sample_rate().unwrap();
        assert!((rate - 20_000.0).abs() < 100.0, "rate {rate}");
        drop(ps);
        drop(h);
    }

    #[test]
    fn markers_are_labelled_in_order() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        ps.begin_trace();
        h.advance(SimDuration::from_millis(5));
        ps.wait_for_frames(100, Duration::from_secs(10)).unwrap();
        ps.mark('a').unwrap();
        h.advance(SimDuration::from_millis(5));
        ps.wait_for_frames(200, Duration::from_secs(10)).unwrap();
        ps.mark('b').unwrap();
        h.advance(SimDuration::from_millis(5));
        ps.wait_for_frames(300, Duration::from_secs(10)).unwrap();
        let trace = ps.end_trace();
        let labels: Vec<char> = trace.markers().iter().map(|m| m.label).collect();
        assert_eq!(labels, vec!['a', 'b']);
        assert!(trace.markers()[0].time < trace.markers()[1].time);
        drop(ps);
        drop(h);
    }

    #[test]
    fn dump_produces_lines_and_markers() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        ps.dump_to(SharedWriter(Arc::clone(&buf)));
        ps.mark('k').unwrap();
        h.advance(SimDuration::from_millis(2));
        ps.wait_for_frames(40, Duration::from_secs(10)).unwrap();
        ps.stop_dump();
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        assert!(text.starts_with("# PowerSensor3 dump"));
        assert!(text.lines().count() > 30, "{text}");
        assert!(text
            .lines()
            .any(|l| l.starts_with("M ") && l.ends_with('k')));
        // Data lines: t_us pair0_W total_W.
        let data_line = text.lines().nth(1).unwrap();
        let fields: Vec<&str> = data_line.split_whitespace().collect();
        assert_eq!(fields.len(), 3);
        // The dump is sealed: the last line states the frame count.
        let data_lines = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with("M "))
            .count();
        assert_eq!(
            text.lines().last().unwrap(),
            format!("# end frames={data_lines}")
        );
        drop(ps);
        drop(h);
    }

    #[test]
    fn dropping_the_sensor_seals_the_dump() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        ps.dump_to(SharedWriter(Arc::clone(&buf)));
        h.advance(SimDuration::from_millis(2));
        ps.wait_for_frames(40, Duration::from_secs(10)).unwrap();
        // No stop_dump: dropping the sensor must flush and seal anyway.
        drop(ps);
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let data_lines = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with("M "))
            .count();
        assert!(data_lines >= 40, "buffered data lost on drop: {data_lines}");
        assert!(
            text.ends_with('\n')
                && text.lines().last().unwrap() == format!("# end frames={data_lines}"),
            "dump not sealed on drop: {:?}",
            text.lines().last()
        );
        drop(h);
    }

    #[test]
    fn raw_capture_averages_codes() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        let capture = ps.begin_raw_capture(100);
        h.advance(SimDuration::from_millis(10));
        let means = capture.wait(Duration::from_secs(10)).unwrap();
        // Channel 0: 1.89 V → code ≈ 1.89/3.3*1024 ≈ 586.
        assert!((means[0] - 586.0).abs() < 2.0, "ch0 mean {}", means[0]);
        // Channel 1: 2.4 V → ≈ 744.7.
        assert!((means[1] - 744.0).abs() < 2.0, "ch1 mean {}", means[1]);
        drop(ps);
        drop(h);
    }

    #[test]
    fn update_configs_rescales_readings() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        h.advance(SimDuration::from_millis(5));
        ps.wait_for_frames(100, Duration::from_secs(10)).unwrap();
        // Halve the voltage gain: reported volts should halve.
        ps.update_configs(&[(1, SensorConfig::new("U0", 3.3, 2.5, true))])
            .unwrap();
        let before = ps.frames_received();
        h.advance(SimDuration::from_millis(5));
        ps.wait_for_frames(before + 50, Duration::from_secs(10))
            .unwrap();
        let state = ps.read();
        assert!(
            (state.pairs[0].volts.value() - 6.0).abs() < 0.05,
            "volts {}",
            state.pairs[0].volts
        );
        drop(ps);
        drop(h);
    }

    #[test]
    fn invalid_config_slot_rejected() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        let err = ps
            .update_configs(&[(9, SensorConfig::unpopulated())])
            .unwrap_err();
        assert_eq!(err, PowerSensorError::InvalidSensor(9));
        drop(ps);
        drop(h);
    }

    #[test]
    fn wait_for_frames_times_out_when_idle() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        let err = ps
            .wait_for_frames(1000, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, PowerSensorError::Timeout(_)));
        drop(ps);
        drop(h);
    }

    #[test]
    fn frame_sinks_observe_frames_and_deregister() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        // This sink detaches itself after 10 frames.
        ps.add_frame_sink(move |record| {
            assert!(record.present & 0b11 == 0b11, "pair 0 samples present");
            assert!((record.total.value() - 24.0).abs() < 0.5);
            seen2.fetch_add(1, Ordering::SeqCst) < 9
        });
        h.advance(SimDuration::from_millis(10));
        ps.wait_for_frames(150, Duration::from_secs(10)).unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), 10);
        drop(ps);
        drop(h);
    }

    #[test]
    fn shared_power_sensor_derefs() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let shared = SharedPowerSensor::new(PowerSensor::connect(host_end).unwrap());
        let clone = shared.clone();
        h.advance(SimDuration::from_millis(5));
        clone.wait_for_frames(50, Duration::from_secs(10)).unwrap();
        assert!(shared.frames_received() >= 50);
        assert_eq!(Arc::strong_count(&shared.arc()), 3); // shared + clone + temp
        drop(shared);
        drop(clone);
        drop(h);
    }

    #[test]
    fn device_disconnect_marks_dead() {
        let (h, host_end) = Harness::spawn(two_amp_source(), one_pair_eeprom());
        let ps = PowerSensor::connect(host_end).unwrap();
        assert!(ps.is_alive());
        assert_eq!(ps.link_error(), None);
        drop(h); // device thread exits, endpoint drops, link dies
        let deadline = Instant::now() + Duration::from_secs(5);
        while ps.is_alive() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(!ps.is_alive());
        // The fault surface records why the reader died.
        assert_eq!(ps.link_error(), Some(TransportError::Disconnected));
    }
}
