//! STM32F411 firmware emulation.
//!
//! The real PowerSensor3 firmware (§III-B of the paper) runs on a
//! "Black Pill" STM32F411: the ADC continuously scans up to sixteen
//! analog inputs, DMA moves conversions to RAM, an interrupt handler
//! averages six consecutive samples per sensor and packs them into
//! 2-byte packets, and the main loop streams those packets to the host
//! over USB. This crate reproduces that pipeline on a virtual clock:
//!
//! * [`protocol`] — the exact wire format: 10-bit sensor values with
//!   framing/marker bits, 10-bit µs timestamp packets, and the command
//!   set (start/stop streaming, config read/write, marker, version,
//!   reboot).
//! * [`Eeprom`] / [`SensorConfig`] — the virtual EEPROM holding
//!   per-sensor conversion values (§III-B1).
//! * [`AdcSequencer`] — 10-bit conversions at 25 ADC clocks each
//!   (24 MHz clock), eight channels, six-fold averaging → one frame
//!   every 50 µs, i.e. the paper's 20 kHz sampling rate.
//! * [`Display`] — the ST7735-style status display with pre-rendered
//!   fonts and DMA transfer accounting (§III-B2).
//! * [`Device`] — ties everything together into a synchronous state
//!   machine that the testbed drives (typically from a dedicated
//!   thread, as the real MCU runs independently of the host).
//!
//! The [`AnalogSource`] trait is the boundary to the analog world: the
//! testbed implements it by wiring DUT rail states through the
//! `ps3-sensors` models.

#![forbid(unsafe_code)]

mod adc;
mod device;
mod display;
mod eeprom;
pub mod font;
pub mod protocol;

pub use adc::{AdcSequencer, AnalogSource, Frame, FRAME_INTERVAL};
pub use device::{Device, DeviceMode, COMMAND_POLL_FRAMES, FIRMWARE_VERSION};
pub use display::{Display, Framebuffer, PairReadout, DISPLAY_H, DISPLAY_W};
pub use eeprom::{Eeprom, SensorConfig, CONFIG_WIRE_SIZE, NAME_SIZE, SENSOR_SLOTS};
