//! The baseboard status display (§III-B2).
//!
//! A small ST7735 LCD (160×128, RGB565) shows the total power
//! prominently plus per-pair voltage/current/power lines. The real
//! firmware gains its update speed from two tricks this model
//! implements for real: pre-rendered fonts (see [`crate::font`]) so a
//! redraw only touches the glyph cells that are drawn, and DMA
//! transfer of those cells to the SPI controller. The model renders an
//! actual frame buffer and accounts DMA traffic for both paths, so
//! tests can assert the content *and* the bandwidth savings.

use core::fmt::Write as _;

use ps3_units::{SimDuration, SimTime};

use crate::font;

/// Display width in pixels.
pub const DISPLAY_W: usize = 160;

/// Display height in pixels.
pub const DISPLAY_H: usize = 128;

/// Frame-buffer bytes for a full redraw (160×128 @ 16 bpp).
const FULL_FRAME_BYTES: u64 = (DISPLAY_W * DISPLAY_H * 2) as u64;

/// RGB565 white (the large total-power line).
const COLOR_TOTAL: u16 = 0xFFFF;

/// RGB565 cyan-ish (per-pair lines).
const COLOR_PAIR: u16 = 0x07FF;

/// Scale of the headline total-power text.
const TOTAL_SCALE: usize = 3;

/// Scale of the per-pair lines.
const PAIR_SCALE: usize = 1;

/// A line shown on the display for one sensor pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairReadout {
    /// Rail voltage in volts.
    pub volts: f64,
    /// Current in amps.
    pub amps: f64,
}

/// The 16-bpp frame buffer of the emulated panel.
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    pixels: Vec<u16>,
}

impl Framebuffer {
    fn new() -> Self {
        Self {
            pixels: vec![0; DISPLAY_W * DISPLAY_H],
        }
    }

    fn clear(&mut self) {
        self.pixels.fill(0);
    }

    fn set(&mut self, x: usize, y: usize, color: u16) {
        if x < DISPLAY_W && y < DISPLAY_H {
            self.pixels[y * DISPLAY_W + x] = color;
        }
    }

    /// Pixel at `(x, y)` (RGB565), or 0 off-panel.
    #[must_use]
    pub fn pixel(&self, x: usize, y: usize) -> u16 {
        if x < DISPLAY_W && y < DISPLAY_H {
            self.pixels[y * DISPLAY_W + x]
        } else {
            0
        }
    }

    /// Number of lit (non-black) pixels.
    #[must_use]
    pub fn lit_pixels(&self) -> usize {
        self.pixels.iter().filter(|&&p| p != 0).count()
    }

    /// Draws `text` at `(x, y)` with the given scale/colour; returns
    /// the number of glyph cells drawn.
    fn draw_text(&mut self, text: &str, x: usize, y: usize, scale: usize, color: u16) -> u64 {
        let (cell_w, _) = font::cell_size(scale);
        let mut cells = 0u64;
        for (i, c) in text.chars().enumerate() {
            let cx = x + i * cell_w;
            let rows = font::glyph(c).unwrap_or([0b11111; font::GLYPH_H]);
            for (ry, row) in rows.iter().enumerate() {
                for rx in 0..font::GLYPH_W {
                    if row & (1 << (font::GLYPH_W - 1 - rx)) != 0 {
                        for sy in 0..scale {
                            for sx in 0..scale {
                                self.set(cx + rx * scale + sx, y + ry * scale + sy, color);
                            }
                        }
                    }
                }
            }
            cells += 1;
        }
        cells
    }
}

/// The emulated status display.
///
/// # Examples
///
/// ```
/// use ps3_firmware::Display;
/// use ps3_units::SimTime;
///
/// let mut d = Display::new();
/// d.update(SimTime::from_micros(600_000), 96.5, &[]);
/// assert!(d.text().contains("96.5 W"));
/// assert!(d.framebuffer().lit_pixels() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Display {
    lines: Vec<String>,
    fb: Framebuffer,
    last_update: Option<SimTime>,
    update_interval: SimDuration,
    updates: u64,
    dma_bytes: u64,
    prerendered_fonts: bool,
}

impl Display {
    /// Creates a display with the firmware defaults: 2 Hz updates and
    /// pre-rendered fonts enabled.
    #[must_use]
    pub fn new() -> Self {
        Self {
            lines: Vec::new(),
            fb: Framebuffer::new(),
            last_update: None,
            update_interval: SimDuration::from_millis(500),
            updates: 0,
            dma_bytes: 0,
            prerendered_fonts: true,
        }
    }

    /// Disables the pre-rendered font cache: every update pushes the
    /// whole frame buffer over SPI — the slow path the firmware's font
    /// pre-computation exists to avoid.
    pub fn set_prerendered_fonts(&mut self, enabled: bool) {
        self.prerendered_fonts = enabled;
    }

    /// Whether readings offered at `now` would trigger a redraw —
    /// callers on the hot path use this to skip preparing readout data
    /// the display would discard anyway.
    #[must_use]
    pub fn due(&self, now: SimTime) -> bool {
        match self.last_update {
            None => true,
            Some(last) => now.saturating_duration_since(last) >= self.update_interval,
        }
    }

    /// Offers new readings; redraws if the update interval elapsed.
    /// Returns `true` when a redraw happened.
    pub fn update(&mut self, now: SimTime, total_watts: f64, pairs: &[PairReadout]) -> bool {
        if !self.due(now) {
            return false;
        }
        self.last_update = Some(now);
        self.updates += 1;

        let mut lines = Vec::with_capacity(1 + pairs.len());
        lines.push(format!("{total_watts:.1} W"));
        for (i, p) in pairs.iter().enumerate() {
            let mut line = String::new();
            let _ = write!(
                line,
                "P{i}: {:.2}V {:.2}A {:.1}W",
                p.volts,
                p.amps,
                p.volts * p.amps
            );
            lines.push(line);
        }

        // Render the frame buffer.
        self.fb.clear();
        let mut cells_drawn = 0u64;
        let mut glyph_bytes = 0u64;
        let (_, total_cell_h) = font::cell_size(TOTAL_SCALE);
        let (_, pair_cell_h) = font::cell_size(PAIR_SCALE);
        let mut y = 4;
        for (idx, line) in lines.iter().enumerate() {
            let (scale, color) = if idx == 0 {
                (TOTAL_SCALE, COLOR_TOTAL)
            } else {
                (PAIR_SCALE, COLOR_PAIR)
            };
            let cells = self.fb.draw_text(line, 4, y, scale, color);
            cells_drawn += cells;
            glyph_bytes += cells * font::cell_bytes(scale);
            y += if idx == 0 {
                total_cell_h + 4
            } else {
                pair_cell_h + 2
            };
        }
        let _ = cells_drawn;

        self.dma_bytes += if self.prerendered_fonts {
            // Only the glyph cells actually drawn move over SPI.
            glyph_bytes
        } else {
            FULL_FRAME_BYTES
        };
        self.lines = lines;
        true
    }

    /// The currently shown text, one line per row.
    #[must_use]
    pub fn text(&self) -> String {
        self.lines.join("\n")
    }

    /// The rendered panel contents.
    #[must_use]
    pub fn framebuffer(&self) -> &Framebuffer {
        &self.fb
    }

    /// Number of redraws performed.
    #[must_use]
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Total bytes pushed over the (virtual) SPI DMA channel.
    #[must_use]
    pub fn dma_bytes(&self) -> u64 {
        self.dma_bytes
    }
}

impl Default for Display {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shows_total_and_pairs() {
        let mut d = Display::new();
        let pairs = [
            PairReadout {
                volts: 12.01,
                amps: 3.5,
            },
            PairReadout {
                volts: 3.29,
                amps: 1.2,
            },
        ];
        assert!(d.update(SimTime::ZERO, 46.0, &pairs));
        let text = d.text();
        assert!(text.contains("46.0 W"), "{text}");
        assert!(text.contains("P0: 12.01V 3.50A 42.0W"), "{text}");
        assert!(text.contains("P1: 3.29V 1.20A 3.9W"), "{text}");
    }

    #[test]
    fn rate_limited_to_interval() {
        let mut d = Display::new();
        assert!(d.update(SimTime::ZERO, 1.0, &[]));
        assert!(!d.update(SimTime::from_micros(100_000), 2.0, &[]));
        assert!(d.update(SimTime::from_micros(500_000), 3.0, &[]));
        assert_eq!(d.update_count(), 2);
    }

    #[test]
    fn prerendered_fonts_slash_dma_traffic() {
        let pairs = [PairReadout {
            volts: 12.0,
            amps: 8.0,
        }];
        let mut fast = Display::new();
        fast.update(SimTime::ZERO, 96.0, &pairs);
        let mut slow = Display::new();
        slow.set_prerendered_fonts(false);
        slow.update(SimTime::ZERO, 96.0, &pairs);
        assert!(
            slow.dma_bytes() > 4 * fast.dma_bytes(),
            "full redraw {} should dwarf glyph path {}",
            slow.dma_bytes(),
            fast.dma_bytes()
        );
        // Both paths render the same pixels.
        assert_eq!(fast.framebuffer(), slow.framebuffer());
    }

    #[test]
    fn stale_display_keeps_old_text() {
        let mut d = Display::new();
        d.update(SimTime::ZERO, 10.0, &[]);
        d.update(SimTime::from_micros(1), 99.0, &[]);
        assert!(d.text().contains("10.0 W"));
    }

    #[test]
    fn framebuffer_actually_renders_glyphs() {
        let mut d = Display::new();
        d.update(SimTime::ZERO, 8.0, &[]); // "8.0 W"
        let lit = d.framebuffer().lit_pixels();
        // "8.0 W": '8' has 20 set pixels ×9 (scale 3) = 180; the full
        // line lands in the hundreds-to-low-thousands range.
        assert!((300..4000).contains(&lit), "lit {lit}");
        // Different numbers produce different panels.
        let mut d2 = Display::new();
        d2.update(SimTime::ZERO, 1.0, &[]); // '1' is much thinner than '8'
        assert_ne!(d.framebuffer(), d2.framebuffer());
        assert!(d2.framebuffer().lit_pixels() < lit);
    }

    #[test]
    fn headline_is_drawn_larger_than_pair_lines() {
        let mut d = Display::new();
        let pairs = [PairReadout {
            volts: 12.0,
            amps: 1.0,
        }];
        d.update(SimTime::ZERO, 12.0, &pairs);
        // Rows 4..25 belong to the scale-3 headline; a scale-1 pair
        // line starts below. Count lit pixels per band.
        let fb = d.framebuffer();
        let band = |y0: usize, y1: usize| -> usize {
            (y0..y1)
                .map(|y| (0..DISPLAY_W).filter(|&x| fb.pixel(x, y) != 0).count())
                .sum()
        };
        let headline = band(0, 28);
        let pair_band = band(28, 48);
        assert!(
            headline > pair_band,
            "headline {headline} vs pair {pair_band}"
        );
        // Pair lines use the pair colour.
        let has_pair_color = (28..48).any(|y| (0..DISPLAY_W).any(|x| fb.pixel(x, y) == COLOR_PAIR));
        assert!(has_pair_color);
    }

    #[test]
    fn unknown_characters_render_as_filled_boxes() {
        let mut fb = Framebuffer::new();
        let cells = fb.draw_text("q", 0, 0, 1, 0xFFFF);
        assert_eq!(cells, 1);
        // A filled 5×7 box = 35 pixels.
        assert_eq!(fb.lit_pixels(), 35);
    }
}
