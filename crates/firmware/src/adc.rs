//! ADC scan sequencer with DMA-style frame buffering.
//!
//! §III-B: the ADC runs from a 24 MHz clock with 10-bit resolution and
//! a 15-cycle sampling time; each bit costs one cycle, so a conversion
//! takes 25 cycles ≈ 1.04 µs. One *frame* scans all 8 sensor channels
//! 6 times (48 conversions = 50 µs) and the CPU averages the six
//! samples per channel, producing output at exactly 20 kHz. The device
//! timestamp is latched after the third of the six scan rounds.

use ps3_sensors::AdcSpec;
use ps3_units::{SimDuration, SimTime};

/// Duration of one averaged output frame: 50 µs → 20 kHz.
pub const FRAME_INTERVAL: SimDuration = SimDuration::from_micros(50);

/// ADC clock cycles per conversion (15 sampling + 10 bit reads).
pub const CYCLES_PER_CONVERSION: u64 = 25;

/// ADC clock frequency in Hz.
pub const ADC_CLOCK_HZ: u64 = 24_000_000;

/// The boundary to the analog world.
///
/// The testbed implements this by evaluating the DUT power model at the
/// conversion instant and passing the rail state through the
/// `ps3-sensors` transfer functions. Channel numbering follows the
/// baseboard: channel `2k` is module `k`'s current sensor, channel
/// `2k+1` its voltage sensor (consecutive channels minimise the time
/// skew within a pair).
pub trait AnalogSource: Send {
    /// The instantaneous voltage at ADC input `channel` at time `now`.
    fn sample_channel(&mut self, channel: usize, now: SimTime) -> f64;

    /// Samples one whole scan sequence: conversion `k` reads channel
    /// `k % 8` at `times[k]`, writing the voltage into `out[k]`.
    ///
    /// The default forwards to [`sample_channel`] conversion by
    /// conversion; sources that pay a per-call cost (the testbed locks
    /// the DUT model on every read) override this to amortise it over
    /// the frame. Implementations must preserve the per-conversion
    /// evaluation order — sensor transfer functions are stateful.
    ///
    /// [`sample_channel`]: AnalogSource::sample_channel
    fn sample_frame(&mut self, times: &[SimTime], out: &mut [f64]) {
        debug_assert_eq!(times.len(), out.len());
        for (k, (t, o)) in times.iter().zip(out.iter_mut()).enumerate() {
            *o = self.sample_channel(k % 8, *t);
        }
    }
}

impl<F> AnalogSource for F
where
    F: FnMut(usize, SimTime) -> f64 + Send,
{
    fn sample_channel(&mut self, channel: usize, now: SimTime) -> f64 {
        self(channel, now)
    }
}

/// One completed averaging frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Averaged 10-bit values, one per channel.
    pub values: [u16; 8],
    /// When the device timestamp was latched (mid-frame).
    pub timestamp_at: SimTime,
    /// First instant after the frame (start + 50 µs).
    pub end: SimTime,
}

/// The scan/convert/average engine.
///
/// # Examples
///
/// ```
/// use ps3_firmware::{AdcSequencer, FRAME_INTERVAL};
/// use ps3_units::SimTime;
///
/// let mut seq = AdcSequencer::new();
/// // A source holding every channel at mid-scale.
/// let frame = seq.run_frame(&mut |_ch, _t| 1.65f64, SimTime::ZERO);
/// assert_eq!(frame.values[0], 512);
/// assert_eq!(frame.end, SimTime::ZERO + FRAME_INTERVAL);
/// ```
#[derive(Debug, Clone)]
pub struct AdcSequencer {
    spec: AdcSpec,
    averages: u32,
    /// Conversion-time offsets within one frame, cached once per
    /// averaging config (they never change between frames).
    offsets: Vec<SimDuration>,
    /// Scratch buffers reused across frames so the hot path never
    /// allocates.
    scratch_times: Vec<SimTime>,
    scratch_samples: Vec<f64>,
}

impl AdcSequencer {
    /// A sequencer with the PowerSensor3 configuration (10-bit, 6-fold
    /// averaging).
    #[must_use]
    pub fn new() -> Self {
        Self::with_averages(6)
    }

    /// A sequencer with a custom averaging depth (ablation benches).
    ///
    /// # Panics
    ///
    /// Panics if `averages` is zero.
    #[must_use]
    pub fn with_averages(averages: u32) -> Self {
        assert!(averages > 0, "averaging depth must be non-zero");
        let conversions = averages as usize * 8;
        let mut seq = Self {
            spec: AdcSpec::POWERSENSOR3,
            averages,
            offsets: Vec::with_capacity(conversions),
            scratch_times: vec![SimTime::ZERO; conversions],
            scratch_samples: vec![0.0; conversions],
        };
        for n in 0..conversions as u64 {
            let offset = seq.conversion_offset(n);
            seq.offsets.push(offset);
        }
        seq
    }

    /// The ADC spec used for quantisation.
    #[must_use]
    pub fn spec(&self) -> &AdcSpec {
        &self.spec
    }

    /// Averaging depth per output sample.
    #[must_use]
    pub fn averages(&self) -> u32 {
        self.averages
    }

    /// Duration of one output frame for this averaging depth.
    #[must_use]
    pub fn frame_interval(&self) -> SimDuration {
        let cycles = u64::from(self.averages) * 8 * CYCLES_PER_CONVERSION;
        SimDuration::from_nanos(cycles * 1_000_000_000 / ADC_CLOCK_HZ)
    }

    /// Runs one frame starting at `start`: 8 channels × `averages`
    /// conversions, each at its exact conversion instant, then averages
    /// per channel.
    ///
    /// The source sees one [`AnalogSource::sample_frame`] call covering
    /// the whole scan sequence; the timestamp is latched after round
    /// `averages / 2` ("after processing 3 out of the 6 samples to be
    /// averaged").
    pub fn run_frame(&mut self, source: &mut dyn AnalogSource, start: SimTime) -> Frame {
        for (t, offset) in self.scratch_times.iter_mut().zip(&self.offsets) {
            *t = start + *offset;
        }
        source.sample_frame(&self.scratch_times, &mut self.scratch_samples);
        let mut sums = [0u32; 8];
        for (k, &volts) in self.scratch_samples.iter().enumerate() {
            sums[k % 8] += u32::from(self.spec.quantize(volts));
        }
        let timestamp_at = start + self.offsets[(self.averages / 2) as usize * 8];
        let values =
            core::array::from_fn(|ch| ((sums[ch] + self.averages / 2) / self.averages) as u16);
        Frame {
            values,
            timestamp_at,
            end: start + self.frame_interval(),
        }
    }

    /// Runs `frames` consecutive frames starting at `start`, appending
    /// each to `out`. `out` is not cleared, so a caller-owned buffer
    /// can be reused across batches without reallocating.
    pub fn run_frames_into(
        &mut self,
        source: &mut dyn AnalogSource,
        start: SimTime,
        frames: usize,
        out: &mut Vec<Frame>,
    ) {
        out.reserve(frames);
        let mut cursor = start;
        for _ in 0..frames {
            let frame = self.run_frame(source, cursor);
            cursor = frame.end;
            out.push(frame);
        }
    }

    /// Time offset of conversion number `n` within a frame.
    fn conversion_offset(&self, n: u64) -> SimDuration {
        let cycles = n * CYCLES_PER_CONVERSION;
        SimDuration::from_nanos(cycles * 1_000_000_000 / ADC_CLOCK_HZ)
    }
}

impl Default for AdcSequencer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_interval_is_50_us() {
        assert_eq!(AdcSequencer::new().frame_interval(), FRAME_INTERVAL);
    }

    #[test]
    fn frame_interval_scales_with_averaging() {
        // 3-fold averaging halves the frame time → 40 kHz.
        let seq = AdcSequencer::with_averages(3);
        assert_eq!(seq.frame_interval(), SimDuration::from_micros(25));
    }

    #[test]
    fn constant_input_yields_constant_code() {
        let mut seq = AdcSequencer::new();
        let frame = seq.run_frame(&mut |_c, _t| 0.825f64, SimTime::ZERO);
        for v in frame.values {
            assert_eq!(v, 256);
        }
    }

    #[test]
    fn channels_are_independent() {
        let mut seq = AdcSequencer::new();
        let frame = seq.run_frame(&mut |ch: usize, _t: SimTime| ch as f64 * 0.4, SimTime::ZERO);
        for ch in 1..8 {
            assert!(frame.values[ch] > frame.values[ch - 1]);
        }
    }

    #[test]
    fn conversions_happen_at_exact_instants() {
        let mut seq = AdcSequencer::new();
        let mut times: Vec<u64> = Vec::new();
        let mut src = |_ch: usize, t: SimTime| {
            times.push(t.as_nanos());
            1.0f64
        };
        let start = SimTime::from_micros(100);
        seq.run_frame(&mut src, start);
        assert_eq!(times.len(), 48);
        assert_eq!(times[0], start.as_nanos());
        // Conversion spacing: 25 cycles at 24 MHz ≈ 1041.67 ns.
        let d01 = times[1] - times[0];
        assert!((1040..=1042).contains(&d01), "spacing {d01}");
        // The whole frame spans just under 50 µs.
        let span = times[47] - times[0];
        assert!(span < 50_000, "span {span}");
        assert!(span > 48_000, "span {span}");
    }

    #[test]
    fn timestamp_latched_mid_frame() {
        let mut seq = AdcSequencer::new();
        let frame = seq.run_frame(&mut |_c, _t| 1.0f64, SimTime::ZERO);
        let mid = frame.timestamp_at.as_nanos();
        assert_eq!(mid, 24 * 25 * 1_000_000_000 / 24_000_000);
        assert_eq!(mid, 25_000);
    }

    #[test]
    fn averaging_rounds_to_nearest() {
        // 6 samples alternating between codes 100 and 101 average to
        // 100.5 → rounds to 101 with the +half correction.
        let mut seq = AdcSequencer::new();
        let lsb = AdcSpec::POWERSENSOR3.lsb();
        let mut i = 0u32;
        let frame = seq.run_frame(
            &mut move |_ch: usize, _t: SimTime| {
                i += 1;
                if i.is_multiple_of(2) {
                    100.4 * lsb
                } else {
                    101.4 * lsb
                }
            },
            SimTime::ZERO,
        );
        for v in frame.values {
            assert!(v == 100 || v == 101, "got {v}");
        }
    }

    #[test]
    fn closure_sources_work_via_blanket_impl() {
        fn takes_source(_s: &mut dyn AnalogSource) {}
        let mut f = |_c: usize, _t: SimTime| 0.0f64;
        takes_source(&mut f);
    }
}
