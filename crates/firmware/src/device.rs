//! The device state machine: firmware main loop on a virtual clock.

use ps3_transport::{Transport, TransportError};
use ps3_units::SimTime;

use crate::adc::{AdcSequencer, AnalogSource};
use crate::display::{Display, PairReadout};
use crate::eeprom::{Eeprom, SENSOR_SLOTS};
use crate::protocol::{opcode, Command, CommandParser, Packet, VALUE_MASK};

/// Version string returned by the `Version` command.
pub const FIRMWARE_VERSION: &str = "PowerSensor3-rs 1.0.0-sim";

/// Frames sampled per command poll when streaming through
/// [`Device::run_until`] — the batch size of the hot path. 64 frames is
/// 3.2 ms of stream at the default 20 kHz rate: long enough to
/// amortise dispatch, short enough that host commands are still seen
/// promptly.
pub const COMMAND_POLL_FRAMES: usize = 64;

/// Operating mode of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceMode {
    /// Normal operation: commands and streaming work.
    Normal,
    /// DFU (firmware-update) mode: only a reboot brings it back.
    Dfu,
}

/// The emulated PowerSensor3 device.
///
/// Owns the analog source (the testbed's wiring of DUT rails through
/// sensor models), the virtual EEPROM, the ADC sequencer, the display,
/// and the streaming state. The device is *synchronous*: callers (the
/// testbed's device thread) repeatedly invoke [`Device::run_until`] to
/// advance the firmware clock, and the device reads commands/writes
/// sensor packets on the supplied transport as it goes.
///
/// # Examples
///
/// ```
/// use ps3_firmware::{Device, Eeprom};
/// use ps3_transport::{Transport, VirtualSerial};
/// use ps3_units::SimTime;
///
/// let (host, dev_end) = VirtualSerial::pair();
/// // Mid-scale on all channels.
/// let mut dev = Device::new(|_ch, _t| 1.65f64, Eeprom::new());
/// host.write_all(b"S").unwrap(); // start streaming
/// dev.run_until(&dev_end, SimTime::from_micros(200));
/// assert!(host.available() > 0);
/// ```
#[derive(Debug)]
pub struct Device<S> {
    source: S,
    eeprom: Eeprom,
    sequencer: AdcSequencer,
    clock: SimTime,
    streaming: bool,
    marker_pending: bool,
    mode: DeviceMode,
    display: Display,
    parser: CommandParser,
    frames_emitted: u64,
    host_connected: bool,
    /// Virtual time at which the device hard-crashes (simulation
    /// fault-injection hook).
    crash_at: Option<SimTime>,
    crashed: bool,
    /// Frame and wire buffers reused across batches (hot path never
    /// allocates).
    frame_buf: Vec<crate::adc::Frame>,
    tx_buf: Vec<u8>,
}

impl<S: AnalogSource> Device<S> {
    /// Creates a device reading from `source` with the given EEPROM
    /// contents.
    pub fn new(source: S, eeprom: Eeprom) -> Self {
        Self {
            source,
            eeprom,
            sequencer: AdcSequencer::new(),
            clock: SimTime::ZERO,
            streaming: false,
            marker_pending: false,
            mode: DeviceMode::Normal,
            display: Display::new(),
            parser: CommandParser::new(),
            frames_emitted: 0,
            host_connected: true,
            crash_at: None,
            crashed: false,
            frame_buf: Vec::with_capacity(COMMAND_POLL_FRAMES),
            tx_buf: Vec::with_capacity(COMMAND_POLL_FRAMES * 2 * (1 + SENSOR_SLOTS)),
        }
    }

    /// Replaces the ADC sequencer (ablation benches use non-default
    /// averaging depths).
    pub fn set_sequencer(&mut self, sequencer: AdcSequencer) {
        self.sequencer = sequencer;
    }

    /// Current firmware clock.
    #[must_use]
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Whether the device is streaming sensor data.
    #[must_use]
    pub fn is_streaming(&self) -> bool {
        self.streaming
    }

    /// Current operating mode.
    #[must_use]
    pub fn mode(&self) -> DeviceMode {
        self.mode
    }

    /// The EEPROM (tests and factory provisioning).
    #[must_use]
    pub fn eeprom(&self) -> &Eeprom {
        &self.eeprom
    }

    /// Mutable EEPROM access (factory provisioning before boot).
    pub fn eeprom_mut(&mut self) -> &mut Eeprom {
        &mut self.eeprom
    }

    /// The status display.
    #[must_use]
    pub fn display(&self) -> &Display {
        &self.display
    }

    /// Mutable display access (ablation configuration).
    pub fn display_mut(&mut self) -> &mut Display {
        &mut self.display
    }

    /// Analog source access (testbeds poke DUT state through this).
    pub fn source_mut(&mut self) -> &mut S {
        &mut self.source
    }

    /// Number of sample frames emitted since boot.
    #[must_use]
    pub fn frames_emitted(&self) -> u64 {
        self.frames_emitted
    }

    /// `false` once the host side of the transport has gone away.
    #[must_use]
    pub fn host_connected(&self) -> bool {
        self.host_connected
    }

    /// Schedules a hard crash: once the firmware clock reaches `at`,
    /// the device freezes — no more frames, no command processing —
    /// exactly as a sudden power loss or firmware fault would look to
    /// the host. Simulation fault-injection hook.
    pub fn schedule_crash(&mut self, at: SimTime) {
        self.crash_at = Some(at);
    }

    /// `true` once a scheduled crash has fired.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Fires the scheduled crash if the clock has reached it.
    fn check_crash(&mut self) -> bool {
        if !self.crashed && self.crash_at.is_some_and(|at| self.clock >= at) {
            self.crashed = true;
            self.streaming = false;
        }
        self.crashed
    }

    /// Advances the firmware until its clock reaches `target`,
    /// processing commands between frame batches and streaming sample
    /// packets when enabled.
    ///
    /// Frames are sampled, encoded, and written in batches of up to
    /// [`COMMAND_POLL_FRAMES`] — one transport write per batch instead
    /// of one per frame — with the command queue drained between
    /// batches.
    pub fn run_until(&mut self, transport: &dyn Transport, target: SimTime) {
        if self.check_crash() {
            return;
        }
        self.process_commands(transport);
        // A scheduled crash caps how far this call may run, so the
        // device dies within one frame of its crash time rather than
        // at batch granularity.
        let target = match self.crash_at {
            Some(at) if at < target => at,
            _ => target,
        };
        while self.clock < target {
            if self.streaming && self.mode == DeviceMode::Normal {
                // Same frame count as stepping one frame at a time:
                // keep sampling while the clock is short of the target,
                // so the last frame may overshoot it.
                let remaining = target.saturating_duration_since(self.clock).as_nanos();
                let interval = self.sequencer.frame_interval().as_nanos().max(1);
                let frames = remaining.div_ceil(interval).min(COMMAND_POLL_FRAMES as u64);
                self.run_frame_batch(transport, frames as usize);
            } else {
                // Nothing to sample: fast-forward. (Long idle gaps —
                // e.g. between probes of the 50-hour stability run —
                // would otherwise cost one loop iteration per 50 µs.)
                self.clock = target;
            }
            if self.check_crash() {
                return;
            }
            self.process_commands(transport);
        }
        self.check_crash();
    }

    /// Runs exactly one 50 µs frame (or idles one frame interval when
    /// not streaming).
    pub fn step_frame(&mut self, transport: &dyn Transport) {
        if self.check_crash() {
            return;
        }
        if self.streaming && self.mode == DeviceMode::Normal {
            self.run_frame_batch(transport, 1);
        } else {
            self.clock += self.sequencer.frame_interval();
        }
    }

    /// Samples `frames` consecutive frames, encodes them into one wire
    /// buffer, writes it in a single transport call, and feeds the
    /// display. Buffers are reused across calls.
    fn run_frame_batch(&mut self, transport: &dyn Transport, frames: usize) {
        self.frame_buf.clear();
        self.sequencer
            .run_frames_into(&mut self.source, self.clock, frames, &mut self.frame_buf);
        self.tx_buf.clear();
        for i in 0..self.frame_buf.len() {
            let frame = self.frame_buf[i];
            let ts = Packet::Timestamp {
                micros: (frame.timestamp_at.as_micros() & u64::from(VALUE_MASK)) as u16,
            };
            self.tx_buf.extend_from_slice(&ts.encode());
            for (slot, &value) in frame.values.iter().enumerate() {
                if !self.eeprom.read(slot).enabled {
                    continue;
                }
                // A pending marker rides on the first sensor-0 sample.
                let marker = slot == 0 && self.marker_pending;
                if marker {
                    self.marker_pending = false;
                }
                let pkt = Packet::Sample {
                    sensor: slot as u8,
                    marker,
                    value,
                };
                self.tx_buf.extend_from_slice(&pkt.encode());
            }
        }
        if transport.write_all(&self.tx_buf).is_err() {
            // Host is gone: stop streaming, keep the clock running.
            self.streaming = false;
            self.host_connected = false;
        }
        for i in 0..self.frame_buf.len() {
            let frame = self.frame_buf[i];
            self.update_display(&frame);
        }
        if let Some(last) = self.frame_buf.last() {
            self.clock = last.end;
            self.frames_emitted += self.frame_buf.len() as u64;
        }
    }

    fn update_display(&mut self, frame: &crate::adc::Frame) {
        // The display self-throttles to 2 Hz; skip the readout math
        // entirely for frames it will ignore.
        if !self.display.due(frame.end) {
            return;
        }
        let adc = *self.sequencer.spec();
        let mut pairs = [PairReadout {
            volts: 0.0,
            amps: 0.0,
        }; SENSOR_SLOTS / 2];
        let mut used = 0;
        let mut total = 0.0;
        for pair in 0..SENSOR_SLOTS / 2 {
            let i_cfg = self.eeprom.read(2 * pair);
            let u_cfg = self.eeprom.read(2 * pair + 1);
            if !(i_cfg.enabled && u_cfg.enabled) {
                continue;
            }
            let v_i = adc.to_volts(frame.values[2 * pair]);
            let v_u = adc.to_volts(frame.values[2 * pair + 1]);
            let amps = (v_i - f64::from(i_cfg.vref) / 2.0) / f64::from(i_cfg.gain);
            let volts = v_u * f64::from(u_cfg.gain);
            total += volts * amps;
            pairs[used] = PairReadout { volts, amps };
            used += 1;
        }
        self.display.update(frame.end, total, &pairs[..used]);
    }

    /// Drains pending host bytes and executes completed commands.
    pub fn process_commands(&mut self, transport: &dyn Transport) {
        if self.crashed {
            return;
        }
        let mut buf = [0u8; 256];
        while transport.available() > 0 {
            match transport.read(&mut buf, Some(std::time::Duration::ZERO)) {
                Ok(n) => {
                    let cmds = self.parser.push_slice(&buf[..n]);
                    for cmd in cmds {
                        self.execute(transport, cmd);
                    }
                }
                Err(TransportError::TimedOut) => break,
                Err(TransportError::Disconnected) => {
                    self.streaming = false;
                    self.host_connected = false;
                    break;
                }
                Err(_) => break,
            }
        }
    }

    fn execute(&mut self, transport: &dyn Transport, cmd: Command) {
        if self.mode == DeviceMode::Dfu {
            // In DFU mode only a reboot (i.e. "reflash complete") works.
            if cmd == Command::Reboot {
                self.reboot();
            }
            return;
        }
        match cmd {
            Command::StartStreaming => self.streaming = true,
            Command::StopStreaming => self.streaming = false,
            Command::Marker => self.marker_pending = true,
            Command::ReadConfig => {
                if !self.streaming {
                    let mut bytes = Vec::new();
                    for slot in 0..SENSOR_SLOTS {
                        bytes.push(opcode::CONFIG_RECORD);
                        bytes.push(slot as u8);
                        bytes.extend_from_slice(&self.eeprom.read(slot).to_wire());
                    }
                    bytes.push(opcode::CONFIG_END);
                    let _ = transport.write_all(&bytes);
                }
            }
            Command::WriteConfig { sensor, config } => {
                if !self.streaming && (sensor as usize) < SENSOR_SLOTS {
                    self.eeprom.write(sensor as usize, config);
                }
            }
            Command::Version => {
                if !self.streaming {
                    let mut bytes = vec![opcode::VERSION_REPLY, FIRMWARE_VERSION.len() as u8];
                    bytes.extend_from_slice(FIRMWARE_VERSION.as_bytes());
                    let _ = transport.write_all(&bytes);
                }
            }
            Command::Reboot => self.reboot(),
            Command::RebootToDfu => {
                self.streaming = false;
                self.mode = DeviceMode::Dfu;
            }
        }
    }

    fn reboot(&mut self) {
        self.streaming = false;
        self.marker_pending = false;
        self.mode = DeviceMode::Normal;
        self.parser = CommandParser::new();
        // The EEPROM and the clock survive a reboot.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eeprom::SensorConfig;
    use crate::protocol::StreamDecoder;
    use ps3_transport::VirtualSerial;
    use ps3_units::SimDuration;

    fn populated_eeprom() -> Eeprom {
        let mut e = Eeprom::new();
        for pair in 0..4 {
            e.write(
                2 * pair,
                SensorConfig::new(&format!("I{pair}"), 3.3, 0.12, true),
            );
            e.write(
                2 * pair + 1,
                SensorConfig::new(&format!("U{pair}"), 3.3, 5.0, true),
            );
        }
        e
    }

    fn midscale_device() -> Device<impl AnalogSource> {
        Device::new(|_ch: usize, _t: SimTime| 1.65f64, populated_eeprom())
    }

    #[test]
    fn no_stream_until_start_command() {
        let (host, dev_end) = VirtualSerial::pair();
        let mut dev = midscale_device();
        dev.run_until(&dev_end, SimTime::from_micros(500));
        assert_eq!(host.available(), 0);
        assert_eq!(dev.frames_emitted(), 0);
        // But the clock advanced anyway.
        assert!(dev.clock() >= SimTime::from_micros(500));
    }

    #[test]
    fn streaming_emits_frames_at_20khz() {
        let (host, dev_end) = VirtualSerial::pair();
        let mut dev = midscale_device();
        host.write_all(b"S").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(1000));
        assert_eq!(dev.frames_emitted(), 20); // 1 ms / 50 µs
                                              // Each frame: 1 timestamp + 8 sensors = 18 bytes.
        assert_eq!(host.available(), 20 * 18);
    }

    #[test]
    fn frame_contains_timestamp_then_samples() {
        let (host, dev_end) = VirtualSerial::pair();
        let mut dev = midscale_device();
        host.write_all(b"S").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(50));
        let mut bytes = vec![0u8; host.available()];
        host.read_exact(&mut bytes).unwrap();
        let mut dec = StreamDecoder::new();
        let packets = dec.push_slice(&bytes);
        assert_eq!(packets.len(), 9);
        assert!(matches!(packets[0], Packet::Timestamp { micros: 25 }));
        for (i, p) in packets[1..].iter().enumerate() {
            match p {
                Packet::Sample { sensor, value, .. } => {
                    assert_eq!(*sensor as usize, i);
                    assert_eq!(*value, 512); // mid-scale
                }
                Packet::Timestamp { .. } => panic!("unexpected timestamp"),
            }
        }
    }

    #[test]
    fn disabled_sensors_are_skipped() {
        let (host, dev_end) = VirtualSerial::pair();
        let mut eeprom = populated_eeprom();
        eeprom.write(6, SensorConfig::unpopulated());
        eeprom.write(7, SensorConfig::unpopulated());
        let mut dev = Device::new(|_c: usize, _t: SimTime| 1.0f64, eeprom);
        host.write_all(b"S").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(50));
        let mut bytes = vec![0u8; host.available()];
        host.read_exact(&mut bytes).unwrap();
        let packets = StreamDecoder::new().push_slice(&bytes);
        assert_eq!(packets.len(), 7); // timestamp + 6 enabled sensors
    }

    #[test]
    fn marker_bit_set_on_next_sensor0_sample() {
        let (host, dev_end) = VirtualSerial::pair();
        let mut dev = midscale_device();
        host.write_all(b"S").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(50));
        host.write_all(b"M").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(150));
        let mut bytes = vec![0u8; host.available()];
        host.read_exact(&mut bytes).unwrap();
        let packets = StreamDecoder::new().push_slice(&bytes);
        let marked: Vec<_> = packets
            .iter()
            .filter(|p| matches!(p, Packet::Sample { marker: true, .. }))
            .collect();
        assert_eq!(marked.len(), 1, "exactly one marked sample");
        assert!(matches!(
            marked[0],
            Packet::Sample {
                sensor: 0,
                marker: true,
                ..
            }
        ));
    }

    #[test]
    fn config_readback_only_when_not_streaming() {
        let (host, dev_end) = VirtualSerial::pair();
        let mut dev = midscale_device();
        // While streaming, R is ignored.
        host.write_all(b"S").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(50));
        let streamed = host.available();
        host.write_all(b"R").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(100));
        assert_eq!(host.available() - streamed, 18, "only the next frame");
        // Stop, then R answers with 8 records + end byte.
        host.write_all(b"X").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(150));
        let mut drain = vec![0u8; host.available()];
        host.read_exact(&mut drain).unwrap();
        host.write_all(b"R").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(200));
        let expect = 8 * (2 + crate::eeprom::CONFIG_WIRE_SIZE) + 1;
        assert_eq!(host.available(), expect);
    }

    #[test]
    fn write_config_persists() {
        let (host, dev_end) = VirtualSerial::pair();
        let mut dev = midscale_device();
        let cfg = SensorConfig::new("Calibrated", 3.31, 0.121, true);
        host.write_all(
            &Command::WriteConfig {
                sensor: 2,
                config: cfg.clone(),
            }
            .encode(),
        )
        .unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(50));
        assert_eq!(dev.eeprom().read(2), &cfg);
    }

    #[test]
    fn version_reply() {
        let (host, dev_end) = VirtualSerial::pair();
        let mut dev = midscale_device();
        host.write_all(b"V").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(50));
        let mut head = [0u8; 2];
        host.read_exact(&mut head).unwrap();
        assert_eq!(head[0], opcode::VERSION_REPLY);
        let mut name = vec![0u8; head[1] as usize];
        host.read_exact(&mut name).unwrap();
        assert_eq!(name, FIRMWARE_VERSION.as_bytes());
    }

    #[test]
    fn dfu_mode_ignores_everything_but_reboot() {
        let (host, dev_end) = VirtualSerial::pair();
        let mut dev = midscale_device();
        host.write_all(b"D").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(50));
        assert_eq!(dev.mode(), DeviceMode::Dfu);
        host.write_all(b"S").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(150));
        assert!(!dev.is_streaming());
        assert_eq!(host.available(), 0);
        host.write_all(b"Z").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(200));
        assert_eq!(dev.mode(), DeviceMode::Normal);
    }

    #[test]
    fn reboot_stops_streaming_but_keeps_eeprom() {
        let (host, dev_end) = VirtualSerial::pair();
        let mut dev = midscale_device();
        host.write_all(b"S").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(100));
        assert!(dev.is_streaming());
        host.write_all(b"Z").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(200));
        assert!(!dev.is_streaming());
        assert!(dev.eeprom().read(0).enabled);
    }

    #[test]
    fn host_disconnect_stops_streaming() {
        let (host, dev_end) = VirtualSerial::pair();
        let mut dev = midscale_device();
        host.write_all(b"S").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(100));
        drop(host);
        dev.run_until(&dev_end, SimTime::from_micros(100_000));
        assert!(!dev.is_streaming());
        assert!(!dev.host_connected());
    }

    #[test]
    fn tiny_usb_buffer_applies_backpressure_without_loss() {
        // A 64-byte endpoint buffer forces the device to block on
        // write_all mid-frame; a slow host must still receive every
        // byte in order.
        let (host, dev_end) = ps3_transport::VirtualSerial::pair_with_capacity(64);
        let mut dev = midscale_device();
        host.write_all(b"S").unwrap();
        let producer = std::thread::spawn(move || {
            dev.run_until(&dev_end, SimTime::from_micros(5_000));
            dev.frames_emitted()
        });
        let mut bytes = Vec::new();
        let mut buf = [0u8; 16];
        while bytes.len() < 100 * 18 {
            let n = host
                .read(&mut buf, Some(std::time::Duration::from_secs(5)))
                .unwrap();
            bytes.extend_from_slice(&buf[..n]);
            // Simulate a slow host.
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        let frames = producer.join().unwrap();
        assert_eq!(frames, 100);
        let packets = StreamDecoder::new().push_slice(&bytes);
        assert_eq!(packets.len(), 100 * 9);
    }

    #[test]
    fn scheduled_crash_freezes_the_device() {
        let (host, dev_end) = VirtualSerial::pair();
        let mut dev = midscale_device();
        host.write_all(b"S").unwrap();
        dev.schedule_crash(SimTime::from_micros(500));
        dev.run_until(&dev_end, SimTime::from_micros(2_000));
        assert!(dev.is_crashed());
        assert!(!dev.is_streaming());
        // The device ran up to (within one frame of) the crash time and
        // no further: 500 µs / 50 µs = 10 frames.
        assert_eq!(dev.frames_emitted(), 10);
        assert!(dev.clock() <= SimTime::from_micros(550));
        // A crashed device is inert: no frames, no command replies.
        let before = host.available();
        host.write_all(b"V").unwrap();
        dev.run_until(&dev_end, SimTime::from_micros(10_000));
        dev.step_frame(&dev_end);
        assert_eq!(host.available(), before);
        assert_eq!(dev.frames_emitted(), 10);
    }

    #[test]
    fn display_tracks_power() {
        let (host, dev_end) = VirtualSerial::pair();
        // Current channels at mid-scale + 0.12 V (1 A), voltage channels
        // at 2.4 V (12 V rail through gain 5).
        let mut dev = Device::new(
            |ch: usize, _t: SimTime| {
                if ch.is_multiple_of(2) {
                    1.65 + 0.12
                } else {
                    2.4
                }
            },
            populated_eeprom(),
        );
        host.write_all(b"S").unwrap();
        dev.run_until(&dev_end, SimTime::ZERO + SimDuration::from_millis(1));
        let text = dev.display().text();
        // 4 pairs × 12 V × ~1 A ≈ 48 W total.
        assert!(text.contains("W"), "{text}");
        assert!(dev.display().update_count() >= 1);
        let total: f64 = text
            .lines()
            .next()
            .unwrap()
            .trim_end_matches(" W")
            .parse()
            .unwrap();
        assert!((total - 48.0).abs() < 2.0, "total {total}");
    }
}
