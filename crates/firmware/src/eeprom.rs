//! Virtual EEPROM holding per-sensor configuration (§III-B1).
//!
//! The STM32 has no true EEPROM; the real firmware emulates one in
//! flash. Stored per sensor: a name, the reference voltage, the
//! sensitivity (current sensors) or gain (voltage sensors), and an
//! enabled flag. The host library reads these at connect time so users
//! never have to track which physical modules are plugged in.

use crate::protocol::ProtocolError;

/// Number of sensor slots on the baseboard: 4 modules × 2 sensors.
pub const SENSOR_SLOTS: usize = 8;

/// Maximum stored name length in bytes.
pub const NAME_SIZE: usize = 16;

/// Size of one configuration record on the wire:
/// name + vref (f32) + gain (f32) + enabled + reserved.
pub const CONFIG_WIRE_SIZE: usize = NAME_SIZE + 4 + 4 + 1 + 1;

/// Conversion values for one sensor slot.
///
/// For a current sensor (even slot) `gain` is the Hall sensitivity in
/// V/A and `vref` is the calibrated mid-scale reference: the host
/// computes `I = (V_adc − vref/2) / gain`. For a voltage sensor (odd
/// slot) `gain` is rail volts per ADC volt: `U = V_adc · gain`.
///
/// # Examples
///
/// ```
/// use ps3_firmware::SensorConfig;
///
/// let cfg = SensorConfig::new("Slot-12V-10A", 3.3, 0.12, true);
/// let wire = cfg.to_wire();
/// assert_eq!(SensorConfig::from_wire(&wire).unwrap(), cfg);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensorConfig {
    /// Human-readable sensor name (truncated to [`NAME_SIZE`] bytes).
    pub name: String,
    /// Reference voltage; mid-scale for current sensors.
    pub vref: f32,
    /// Sensitivity (V/A) for current sensors, gain (V/V) for voltage
    /// sensors.
    pub gain: f32,
    /// Whether the slot is populated and streaming.
    pub enabled: bool,
}

impl SensorConfig {
    /// Creates a configuration record; the name is truncated to
    /// [`NAME_SIZE`] bytes on a character boundary.
    #[must_use]
    pub fn new(name: &str, vref: f32, gain: f32, enabled: bool) -> Self {
        let mut name = name.to_owned();
        while name.len() > NAME_SIZE {
            name.pop();
        }
        Self {
            name,
            vref,
            gain,
            enabled,
        }
    }

    /// A disabled, empty slot.
    #[must_use]
    pub fn unpopulated() -> Self {
        Self::new("", 3.3, 1.0, false)
    }

    /// Serialises to the fixed-size wire/EEPROM record.
    #[must_use]
    pub fn to_wire(&self) -> [u8; CONFIG_WIRE_SIZE] {
        let mut out = [0u8; CONFIG_WIRE_SIZE];
        let name = self.name.as_bytes();
        out[..name.len()].copy_from_slice(name);
        out[NAME_SIZE..NAME_SIZE + 4].copy_from_slice(&self.vref.to_le_bytes());
        out[NAME_SIZE + 4..NAME_SIZE + 8].copy_from_slice(&self.gain.to_le_bytes());
        out[NAME_SIZE + 8] = u8::from(self.enabled);
        out
    }

    /// Parses a wire/EEPROM record.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::BadConfig`] when the name is not valid
    /// UTF-8 or numeric fields are not finite.
    pub fn from_wire(bytes: &[u8; CONFIG_WIRE_SIZE]) -> Result<Self, ProtocolError> {
        let name_end = bytes[..NAME_SIZE]
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(NAME_SIZE);
        let name = core::str::from_utf8(&bytes[..name_end])
            .map_err(|_| ProtocolError::BadConfig)?
            .to_owned();
        let vref = f32::from_le_bytes(bytes[NAME_SIZE..NAME_SIZE + 4].try_into().expect("size"));
        let gain = f32::from_le_bytes(
            bytes[NAME_SIZE + 4..NAME_SIZE + 8]
                .try_into()
                .expect("size"),
        );
        if !vref.is_finite() || !gain.is_finite() {
            return Err(ProtocolError::BadConfig);
        }
        Ok(Self {
            name,
            vref,
            gain,
            enabled: bytes[NAME_SIZE + 8] != 0,
        })
    }
}

impl Default for SensorConfig {
    fn default() -> Self {
        Self::unpopulated()
    }
}

/// The virtual EEPROM: eight sensor-slot records plus a write counter
/// (flash emulation in the real firmware wears the flash, so the
/// counter is a useful diagnostic).
#[derive(Debug, Clone, PartialEq)]
pub struct Eeprom {
    slots: [SensorConfig; SENSOR_SLOTS],
    writes: u64,
}

impl Eeprom {
    /// An EEPROM with all slots unpopulated.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: core::array::from_fn(|_| SensorConfig::unpopulated()),
            writes: 0,
        }
    }

    /// Reads the record for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= SENSOR_SLOTS`.
    #[must_use]
    pub fn read(&self, slot: usize) -> &SensorConfig {
        &self.slots[slot]
    }

    /// Writes the record for `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= SENSOR_SLOTS`.
    pub fn write(&mut self, slot: usize, config: SensorConfig) {
        self.slots[slot] = config;
        self.writes += 1;
    }

    /// All slots in index order.
    #[must_use]
    pub fn slots(&self) -> &[SensorConfig; SENSOR_SLOTS] {
        &self.slots
    }

    /// Number of write operations performed (flash-wear diagnostic).
    #[must_use]
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

impl Default for Eeprom {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let cfg = SensorConfig::new("PCIe-8pin-20A", 3.302, 0.06, true);
        assert_eq!(SensorConfig::from_wire(&cfg.to_wire()).unwrap(), cfg);
    }

    #[test]
    fn name_truncated_to_record_size() {
        let cfg = SensorConfig::new("an-extremely-long-sensor-name", 3.3, 1.0, true);
        assert!(cfg.name.len() <= NAME_SIZE);
        let round = SensorConfig::from_wire(&cfg.to_wire()).unwrap();
        assert_eq!(round.name, cfg.name);
    }

    #[test]
    fn empty_name_roundtrip() {
        let cfg = SensorConfig::unpopulated();
        let round = SensorConfig::from_wire(&cfg.to_wire()).unwrap();
        assert_eq!(round, cfg);
        assert!(!round.enabled);
    }

    #[test]
    fn non_finite_fields_rejected() {
        let mut wire = SensorConfig::new("x", 3.3, 1.0, true).to_wire();
        wire[NAME_SIZE..NAME_SIZE + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        assert_eq!(
            SensorConfig::from_wire(&wire).unwrap_err(),
            ProtocolError::BadConfig
        );
    }

    #[test]
    fn invalid_utf8_name_rejected() {
        let mut wire = SensorConfig::new("ok", 3.3, 1.0, true).to_wire();
        wire[0] = 0xFF;
        wire[1] = 0xFE;
        assert_eq!(
            SensorConfig::from_wire(&wire).unwrap_err(),
            ProtocolError::BadConfig
        );
    }

    #[test]
    fn eeprom_write_read() {
        let mut e = Eeprom::new();
        assert_eq!(e.write_count(), 0);
        let cfg = SensorConfig::new("USB-C", 3.3, 0.12, true);
        e.write(5, cfg.clone());
        assert_eq!(e.read(5), &cfg);
        assert_eq!(e.write_count(), 1);
        assert!(!e.read(0).enabled);
    }

    #[test]
    #[should_panic]
    fn out_of_range_slot_panics() {
        let e = Eeprom::new();
        let _ = e.read(SENSOR_SLOTS);
    }
}
