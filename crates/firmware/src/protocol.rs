//! The PowerSensor3 wire protocol.
//!
//! §III-B: for each sensor the device transmits 2 bytes carrying a
//! 10-bit value plus 6 bits of metadata — the sensor index, a marker
//! bit, and one framing bit per byte distinguishing first from second
//! bytes:
//!
//! ```text
//! byte 0: 0 s2 s1 s0 m v9 v8 v7     (MSB clear = first byte)
//! byte 1: 1 v6 v5 v4 v3 v2 v1 v0    (MSB set   = second byte)
//! ```
//!
//! A *real* marker can only occur on sensor 0; a set marker bit with a
//! non-zero sensor index is repurposed. Sensor index 7 with the marker
//! bit set carries the device timestamp: a 10-bit microsecond counter
//! generated halfway through each averaging frame. The framing bits let
//! a host that joins mid-stream (or loses bytes) resynchronise on the
//! next packet boundary.
//!
//! Commands from host to device are single bytes, some with a fixed
//! payload; see [`Command`].

use core::fmt;
use std::error::Error;

use crate::eeprom::{SensorConfig, CONFIG_WIRE_SIZE};

/// Mask for the 10-bit sample payload.
pub const VALUE_MASK: u16 = 0x3FF;

/// Sensor index reserved for timestamp packets (with marker bit set).
pub const TIMESTAMP_SENSOR: u8 = 7;

/// Microsecond wrap period of the 10-bit device timestamp.
pub const TIMESTAMP_WRAP_US: u64 = 1 << 10;

/// A decoded 2-byte packet from the sensor stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packet {
    /// A sensor conversion result.
    Sample {
        /// Sensor index 0–7 (channel on the ADC scan).
        sensor: u8,
        /// Marker flag (only meaningful on sensor 0).
        marker: bool,
        /// 10-bit raw ADC value (averaged).
        value: u16,
    },
    /// A device timestamp: the low 10 bits of the µs clock.
    Timestamp {
        /// Microseconds modulo [`TIMESTAMP_WRAP_US`].
        micros: u16,
    },
}

impl Packet {
    /// Encodes the packet into its 2-byte wire form.
    ///
    /// # Panics
    ///
    /// Panics if a sample's sensor index exceeds 7 or its value exceeds
    /// 10 bits, or if a timestamp exceeds 10 bits — firmware bugs, not
    /// runtime conditions.
    #[must_use]
    pub fn encode(self) -> [u8; 2] {
        let (sensor, marker, value) = match self {
            Packet::Sample {
                sensor,
                marker,
                value,
            } => {
                assert!(sensor <= 7, "sensor index out of range");
                assert!(value <= VALUE_MASK, "sample value out of range");
                assert!(
                    !(marker && sensor == TIMESTAMP_SENSOR),
                    "marker on sensor 7 is reserved for timestamps"
                );
                (sensor, marker, value)
            }
            Packet::Timestamp { micros } => {
                assert!(micros <= VALUE_MASK, "timestamp out of range");
                (TIMESTAMP_SENSOR, true, micros)
            }
        };
        let byte0 = (sensor << 4) | (u8::from(marker) << 3) | ((value >> 7) as u8 & 0x07);
        let byte1 = 0x80 | (value & 0x7F) as u8;
        [byte0, byte1]
    }

    /// Decodes a 2-byte wire packet.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::Framing`] when the framing bits are
    /// wrong (first byte must have MSB clear, second byte MSB set).
    pub fn decode(bytes: [u8; 2]) -> Result<Self, ProtocolError> {
        if bytes[0] & 0x80 != 0 || bytes[1] & 0x80 == 0 {
            return Err(ProtocolError::Framing);
        }
        let sensor = (bytes[0] >> 4) & 0x07;
        let marker = bytes[0] & 0x08 != 0;
        let value = (u16::from(bytes[0] & 0x07) << 7) | u16::from(bytes[1] & 0x7F);
        if marker && sensor == TIMESTAMP_SENSOR {
            Ok(Packet::Timestamp { micros: value })
        } else {
            Ok(Packet::Sample {
                sensor,
                marker,
                value,
            })
        }
    }
}

/// Incremental decoder that resynchronises on framing bits.
///
/// Feed it raw bytes as they arrive; it yields packets and silently
/// skips bytes until it finds a valid first-byte/second-byte pair, so a
/// host joining mid-stream or suffering byte loss recovers within one
/// packet.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    pending: Option<u8>,
    resyncs: u64,
}

impl StreamDecoder {
    /// Creates an empty decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of times the decoder had to discard bytes to regain
    /// framing (diagnostic).
    #[must_use]
    pub fn resync_count(&self) -> u64 {
        self.resyncs
    }

    /// Pushes one byte; returns a packet when one completes.
    pub fn push(&mut self, byte: u8) -> Option<Packet> {
        match self.pending {
            None => {
                if byte & 0x80 == 0 {
                    self.pending = Some(byte);
                } else {
                    // Second-byte pattern with no first byte: drop it.
                    self.resyncs += 1;
                }
                None
            }
            Some(first) => {
                if byte & 0x80 == 0 {
                    // Two first-bytes in a row: the earlier one lost its
                    // partner. Keep the newer one.
                    self.resyncs += 1;
                    self.pending = Some(byte);
                    return None;
                }
                self.pending = None;
                match Packet::decode([first, byte]) {
                    Ok(p) => Some(p),
                    Err(_) => {
                        self.resyncs += 1;
                        None
                    }
                }
            }
        }
    }

    /// Pushes a slice of bytes, collecting completed packets.
    pub fn push_slice(&mut self, bytes: &[u8]) -> Vec<Packet> {
        bytes.iter().filter_map(|&b| self.push(b)).collect()
    }
}

/// Unwraps the 10-bit µs timestamps into an absolute µs counter.
///
/// Consecutive frames are 50 µs apart and the counter wraps every
/// 1024 µs, so the host can reconstruct absolute device time as long as
/// it never misses ~20 consecutive frames.
#[derive(Debug, Default, Clone, Copy)]
pub struct TimestampUnwrapper {
    last_raw: Option<u16>,
    epoch_us: u64,
}

impl TimestampUnwrapper {
    /// Creates an unwrapper starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds a raw 10-bit timestamp, returning the absolute device
    /// time in microseconds.
    pub fn unwrap(&mut self, raw: u16) -> u64 {
        let raw = raw & VALUE_MASK;
        if let Some(last) = self.last_raw {
            if raw < last {
                self.epoch_us += TIMESTAMP_WRAP_US;
            }
        }
        self.last_raw = Some(raw);
        self.epoch_us + u64::from(raw)
    }
}

/// Host-to-device commands (§III-B's option list).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Command {
    /// Begin streaming sensor data.
    StartStreaming,
    /// Stop streaming sensor data.
    StopStreaming,
    /// Send all sensor configuration records.
    ReadConfig,
    /// Replace the configuration of one sensor slot.
    WriteConfig {
        /// Sensor slot 0–7.
        sensor: u8,
        /// New configuration record.
        config: SensorConfig,
    },
    /// Set the marker bit on the next sensor-0 sample.
    Marker,
    /// Request the firmware version string.
    Version,
    /// Reboot the device (streaming stops, state resets).
    Reboot,
    /// Reboot into DFU mode for reflashing.
    RebootToDfu,
}

/// Command opcode bytes.
pub mod opcode {
    /// Start streaming.
    pub const START: u8 = b'S';
    /// Stop streaming.
    pub const STOP: u8 = b'X';
    /// Read configuration.
    pub const READ_CONFIG: u8 = b'R';
    /// Write configuration (followed by slot byte + record).
    pub const WRITE_CONFIG: u8 = b'W';
    /// Marker.
    pub const MARKER: u8 = b'M';
    /// Version request.
    pub const VERSION: u8 = b'V';
    /// Reboot.
    pub const REBOOT: u8 = b'Z';
    /// Reboot to DFU.
    pub const REBOOT_DFU: u8 = b'D';
    /// Config record response prefix (device → host).
    pub const CONFIG_RECORD: u8 = b'C';
    /// End of config dump (device → host).
    pub const CONFIG_END: u8 = b'E';
    /// Version response prefix (device → host).
    pub const VERSION_REPLY: u8 = b'v';
}

impl Command {
    /// Serialises the command to wire bytes.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Command::StartStreaming => vec![opcode::START],
            Command::StopStreaming => vec![opcode::STOP],
            Command::ReadConfig => vec![opcode::READ_CONFIG],
            Command::WriteConfig { sensor, config } => {
                let mut out = vec![opcode::WRITE_CONFIG, *sensor];
                out.extend_from_slice(&config.to_wire());
                out
            }
            Command::Marker => vec![opcode::MARKER],
            Command::Version => vec![opcode::VERSION],
            Command::Reboot => vec![opcode::REBOOT],
            Command::RebootToDfu => vec![opcode::REBOOT_DFU],
        }
    }
}

/// Incremental parser for the host→device command stream.
#[derive(Debug, Default)]
pub struct CommandParser {
    buf: Vec<u8>,
}

impl CommandParser {
    /// Creates an empty parser.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds bytes and returns every command completed by them.
    ///
    /// Unknown opcodes are skipped one byte at a time (the device must
    /// never wedge on garbage input).
    pub fn push_slice(&mut self, bytes: &[u8]) -> Vec<Command> {
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        while let Some(&op) = self.buf.first() {
            let consumed = match op {
                opcode::START => {
                    out.push(Command::StartStreaming);
                    1
                }
                opcode::STOP => {
                    out.push(Command::StopStreaming);
                    1
                }
                opcode::READ_CONFIG => {
                    out.push(Command::ReadConfig);
                    1
                }
                opcode::MARKER => {
                    out.push(Command::Marker);
                    1
                }
                opcode::VERSION => {
                    out.push(Command::Version);
                    1
                }
                opcode::REBOOT => {
                    out.push(Command::Reboot);
                    1
                }
                opcode::REBOOT_DFU => {
                    out.push(Command::RebootToDfu);
                    1
                }
                opcode::WRITE_CONFIG => {
                    let need = 2 + CONFIG_WIRE_SIZE;
                    if self.buf.len() < need {
                        break; // wait for the rest of the record
                    }
                    let sensor = self.buf[1];
                    let record: [u8; CONFIG_WIRE_SIZE] =
                        self.buf[2..need].try_into().expect("length checked");
                    match SensorConfig::from_wire(&record) {
                        Ok(config) => out.push(Command::WriteConfig { sensor, config }),
                        Err(_) => { /* malformed record: drop it */ }
                    }
                    need
                }
                _ => 1, // unknown byte: skip
            };
            self.buf.drain(..consumed);
        }
        out
    }
}

/// Protocol-level decode errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// Framing bits of a 2-byte packet were inconsistent.
    Framing,
    /// A configuration record failed to parse.
    BadConfig,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Framing => write!(f, "packet framing bits inconsistent"),
            ProtocolError::BadConfig => write!(f, "malformed sensor configuration record"),
        }
    }
}

impl Error for ProtocolError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_roundtrip_all_sensors() {
        for sensor in 0..=7u8 {
            for value in [0u16, 1, 511, 512, 1023] {
                for marker in [false, true] {
                    if marker && sensor == 7 {
                        continue; // reserved for timestamps
                    }
                    let p = Packet::Sample {
                        sensor,
                        marker,
                        value,
                    };
                    assert_eq!(Packet::decode(p.encode()).unwrap(), p);
                }
            }
        }
    }

    #[test]
    fn timestamp_roundtrip() {
        for micros in [0u16, 1, 50, 1000, 1023] {
            let p = Packet::Timestamp { micros };
            assert_eq!(Packet::decode(p.encode()).unwrap(), p);
        }
    }

    #[test]
    fn framing_bits_are_set_correctly() {
        let bytes = Packet::Sample {
            sensor: 3,
            marker: false,
            value: 0x2AB,
        }
        .encode();
        assert_eq!(bytes[0] & 0x80, 0, "first byte MSB clear");
        assert_eq!(bytes[1] & 0x80, 0x80, "second byte MSB set");
    }

    #[test]
    fn bad_framing_rejected() {
        assert_eq!(
            Packet::decode([0x80, 0x80]).unwrap_err(),
            ProtocolError::Framing
        );
        assert_eq!(
            Packet::decode([0x00, 0x00]).unwrap_err(),
            ProtocolError::Framing
        );
    }

    #[test]
    #[should_panic(expected = "reserved for timestamps")]
    fn marker_on_sensor7_panics() {
        let _ = Packet::Sample {
            sensor: 7,
            marker: true,
            value: 0,
        }
        .encode();
    }

    #[test]
    fn decoder_handles_contiguous_stream() {
        let mut dec = StreamDecoder::new();
        let mut bytes = Vec::new();
        let packets: Vec<Packet> = (0..8u8)
            .map(|s| Packet::Sample {
                sensor: s % 7,
                marker: false,
                value: u16::from(s) * 100,
            })
            .collect();
        for p in &packets {
            bytes.extend_from_slice(&p.encode());
        }
        assert_eq!(dec.push_slice(&bytes), packets);
        assert_eq!(dec.resync_count(), 0);
    }

    #[test]
    fn decoder_resyncs_after_lost_byte() {
        let mut dec = StreamDecoder::new();
        let a = Packet::Sample {
            sensor: 1,
            marker: false,
            value: 700,
        };
        let b = Packet::Sample {
            sensor: 2,
            marker: false,
            value: 300,
        };
        let mut bytes = a.encode().to_vec();
        bytes.pop(); // lose a's second byte
        bytes.extend_from_slice(&b.encode());
        let got = dec.push_slice(&bytes);
        assert_eq!(got, vec![b]);
        assert!(dec.resync_count() > 0);
    }

    #[test]
    fn decoder_skips_leading_second_byte() {
        let mut dec = StreamDecoder::new();
        let p = Packet::Timestamp { micros: 123 };
        let mut bytes = vec![0xFFu8]; // stray second-byte pattern
        bytes.extend_from_slice(&p.encode());
        assert_eq!(dec.push_slice(&bytes), vec![p]);
    }

    #[test]
    fn unwrapper_tracks_wraps() {
        let mut u = TimestampUnwrapper::new();
        assert_eq!(u.unwrap(0), 0);
        assert_eq!(u.unwrap(50), 50);
        assert_eq!(u.unwrap(1000), 1000);
        assert_eq!(u.unwrap(2), 1024 + 2); // wrapped
        assert_eq!(u.unwrap(52), 1024 + 52);
        // Several wraps in sequence.
        let mut last = 0;
        for i in 0..200u64 {
            let raw = ((i * 50) % 1024) as u16;
            let t = u.unwrap(raw);
            assert!(t >= last, "time went backwards at i={i}");
            last = t;
        }
    }

    #[test]
    fn commands_roundtrip_through_parser() {
        let cmds = vec![
            Command::StartStreaming,
            Command::Marker,
            Command::Version,
            Command::StopStreaming,
            Command::ReadConfig,
            Command::WriteConfig {
                sensor: 3,
                config: SensorConfig::new("Slot-12V-10A", 3.3, 0.12, true),
            },
            Command::Reboot,
            Command::RebootToDfu,
        ];
        let mut bytes = Vec::new();
        for c in &cmds {
            bytes.extend_from_slice(&c.encode());
        }
        let mut parser = CommandParser::new();
        assert_eq!(parser.push_slice(&bytes), cmds);
    }

    #[test]
    fn parser_handles_split_write_config() {
        let cmd = Command::WriteConfig {
            sensor: 1,
            config: SensorConfig::new("USB-C", 3.3, 0.12, true),
        };
        let bytes = cmd.encode();
        let mut parser = CommandParser::new();
        let (head, tail) = bytes.split_at(5);
        assert!(parser.push_slice(head).is_empty());
        assert_eq!(parser.push_slice(tail), vec![cmd]);
    }

    #[test]
    fn parser_skips_garbage() {
        let mut parser = CommandParser::new();
        let mut bytes = vec![0x00, 0xFF, 0x01];
        bytes.push(opcode::MARKER);
        assert_eq!(parser.push_slice(&bytes), vec![Command::Marker]);
    }
}
