//! Property-based tests of the firmware pipeline: ADC averaging,
//! frame emission, and device command handling under arbitrary inputs.

use proptest::prelude::*;

use ps3_firmware::protocol::{Packet, StreamDecoder};
use ps3_firmware::{AdcSequencer, Device, Eeprom, SensorConfig};
use ps3_transport::{Transport, VirtualSerial};
use ps3_units::{SimDuration, SimTime};

proptest! {
    #[test]
    fn constant_input_averages_to_its_own_code(v in 0.0f64..3.3) {
        let mut seq = AdcSequencer::new();
        let frame = seq.run_frame(&mut move |_c: usize, _t: SimTime| v, SimTime::ZERO);
        let expect = ps3_sensors_quantize(v);
        for value in frame.values {
            // Averaging identical codes is exact.
            prop_assert_eq!(value, expect);
        }
    }

    #[test]
    fn averaged_code_within_input_range(
        lo in 0.0f64..3.0,
        spread in 0.0f64..0.3,
        averages in 1u32..12,
    ) {
        // A source bouncing within [lo, lo+spread] must average inside
        // the corresponding code range.
        let hi = lo + spread;
        let mut seq = AdcSequencer::with_averages(averages);
        let mut flip = false;
        let frame = seq.run_frame(
            &mut move |_c: usize, _t: SimTime| {
                flip = !flip;
                if flip { lo } else { hi }
            },
            SimTime::ZERO,
        );
        let code_lo = ps3_sensors_quantize(lo);
        let code_hi = ps3_sensors_quantize(hi);
        for value in frame.values {
            prop_assert!(value >= code_lo && value <= code_hi.max(code_lo + 1));
        }
    }

    #[test]
    fn enabled_mask_controls_packet_count(mask in 0u8..=255) {
        let mut eeprom = Eeprom::new();
        for slot in 0..8 {
            let enabled = mask & (1 << slot) != 0;
            eeprom.write(slot, SensorConfig::new("s", 3.3, 1.0, enabled));
        }
        let (host, dev_end) = VirtualSerial::pair();
        let mut dev = Device::new(|_c: usize, _t: SimTime| 1.0f64, eeprom);
        host.write_all(b"S").unwrap();
        dev.run_until(&dev_end, SimTime::ZERO + SimDuration::from_micros(50));
        let mut bytes = vec![0u8; host.available()];
        host.read_exact(&mut bytes).unwrap();
        let packets = StreamDecoder::new().push_slice(&bytes);
        let expected = 1 + mask.count_ones(); // timestamp + enabled sensors
        prop_assert_eq!(packets.len() as u32, expected);
        // The timestamp always leads.
        let leads_with_timestamp = matches!(packets[0], Packet::Timestamp { .. });
        prop_assert!(leads_with_timestamp);
    }

    #[test]
    fn device_never_wedges_on_garbage_commands(
        garbage in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let (host, dev_end) = VirtualSerial::pair();
        let mut eeprom = Eeprom::new();
        eeprom.write(0, SensorConfig::new("I", 3.3, 0.12, true));
        let mut dev = Device::new(|_c: usize, _t: SimTime| 1.0f64, eeprom);
        host.write_all(&garbage).unwrap();
        dev.run_until(&dev_end, SimTime::ZERO + SimDuration::from_micros(200));
        // Whatever the garbage did, a clean start-stream still works
        // once any half-parsed WriteConfig payload is flushed by more
        // input.
        host.write_all(&[0u8; 32]).unwrap(); // flush partial records
        host.write_all(b"Z").unwrap(); // reboot (exits DFU if garbage hit 'D')
        host.write_all(b"S").unwrap();
        dev.run_until(&dev_end, SimTime::ZERO + SimDuration::from_micros(400));
        prop_assert!(dev.is_streaming(), "device accepts commands after garbage");
        prop_assert!(dev.clock() >= SimTime::ZERO + SimDuration::from_micros(400));
    }
}

/// Quantisation helper matching the firmware ADC.
fn ps3_sensors_quantize(v: f64) -> u16 {
    ps3_sensors::AdcSpec::POWERSENSOR3.quantize(v)
}
