//! ADC characteristics shared between the analog models and the
//! firmware emulator.

/// Resolution and reference of the digitising ADC.
///
/// The STM32F411 ADC is configured for 10-bit conversions against a
/// 3.3 V reference (§III-B); the error-budget calculator needs the
/// resulting LSB size and the firmware emulator needs the same numbers
/// to quantise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcSpec {
    /// Conversion resolution in bits.
    pub bits: u32,
    /// Reference voltage in volts; conversions span `0..=vref`.
    pub vref: f64,
}

impl AdcSpec {
    /// The PowerSensor3 configuration: 10 bits, 3.3 V reference.
    pub const POWERSENSOR3: Self = Self {
        bits: 10,
        vref: 3.3,
    };

    /// Number of quantisation steps (`2^bits`).
    #[must_use]
    pub fn levels(&self) -> u32 {
        1 << self.bits
    }

    /// Size of one least-significant bit in volts.
    #[must_use]
    pub fn lsb(&self) -> f64 {
        self.vref / f64::from(self.levels())
    }

    /// Quantises an analog voltage to a raw code, clamping to range.
    #[must_use]
    pub fn quantize(&self, volts: f64) -> u16 {
        let max = self.levels() - 1;
        if !volts.is_finite() || volts <= 0.0 {
            return 0;
        }
        let code = (volts / self.lsb()).floor() as u32;
        code.min(max) as u16
    }

    /// Converts a raw code back to the voltage at the centre of its
    /// quantisation bin.
    #[must_use]
    pub fn to_volts(&self, code: u16) -> f64 {
        (f64::from(code) + 0.5) * self.lsb()
    }
}

impl Default for AdcSpec {
    fn default() -> Self {
        Self::POWERSENSOR3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powersensor3_lsb() {
        let adc = AdcSpec::POWERSENSOR3;
        assert_eq!(adc.levels(), 1024);
        assert!((adc.lsb() - 3.3 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn quantize_clamps() {
        let adc = AdcSpec::POWERSENSOR3;
        assert_eq!(adc.quantize(-1.0), 0);
        assert_eq!(adc.quantize(0.0), 0);
        assert_eq!(adc.quantize(5.0), 1023);
        assert_eq!(adc.quantize(f64::NAN), 0);
    }

    #[test]
    fn roundtrip_error_bounded_by_half_lsb() {
        let adc = AdcSpec::POWERSENSOR3;
        for i in 0..1000 {
            let v = f64::from(i) * 3.3 / 1000.0;
            let back = adc.to_volts(adc.quantize(v));
            assert!(
                (back - v).abs() <= adc.lsb() * 0.5 + 1e-12,
                "v={v} back={back}"
            );
        }
    }

    #[test]
    fn mid_scale_code() {
        let adc = AdcSpec::POWERSENSOR3;
        assert_eq!(adc.quantize(1.65), 512);
    }
}
