//! Differential Hall-effect current sensor model (Melexis MLX91221
//! family).
//!
//! The sensor outputs `Vref/2 + S·I` where `S` is the sensitivity in
//! V/A; bidirectional currents swing the output around mid-scale, which
//! is how the paper's Fig 4 sweeps −10 A…+10 A. On top of the ideal
//! transfer the model applies: a first-order 300 kHz bandwidth limit,
//! white gaussian noise (115 mA rms for the 10 A part), a factory
//! offset error (removed by calibration), a small cubic nonlinearity,
//! thermal drift, and a tiny residual coupling to external magnetic
//! fields (the differential topology is the paper's fix for
//! PowerSensor2's interference sensitivity).

use ps3_units::{Amps, SimTime, Volts};

use crate::drift::ThermalDrift;
use crate::filter::LowPassFilter;
use crate::noise::GaussianNoise;

/// Static characteristics of a Hall current sensor variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HallSensorSpec {
    /// Transfer sensitivity in volts per ampere.
    pub sensitivity_v_per_a: f64,
    /// Rated full-scale current in amperes (bidirectional: ±).
    pub full_scale_amps: f64,
    /// Datasheet output noise, referred to input, in amps RMS.
    pub noise_rms_amps: f64,
    /// Extra factor on the sampled noise caused by the sensor's 300 kHz
    /// bandwidth aliasing onto the ADC conversion rate.
    pub sampled_noise_factor: f64,
    /// −3 dB bandwidth of the signal path in Hz.
    pub bandwidth_hz: f64,
    /// Worst-case factory offset error in amps (before calibration).
    pub max_offset_error_amps: f64,
    /// Cubic nonlinearity as a fraction of full scale at full scale.
    pub nonlinearity: f64,
    /// Residual response to an external field, in amps per millitesla.
    /// Differential parts reject nearly all of it.
    pub field_coupling_a_per_mt: f64,
}

impl HallSensorSpec {
    /// MLX91221-style ±10 A variant (the "10 A" slot module sensor).
    pub const MLX91221_10A: Self = Self {
        sensitivity_v_per_a: 0.120,
        full_scale_amps: 10.0,
        noise_rms_amps: 0.115,
        sampled_noise_factor: 1.28,
        bandwidth_hz: 300_000.0,
        max_offset_error_amps: 0.30,
        nonlinearity: 0.003,
        field_coupling_a_per_mt: 0.0005,
    };

    /// ±20 A variant (PCIe 8-pin and general-purpose 20 A modules).
    pub const MLX91221_20A: Self = Self {
        sensitivity_v_per_a: 0.060,
        full_scale_amps: 20.0,
        noise_rms_amps: 0.128,
        sampled_noise_factor: 1.28,
        bandwidth_hz: 300_000.0,
        max_offset_error_amps: 0.45,
        nonlinearity: 0.003,
        field_coupling_a_per_mt: 0.001,
    };

    /// ±50 A variant (high-current module).
    pub const MLX91221_50A: Self = Self {
        sensitivity_v_per_a: 0.0264,
        full_scale_amps: 50.0,
        noise_rms_amps: 0.290,
        sampled_noise_factor: 1.28,
        bandwidth_hz: 300_000.0,
        max_offset_error_amps: 1.0,
        nonlinearity: 0.003,
        field_coupling_a_per_mt: 0.002,
    };

    /// A legacy single-ended sensor (PowerSensor2-era), used by the
    /// interference ablation: identical except for a field coupling two
    /// orders of magnitude worse.
    #[must_use]
    pub fn single_ended(mut self) -> Self {
        self.field_coupling_a_per_mt *= 200.0;
        self
    }

    /// Worst-case current error after 3σ noise, in amps (feeds the
    /// Table I budget together with ADC quantisation).
    #[must_use]
    pub fn worst_case_noise_amps(&self) -> f64 {
        3.0 * self.noise_rms_amps
    }
}

/// A stateful Hall current sensor instance.
///
/// # Examples
///
/// ```
/// use ps3_sensors::{HallCurrentSensor, HallSensorSpec};
/// use ps3_units::{Amps, SimTime};
///
/// let mut sensor = HallCurrentSensor::new(HallSensorSpec::MLX91221_10A, 3.3, 42);
/// let v = sensor.output_voltage(Amps::new(0.0), SimTime::ZERO);
/// // Zero current sits near mid-scale (offset error + noise aside).
/// assert!((v - 1.65).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct HallCurrentSensor {
    spec: HallSensorSpec,
    vref: f64,
    filter: LowPassFilter,
    noise: GaussianNoise,
    drift: ThermalDrift,
    /// Fixed factory offset in amps, drawn once from the seed.
    offset_amps: f64,
    /// Externally applied magnetic field in millitesla.
    external_field_mt: f64,
}

impl HallCurrentSensor {
    /// Creates a sensor powered from `vref` volts with a deterministic
    /// factory offset and noise stream derived from `seed`.
    #[must_use]
    pub fn new(spec: HallSensorSpec, vref: f64, seed: u64) -> Self {
        let mut boot = GaussianNoise::new(1.0, seed ^ 0x9E37_79B9_7F4A_7C15);
        // Factory offset: uniform within the worst-case band.
        let offset_amps = boot.uniform(-spec.max_offset_error_amps, spec.max_offset_error_amps);
        Self {
            spec,
            vref,
            filter: LowPassFilter::new(spec.bandwidth_hz),
            noise: GaussianNoise::new(spec.noise_rms_amps * spec.sampled_noise_factor, seed),
            drift: ThermalDrift::new(0.004, 6.0 * 3600.0, seed ^ 0xD1F3),
            offset_amps,
            external_field_mt: 0.0,
        }
    }

    /// The sensor's static spec.
    #[must_use]
    pub fn spec(&self) -> &HallSensorSpec {
        &self.spec
    }

    /// The factory offset error in amps (what calibration must remove).
    #[must_use]
    pub fn factory_offset(&self) -> Amps {
        Amps::new(self.offset_amps)
    }

    /// Applies an external magnetic field (interference testing).
    pub fn set_external_field(&mut self, millitesla: f64) {
        self.external_field_mt = millitesla;
    }

    /// Disables drift and the factory offset (ideal-sensor mode for
    /// deterministic firmware tests).
    pub fn make_ideal(&mut self) {
        self.offset_amps = 0.0;
        self.drift = ThermalDrift::none();
        self.noise = GaussianNoise::new(0.0, 0);
    }

    /// Samples the analog output voltage for `current` at time `now`.
    ///
    /// The returned voltage is clamped to `[0, vref]`, exactly like the
    /// real part saturates at its rails.
    pub fn output_voltage(&mut self, current: Amps, now: SimTime) -> f64 {
        let i = current.value();
        let fs = self.spec.full_scale_amps;
        let nonlin = self.spec.nonlinearity * fs * (i / fs).powi(3);
        let field = self.external_field_mt * self.spec.field_coupling_a_per_mt;
        let drift = self.drift.offset_at(now);
        let ideal = i + self.offset_amps + nonlin + field + drift;
        let filtered = self.filter.sample(ideal, now);
        let noisy = filtered + self.noise.sample();
        let v = self.vref / 2.0 + self.spec.sensitivity_v_per_a * noisy;
        v.clamp(0.0, self.vref)
    }

    /// The ideal (noise-free, offset-free) output voltage for a given
    /// current — what calibration converges towards.
    #[must_use]
    pub fn ideal_output(&self, current: Amps) -> Volts {
        Volts::new(self.vref / 2.0 + self.spec.sensitivity_v_per_a * current.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_analysis::SampleStats;
    use ps3_units::SimDuration;

    /// Samples `n` conversions at ~120 kHz, advancing a shared time
    /// cursor so repeated calls on one sensor keep moving forward.
    fn settled_from(
        sensor: &mut HallCurrentSensor,
        t: &mut SimTime,
        current: f64,
        n: usize,
    ) -> Vec<f64> {
        let dt = SimDuration::from_nanos(8_333); // ~120 kHz conversions
        (0..n)
            .map(|_| {
                *t += dt;
                sensor.output_voltage(Amps::new(current), *t)
            })
            .collect()
    }

    fn settled(sensor: &mut HallCurrentSensor, current: f64, n: usize) -> Vec<f64> {
        let mut t = SimTime::ZERO;
        settled_from(sensor, &mut t, current, n)
    }

    #[test]
    fn transfer_function_slope() {
        let mut s = HallCurrentSensor::new(HallSensorSpec::MLX91221_10A, 3.3, 1);
        s.make_ideal();
        let mut t = SimTime::ZERO;
        let v0 = settled_from(&mut s, &mut t, 0.0, 10).pop().unwrap();
        let v5 = settled_from(&mut s, &mut t, 5.0, 200).pop().unwrap();
        let slope = (v5 - v0) / 5.0;
        // Nonlinearity perturbs the slope slightly; 120 mV/A ± 2 %.
        assert!((slope - 0.120).abs() < 0.002, "slope {slope}");
    }

    #[test]
    fn negative_currents_swing_below_midscale() {
        let mut s = HallCurrentSensor::new(HallSensorSpec::MLX91221_10A, 3.3, 2);
        s.make_ideal();
        let v = settled(&mut s, -8.0, 10).pop().unwrap();
        assert!(v < 1.65);
        assert!(v > 0.0);
    }

    #[test]
    fn output_saturates_at_rails() {
        let mut s = HallCurrentSensor::new(HallSensorSpec::MLX91221_10A, 3.3, 3);
        s.make_ideal();
        let mut t = SimTime::ZERO;
        let v = settled_from(&mut s, &mut t, 100.0, 10).pop().unwrap();
        assert_eq!(v, 3.3);
        let v = settled_from(&mut s, &mut t, -100.0, 400).pop().unwrap();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn noise_magnitude_matches_spec() {
        let spec = HallSensorSpec::MLX91221_10A;
        let mut s = HallCurrentSensor::new(spec, 3.3, 4);
        let samples = settled(&mut s, 2.0, 100_000);
        let amps: Vec<f64> = samples
            .iter()
            .map(|v| (v - 1.65) / spec.sensitivity_v_per_a)
            .collect();
        let stats = SampleStats::from_samples(amps).unwrap();
        let expect = spec.noise_rms_amps * spec.sampled_noise_factor;
        assert!(
            (stats.std - expect).abs() < 0.01,
            "std {} expect {expect}",
            stats.std
        );
    }

    #[test]
    fn factory_offset_within_band() {
        for seed in 0..32 {
            let s = HallCurrentSensor::new(HallSensorSpec::MLX91221_10A, 3.3, seed);
            assert!(s.factory_offset().value().abs() <= 0.30);
        }
    }

    #[test]
    fn differential_rejects_external_field() {
        let spec = HallSensorSpec::MLX91221_10A;
        let mut diff = HallCurrentSensor::new(spec, 3.3, 5);
        diff.make_ideal();
        let mut single = HallCurrentSensor::new(spec.single_ended(), 3.3, 5);
        single.make_ideal();
        let mut td = SimTime::ZERO;
        let mut ts = SimTime::ZERO;
        let base_d = settled_from(&mut diff, &mut td, 1.0, 10).pop().unwrap();
        let base_s = settled_from(&mut single, &mut ts, 1.0, 10).pop().unwrap();
        diff.set_external_field(5.0);
        single.set_external_field(5.0);
        // Allow the filter to settle on the disturbed value.
        let d = settled_from(&mut diff, &mut td, 1.0, 100).pop().unwrap() - base_d;
        let s = settled_from(&mut single, &mut ts, 1.0, 100).pop().unwrap() - base_s;
        assert!(
            s.abs() > 50.0 * d.abs(),
            "single-ended {s} should be far more sensitive than differential {d}"
        );
    }

    #[test]
    fn ideal_output_is_pure_transfer() {
        let s = HallCurrentSensor::new(HallSensorSpec::MLX91221_20A, 3.3, 6);
        let v = s.ideal_output(Amps::new(10.0));
        assert!((v.value() - (1.65 + 0.6)).abs() < 1e-12);
    }
}
