//! First-order low-pass filter modelling sensor bandwidth.

use ps3_units::SimTime;

/// A single-pole RC low-pass filter with an explicit time base.
///
/// The MLX91221 current sensor is specified to 300 kHz and the
/// ACPL-C87B voltage path to 100 kHz (§III-A); both are modelled as
/// first-order poles. The filter advances by the wall-clock gap between
/// successive samples, so irregular sampling (e.g. the ADC scan
/// sequence) integrates correctly.
///
/// # Examples
///
/// ```
/// use ps3_sensors::LowPassFilter;
/// use ps3_units::SimTime;
///
/// let mut f = LowPassFilter::new(300_000.0);
/// let y0 = f.sample(0.0, SimTime::from_nanos(0)); // settle at 0
/// let y1 = f.sample(1.0, SimTime::from_micros(1)); // step towards 1
/// assert!(y1 > y0);
/// assert!(y1 <= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct LowPassFilter {
    cutoff_hz: f64,
    state: Option<(SimTime, f64)>,
}

impl LowPassFilter {
    /// Creates a filter with the given −3 dB cutoff frequency.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff_hz` is not strictly positive.
    #[must_use]
    pub fn new(cutoff_hz: f64) -> Self {
        assert!(cutoff_hz > 0.0, "cutoff must be positive");
        Self {
            cutoff_hz,
            state: None,
        }
    }

    /// The −3 dB cutoff in Hz.
    #[must_use]
    pub fn cutoff_hz(&self) -> f64 {
        self.cutoff_hz
    }

    /// Feeds `input` at time `now` and returns the filtered output.
    ///
    /// The first call initialises the filter state to the input
    /// (sensors are assumed settled before sampling starts). Calls with
    /// non-advancing time return the current state unchanged.
    pub fn sample(&mut self, input: f64, now: SimTime) -> f64 {
        match self.state {
            None => {
                self.state = Some((now, input));
                input
            }
            Some((last, y)) => {
                let dt = now.saturating_duration_since(last).as_secs_f64();
                if dt <= 0.0 {
                    return y;
                }
                let tau = 1.0 / (core::f64::consts::TAU * self.cutoff_hz);
                let alpha = 1.0 - (-dt / tau).exp();
                let y_new = y + alpha * (input - y);
                self.state = Some((now, y_new));
                y_new
            }
        }
    }

    /// Resets the filter state (next sample re-initialises).
    pub fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_units::SimDuration;

    #[test]
    fn first_sample_passes_through() {
        let mut f = LowPassFilter::new(1000.0);
        assert_eq!(f.sample(5.0, SimTime::from_micros(10)), 5.0);
    }

    #[test]
    fn step_reaches_63_percent_after_tau() {
        let cutoff = 1000.0;
        let tau_ns = (1.0 / (core::f64::consts::TAU * cutoff) * 1e9) as u64;
        let mut f = LowPassFilter::new(cutoff);
        f.sample(0.0, SimTime::ZERO);
        // Integrate the step in many small increments up to exactly tau.
        let steps = 1000u64;
        let mut y = 0.0;
        for i in 1..=steps {
            y = f.sample(1.0, SimTime::from_nanos(i * tau_ns / steps));
        }
        assert!((y - 0.632).abs() < 0.01, "got {y}");
    }

    #[test]
    fn single_big_step_matches_analytic() {
        // One sample() call spanning exactly one time constant must land
        // on 1 - e^-1 regardless of step subdivision. Pick a cutoff whose
        // time constant is an exact number of nanoseconds.
        let tau_s = 1e-3;
        let cutoff = 1.0 / (core::f64::consts::TAU * tau_s);
        let mut f = LowPassFilter::new(cutoff);
        f.sample(0.0, SimTime::ZERO);
        let y = f.sample(1.0, SimTime::ZERO + SimDuration::from_secs_f64(tau_s));
        assert!((y - (1.0 - (-1.0f64).exp())).abs() < 1e-9, "got {y}");
    }

    #[test]
    fn dc_gain_is_unity() {
        let mut f = LowPassFilter::new(100.0);
        let mut y = f.sample(2.0, SimTime::ZERO);
        for i in 1..10_000u64 {
            y = f.sample(2.0, SimTime::from_micros(i * 100));
        }
        assert!((y - 2.0).abs() < 1e-9);
    }

    #[test]
    fn non_advancing_time_is_stable() {
        let mut f = LowPassFilter::new(100.0);
        f.sample(0.0, SimTime::from_micros(5));
        let y1 = f.sample(10.0, SimTime::from_micros(5));
        let y2 = f.sample(10.0, SimTime::from_micros(5));
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic(expected = "cutoff")]
    fn zero_cutoff_panics() {
        let _ = LowPassFilter::new(0.0);
    }
}
