//! Worst-case error budget — the analysis behind the paper's Table I.
//!
//! §III-A derives the power error from the combined voltage and current
//! errors:
//!
//! ```text
//! E_p = sqrt((U·E_i)² + (I·E_u)² + (E_i·E_u)²)
//! ```
//!
//! where `E_i` combines 3σ of the Hall sensor noise with half an ADC
//! LSB referred to amps, and `E_u` combines 3σ of the amplifier noise
//! with half an LSB referred to rail volts. The voltage divider
//! amplifies both the LSB and the amplifier noise, which is why the
//! 12 V module's voltage error (±28.6 mV) exceeds the 3.3 V module's
//! (±19.9 mV).

use core::fmt;

use ps3_units::{Amps, Volts, Watts};

use crate::adc_spec::AdcSpec;
use crate::module::ModuleKind;

/// Worst-case accuracy of one sensor module at a stated operating
/// point — one row of Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBudget {
    /// The module the row describes.
    pub kind: ModuleKind,
    /// Rail voltage the budget is evaluated at.
    pub rail: Volts,
    /// Full-scale current the budget is evaluated at.
    pub full_scale: Amps,
    /// Worst-case voltage error `E_u`.
    pub voltage_error: Volts,
    /// Worst-case current error `E_i`.
    pub current_error: Amps,
    /// Worst-case power error `E_p`.
    pub power_error: Watts,
}

impl ErrorBudget {
    /// Computes the worst-case budget for a module design digitised by
    /// `adc`, evaluated at the module's nominal rail and full-scale
    /// current.
    #[must_use]
    pub fn for_module(kind: ModuleKind, adc: &AdcSpec) -> Self {
        let hall = kind.hall_spec();
        let volt = kind.voltage_spec();
        let rail = kind.nominal_rail();
        let full_scale = Amps::new(hall.full_scale_amps);

        // Current error: 3σ sensor noise + half an LSB in amps.
        let lsb_amps = adc.lsb() / hall.sensitivity_v_per_a;
        let e_i = hall.worst_case_noise_amps() + lsb_amps / 2.0;

        // Voltage error: 3σ rail-referred amplifier noise + half an LSB
        // scaled back up through the divider.
        let scale = volt.scale(adc.vref);
        let lsb_rail = adc.lsb() * scale;
        let e_u = volt.worst_case_noise_volts() + lsb_rail / 2.0;

        let e_p = power_error(rail, full_scale, Volts::new(e_u), Amps::new(e_i));

        Self {
            kind,
            rail,
            full_scale,
            voltage_error: Volts::new(e_u),
            current_error: Amps::new(e_i),
            power_error: e_p,
        }
    }
}

impl fmt::Display for ErrorBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} ±{:.1} mV  ±{:.2} A  ±{:.1} W",
            self.kind.label(),
            self.voltage_error.value() * 1e3,
            self.current_error.value(),
            self.power_error.value()
        )
    }
}

/// The paper's power-error propagation formula (§III-A):
/// `E_p = sqrt((U·E_i)² + (I·E_u)² + (E_i·E_u)²)`.
#[must_use]
pub fn power_error(rail: Volts, current: Amps, e_u: Volts, e_i: Amps) -> Watts {
    let u = rail.value();
    let i = current.value();
    let eu = e_u.value();
    let ei = e_i.value();
    Watts::new(((u * ei).powi(2) + (i * eu).powi(2) + (ei * eu).powi(2)).sqrt())
}

/// Computes the budgets for the four module configurations listed in
/// Table I, in the paper's row order.
#[must_use]
pub fn table1(adc: &AdcSpec) -> [ErrorBudget; 4] {
    [
        ErrorBudget::for_module(ModuleKind::Slot10A12V, adc),
        ErrorBudget::for_module(ModuleKind::Slot10A3V3, adc),
        ErrorBudget::for_module(ModuleKind::UsbC, adc),
        ErrorBudget::for_module(ModuleKind::Pcie8Pin20A, adc),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_TABLE1: [(f64, f64, f64); 4] = [
        // (E_u volts, E_i amps, E_p watts)
        (0.0286, 0.35, 4.2), // 12 V / 10 A
        (0.0199, 0.35, 1.2), // 3.3 V / 10 A
        (0.0286, 0.35, 7.0), // USB-C 20 V / 10 A
        (0.0286, 0.41, 5.0), // Ext 12 V / 20 A
    ];

    #[test]
    fn budget_matches_paper_table1() {
        let rows = table1(&AdcSpec::POWERSENSOR3);
        for (row, (eu, ei, ep)) in rows.iter().zip(PAPER_TABLE1) {
            let eu_err = (row.voltage_error.value() - eu).abs() / eu;
            let ei_err = (row.current_error.value() - ei).abs() / ei;
            let ep_err = (row.power_error.value() - ep).abs() / ep;
            assert!(eu_err < 0.05, "{row}: E_u off by {:.1}%", eu_err * 100.0);
            assert!(ei_err < 0.05, "{row}: E_i off by {:.1}%", ei_err * 100.0);
            assert!(ep_err < 0.05, "{row}: E_p off by {:.1}%", ep_err * 100.0);
        }
    }

    #[test]
    fn power_error_formula() {
        // With only a current error, E_p = U * E_i exactly (plus the
        // tiny cross term).
        let e = power_error(
            Volts::new(12.0),
            Amps::new(10.0),
            Volts::zero(),
            Amps::new(0.35),
        );
        assert!((e.value() - 4.2).abs() < 1e-9);
    }

    #[test]
    fn current_noise_dominates_at_low_load() {
        // §III-A: at small loads the current term dominates; at
        // high-current/low-voltage the voltage term grows.
        let row = ErrorBudget::for_module(ModuleKind::Slot10A12V, &AdcSpec::POWERSENSOR3);
        let u_term = row.rail.value() * row.current_error.value();
        let i_term = row.full_scale.value() * row.voltage_error.value();
        assert!(u_term > 10.0 * i_term);
    }

    #[test]
    fn twenty_amp_module_has_larger_current_error() {
        let ten = ErrorBudget::for_module(ModuleKind::Slot10A12V, &AdcSpec::POWERSENSOR3);
        let twenty = ErrorBudget::for_module(ModuleKind::Pcie8Pin20A, &AdcSpec::POWERSENSOR3);
        assert!(twenty.current_error > ten.current_error);
    }

    #[test]
    fn usbc_has_worst_power_error() {
        // 20 V multiplies the same current error by the largest factor.
        let rows = table1(&AdcSpec::POWERSENSOR3);
        let usbc = &rows[2];
        for (i, row) in rows.iter().enumerate() {
            if i != 2 {
                assert!(usbc.power_error > row.power_error);
            }
        }
    }

    #[test]
    fn higher_resolution_adc_shrinks_budget() {
        let adc10 = AdcSpec {
            bits: 10,
            vref: 3.3,
        };
        let adc12 = AdcSpec {
            bits: 12,
            vref: 3.3,
        };
        let b10 = ErrorBudget::for_module(ModuleKind::Slot10A12V, &adc10);
        let b12 = ErrorBudget::for_module(ModuleKind::Slot10A12V, &adc12);
        assert!(b12.power_error < b10.power_error);
        assert!(b12.current_error < b10.current_error);
    }
}
