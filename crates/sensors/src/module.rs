//! Sensor modules: the pluggable current+voltage measurement boards.
//!
//! PowerSensor3 ships five module designs (§III-A); each pairs a Hall
//! current sensor with an isolated voltage sensor on one power path.
//! The baseboard hosts up to four of them.

use core::fmt;

use ps3_units::{Amps, SimTime, Volts};

use crate::hall::{HallCurrentSensor, HallSensorSpec};
use crate::voltage::{IsolatedVoltageSensor, VoltageSensorSpec};

/// The five sensor-module designs plus rail variants of the 10 A slot
/// module (the same board measures either slot rail depending on where
/// the riser routes it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    /// 20 A module with a PCIe 8-pin connector (external 12 V power).
    Pcie8Pin20A,
    /// 10 A module on the PCIe slot 3.3 V rail.
    Slot10A3V3,
    /// 10 A module on the PCIe slot 12 V rail.
    Slot10A12V,
    /// USB-C module (up to 20 V USB-PD, 10 A).
    UsbC,
    /// General-purpose 20 A module with terminal blocks (12 V).
    General20A,
    /// 50 A high-current module (12 V).
    HighCurrent50A,
}

impl ModuleKind {
    /// All module kinds, in display order.
    pub const ALL: [ModuleKind; 6] = [
        ModuleKind::Pcie8Pin20A,
        ModuleKind::Slot10A3V3,
        ModuleKind::Slot10A12V,
        ModuleKind::UsbC,
        ModuleKind::General20A,
        ModuleKind::HighCurrent50A,
    ];

    /// The Hall sensor variant this module mounts.
    #[must_use]
    pub fn hall_spec(self) -> HallSensorSpec {
        match self {
            ModuleKind::Pcie8Pin20A | ModuleKind::General20A => HallSensorSpec::MLX91221_20A,
            ModuleKind::Slot10A3V3 | ModuleKind::Slot10A12V | ModuleKind::UsbC => {
                HallSensorSpec::MLX91221_10A
            }
            ModuleKind::HighCurrent50A => HallSensorSpec::MLX91221_50A,
        }
    }

    /// The voltage sensing path this module uses.
    #[must_use]
    pub fn voltage_spec(self) -> VoltageSensorSpec {
        match self {
            ModuleKind::Slot10A3V3 => VoltageSensorSpec::RAIL_3V3,
            ModuleKind::UsbC => VoltageSensorSpec::RAIL_USBC,
            _ => VoltageSensorSpec::RAIL_12V,
        }
    }

    /// Nominal rail voltage this module is typically installed on.
    #[must_use]
    pub fn nominal_rail(self) -> Volts {
        match self {
            ModuleKind::Slot10A3V3 => Volts::new(3.3),
            ModuleKind::UsbC => Volts::new(20.0),
            _ => Volts::new(12.0),
        }
    }

    /// A short human-readable name, as shown by `psinfo`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ModuleKind::Pcie8Pin20A => "PCIe-8pin-20A",
            ModuleKind::Slot10A3V3 => "Slot-3V3-10A",
            ModuleKind::Slot10A12V => "Slot-12V-10A",
            ModuleKind::UsbC => "USB-C",
            ModuleKind::General20A => "General-20A",
            ModuleKind::HighCurrent50A => "HighCurrent-50A",
        }
    }
}

impl fmt::Display for ModuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A populated sensor module: one Hall current sensor plus one isolated
/// voltage sensor measuring the same power path.
///
/// # Examples
///
/// ```
/// use ps3_sensors::{ModuleKind, SensorModule};
/// use ps3_units::{Amps, SimTime, Volts};
///
/// let mut m = SensorModule::new(ModuleKind::Slot10A12V, 7);
/// let (vi, vu) = m.sample(Volts::new(12.0), Amps::new(2.0), SimTime::ZERO);
/// assert!(vi > 1.65); // positive current: above mid-scale
/// assert!(vu > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SensorModule {
    kind: ModuleKind,
    hall: HallCurrentSensor,
    voltage: IsolatedVoltageSensor,
}

impl SensorModule {
    /// ADC reference voltage the sensor outputs are scaled against.
    pub const VREF: f64 = 3.3;

    /// Creates a module with factory imperfections derived from `seed`.
    #[must_use]
    pub fn new(kind: ModuleKind, seed: u64) -> Self {
        Self::with_hall_spec(kind, kind.hall_spec(), seed)
    }

    /// Creates a module with a custom Hall sensor variant — e.g. a
    /// [`HallSensorSpec::single_ended`] legacy part for the
    /// PowerSensor2 interference comparison.
    #[must_use]
    pub fn with_hall_spec(kind: ModuleKind, hall_spec: HallSensorSpec, seed: u64) -> Self {
        Self {
            kind,
            hall: HallCurrentSensor::new(hall_spec, Self::VREF, seed),
            voltage: IsolatedVoltageSensor::new(kind.voltage_spec(), Self::VREF, seed ^ 0x55AA),
        }
    }

    /// Creates a module with no noise, offset, gain error or drift.
    #[must_use]
    pub fn ideal(kind: ModuleKind) -> Self {
        let mut m = Self::new(kind, 0);
        m.hall.make_ideal();
        m.voltage.make_ideal();
        m
    }

    /// The module design.
    #[must_use]
    pub fn kind(&self) -> ModuleKind {
        self.kind
    }

    /// The current sensor (e.g. to apply an external field).
    #[must_use]
    pub fn hall(&self) -> &HallCurrentSensor {
        &self.hall
    }

    /// Mutable access to the current sensor.
    pub fn hall_mut(&mut self) -> &mut HallCurrentSensor {
        &mut self.hall
    }

    /// The voltage sensor.
    #[must_use]
    pub fn voltage_sensor(&self) -> &IsolatedVoltageSensor {
        &self.voltage
    }

    /// Mutable access to the voltage sensor.
    pub fn voltage_sensor_mut(&mut self) -> &mut IsolatedVoltageSensor {
        &mut self.voltage
    }

    /// Samples both analog outputs for the given rail state: returns
    /// `(current_sensor_volts, voltage_sensor_volts)` at the ADC pins.
    pub fn sample(&mut self, rail: Volts, current: Amps, now: SimTime) -> (f64, f64) {
        (
            self.hall.output_voltage(current, now),
            self.voltage.output_voltage(rail, now),
        )
    }

    /// The nominal (datasheet) sensitivity in V/A the host should use
    /// to convert raw current readings.
    #[must_use]
    pub fn nominal_sensitivity(&self) -> f64 {
        self.kind.hall_spec().sensitivity_v_per_a
    }

    /// The nominal voltage gain (rail volts per ADC volt).
    #[must_use]
    pub fn nominal_gain(&self) -> f64 {
        self.kind.voltage_spec().scale(Self::VREF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_construct() {
        for kind in ModuleKind::ALL {
            let m = SensorModule::new(kind, 42);
            assert_eq!(m.kind(), kind);
            assert!(m.nominal_sensitivity() > 0.0);
            assert!(m.nominal_gain() >= 1.0);
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            ModuleKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ModuleKind::ALL.len());
    }

    #[test]
    fn ten_amp_modules_use_ten_amp_hall() {
        assert_eq!(ModuleKind::Slot10A12V.hall_spec().full_scale_amps, 10.0);
        assert_eq!(ModuleKind::Pcie8Pin20A.hall_spec().full_scale_amps, 20.0);
        assert_eq!(ModuleKind::HighCurrent50A.hall_spec().full_scale_amps, 50.0);
    }

    #[test]
    fn voltage_paths_match_rails() {
        assert_eq!(
            ModuleKind::Slot10A3V3.voltage_spec().full_scale_volts,
            4.125
        );
        assert_eq!(ModuleKind::UsbC.voltage_spec().full_scale_volts, 24.75);
        assert_eq!(
            ModuleKind::Pcie8Pin20A.voltage_spec().full_scale_volts,
            16.5
        );
    }

    #[test]
    fn ideal_module_reports_exact_power_path() {
        let mut m = SensorModule::ideal(ModuleKind::Slot10A12V);
        // Let the bandwidth filters settle on constant inputs.
        let mut out = (0.0, 0.0);
        for i in 0..50u64 {
            out = m.sample(
                Volts::new(12.0),
                Amps::new(4.0),
                SimTime::from_micros(i * 9),
            );
        }
        let current = (out.0 - SensorModule::VREF / 2.0) / m.nominal_sensitivity();
        let rail = out.1 * m.nominal_gain();
        assert!((current - 4.0).abs() < 0.02, "current {current}");
        assert!((rail - 12.0).abs() < 0.02, "rail {rail}");
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(ModuleKind::UsbC.to_string(), "USB-C");
    }
}
