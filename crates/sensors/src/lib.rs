//! Analog sensor physics models for the PowerSensor3 reproduction.
//!
//! A real PowerSensor3 sensor module carries a Melexis MLX91221
//! differential Hall current sensor and a Broadcom ACPL-C87B optically
//! isolated voltage sensor; both produce analog voltages that the
//! STM32F411's ADC digitises. This crate models that analog domain:
//!
//! * [`HallCurrentSensor`] — sensitivity, offset, gaussian noise
//!   (115 mA rms for the 10 A part), 300 kHz bandwidth, small cubic
//!   nonlinearity, and (near-zero, differential) external-field
//!   coupling.
//! * [`IsolatedVoltageSensor`] — divider scaling, gain error, amplifier
//!   noise, 100 kHz bandwidth.
//! * [`SensorModule`] — a current/voltage pair with connector metadata;
//!   constructors for the five module designs shipped with
//!   PowerSensor3 (§III-A).
//! * [`budget`] — the closed-form worst-case error budget behind the
//!   paper's Table I.
//! * [`ThermalDrift`] — the slow offset wander bounded to keep the
//!   50-hour stability result (§IV-B) within ±0.09 W.
//!
//! The models are deterministic given a seed, which keeps the entire
//! evaluation reproducible.

#![forbid(unsafe_code)]

mod adc_spec;
pub mod budget;
mod drift;
mod filter;
mod hall;
mod module;
mod noise;
mod voltage;

pub use adc_spec::AdcSpec;
pub use drift::ThermalDrift;
pub use filter::LowPassFilter;
pub use hall::{HallCurrentSensor, HallSensorSpec};
pub use module::{ModuleKind, SensorModule};
pub use noise::GaussianNoise;
pub use voltage::{IsolatedVoltageSensor, VoltageSensorSpec};
