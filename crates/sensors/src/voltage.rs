//! Optically isolated voltage sensor model (Broadcom ACPL-C87B plus
//! input divider).
//!
//! The rail voltage is divided down into the isolation amplifier's
//! input range and re-scaled to the ADC span, so the net transfer is
//! `V_adc = U / scale` with `scale = full_scale / vref_adc`. The model
//! adds a gain error (removed by the one-time calibration), amplifier
//! noise (amplified back up by the divider, which is why the 12 V
//! module's voltage error exceeds the 3.3 V module's — Table I), a
//! 100 kHz bandwidth limit, and thermal drift.

use ps3_units::{SimTime, Volts};

use crate::drift::ThermalDrift;
use crate::filter::LowPassFilter;
use crate::noise::GaussianNoise;

/// Static characteristics of an isolated voltage sensing path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageSensorSpec {
    /// Rail voltage that maps to full ADC scale, in volts.
    pub full_scale_volts: f64,
    /// Rail-referred amplifier + divider noise in volts RMS.
    pub noise_rms_volts: f64,
    /// −3 dB bandwidth of the voltage path in Hz.
    pub bandwidth_hz: f64,
    /// Worst-case factory gain error as a fraction (before calibration).
    pub max_gain_error: f64,
}

impl VoltageSensorSpec {
    /// 12 V rail sensing (slot 12 V, PCIe 8-pin 12 V): 16.5 V full
    /// scale so the nominal rail sits at ~72 % of range.
    pub const RAIL_12V: Self = Self {
        full_scale_volts: 16.5,
        noise_rms_volts: 0.00685,
        bandwidth_hz: 100_000.0,
        max_gain_error: 0.02,
    };

    /// 3.3 V slot rail sensing: 4.125 V full scale.
    pub const RAIL_3V3: Self = Self {
        full_scale_volts: 4.125,
        noise_rms_volts: 0.00596,
        bandwidth_hz: 100_000.0,
        max_gain_error: 0.02,
    };

    /// USB-C sensing up to 20 V (USB-PD): 24.75 V full scale.
    pub const RAIL_USBC: Self = Self {
        full_scale_volts: 24.75,
        noise_rms_volts: 0.00550,
        bandwidth_hz: 100_000.0,
        max_gain_error: 0.02,
    };

    /// The divider scale: rail volts per ADC volt.
    #[must_use]
    pub fn scale(&self, vref_adc: f64) -> f64 {
        self.full_scale_volts / vref_adc
    }

    /// Worst-case rail-referred noise (3σ) in volts.
    #[must_use]
    pub fn worst_case_noise_volts(&self) -> f64 {
        3.0 * self.noise_rms_volts
    }
}

/// A stateful isolated voltage sensor instance.
///
/// # Examples
///
/// ```
/// use ps3_sensors::{IsolatedVoltageSensor, VoltageSensorSpec};
/// use ps3_units::{SimTime, Volts};
///
/// let mut sensor = IsolatedVoltageSensor::new(VoltageSensorSpec::RAIL_12V, 3.3, 42);
/// let v_adc = sensor.output_voltage(Volts::new(12.0), SimTime::ZERO);
/// // 12 V on a 16.5 V full-scale path lands near 2.4 V at the ADC.
/// assert!((v_adc - 2.4).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct IsolatedVoltageSensor {
    spec: VoltageSensorSpec,
    vref_adc: f64,
    filter: LowPassFilter,
    noise: GaussianNoise,
    drift: ThermalDrift,
    /// Multiplicative factory gain error (1.0 = perfect).
    gain: f64,
}

impl IsolatedVoltageSensor {
    /// Creates a sensor digitised against `vref_adc`, with deterministic
    /// factory gain error and noise derived from `seed`.
    #[must_use]
    pub fn new(spec: VoltageSensorSpec, vref_adc: f64, seed: u64) -> Self {
        let mut boot = GaussianNoise::new(1.0, seed ^ 0xA076_1D64_78BD_642F);
        let gain = 1.0 + boot.uniform(-spec.max_gain_error, spec.max_gain_error);
        Self {
            spec,
            vref_adc,
            filter: LowPassFilter::new(spec.bandwidth_hz),
            noise: GaussianNoise::new(spec.noise_rms_volts, seed),
            drift: ThermalDrift::new(spec.noise_rms_volts * 0.3, 6.0 * 3600.0, seed ^ 0xBEEF),
            gain,
        }
    }

    /// The sensor's static spec.
    #[must_use]
    pub fn spec(&self) -> &VoltageSensorSpec {
        &self.spec
    }

    /// The factory gain error factor (what calibration must remove).
    #[must_use]
    pub fn factory_gain(&self) -> f64 {
        self.gain
    }

    /// Disables noise, drift, and gain error (ideal-sensor mode).
    pub fn make_ideal(&mut self) {
        self.gain = 1.0;
        self.noise = GaussianNoise::new(0.0, 0);
        self.drift = ThermalDrift::none();
    }

    /// Samples the ADC-side output voltage for rail voltage `rail` at
    /// time `now`, clamped to `[0, vref_adc]`.
    pub fn output_voltage(&mut self, rail: Volts, now: SimTime) -> f64 {
        let drift = self.drift.offset_at(now);
        let ideal = rail.value() * self.gain + drift;
        let filtered = self.filter.sample(ideal, now);
        let noisy = filtered + self.noise.sample();
        (noisy / self.spec.scale(self.vref_adc)).clamp(0.0, self.vref_adc)
    }

    /// The ideal ADC-side output for a rail voltage.
    #[must_use]
    pub fn ideal_output(&self, rail: Volts) -> Volts {
        Volts::new(rail.value() / self.spec.scale(self.vref_adc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_analysis::SampleStats;
    use ps3_units::SimDuration;

    fn settled(sensor: &mut IsolatedVoltageSensor, rail: f64, n: usize) -> Vec<f64> {
        let mut t = SimTime::ZERO;
        let dt = SimDuration::from_nanos(8_333);
        (0..n)
            .map(|_| {
                t += dt;
                sensor.output_voltage(Volts::new(rail), t)
            })
            .collect()
    }

    #[test]
    fn transfer_scale_12v() {
        let mut s = IsolatedVoltageSensor::new(VoltageSensorSpec::RAIL_12V, 3.3, 1);
        s.make_ideal();
        let v = settled(&mut s, 12.0, 10).pop().unwrap();
        assert!((v - 12.0 / 5.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn transfer_scale_3v3() {
        let mut s = IsolatedVoltageSensor::new(VoltageSensorSpec::RAIL_3V3, 3.3, 2);
        s.make_ideal();
        let v = settled(&mut s, 3.3, 10).pop().unwrap();
        assert!((v - 3.3 / 1.25).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn saturates_at_full_scale() {
        let mut s = IsolatedVoltageSensor::new(VoltageSensorSpec::RAIL_3V3, 3.3, 3);
        s.make_ideal();
        let v = settled(&mut s, 50.0, 10).pop().unwrap();
        assert_eq!(v, 3.3);
    }

    #[test]
    fn gain_error_within_band() {
        for seed in 0..32 {
            let s = IsolatedVoltageSensor::new(VoltageSensorSpec::RAIL_12V, 3.3, seed);
            assert!((s.factory_gain() - 1.0).abs() <= 0.02);
        }
    }

    #[test]
    fn rail_referred_noise_magnitude() {
        let spec = VoltageSensorSpec::RAIL_12V;
        let mut s = IsolatedVoltageSensor::new(spec, 3.3, 4);
        let samples = settled(&mut s, 12.0, 100_000);
        // Refer ADC-side samples back to the rail.
        let rail: Vec<f64> = samples.iter().map(|v| v * spec.scale(3.3)).collect();
        let stats = SampleStats::from_samples(rail).unwrap();
        assert!(
            (stats.std - spec.noise_rms_volts).abs() < 0.001,
            "std {}",
            stats.std
        );
    }

    #[test]
    fn ideal_output_matches_scale() {
        let s = IsolatedVoltageSensor::new(VoltageSensorSpec::RAIL_USBC, 3.3, 5);
        let v = s.ideal_output(Volts::new(20.0));
        assert!((v.value() - 20.0 / 7.5).abs() < 1e-12);
    }
}
