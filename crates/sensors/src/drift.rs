//! Slow thermal drift of sensor offsets.
//!
//! §IV-B of the paper shows the PCIe 8-pin modules drift by only
//! ±0.09 W over 50 hours, which justifies the one-time calibration.
//! This model produces that behaviour: a bounded, slowly varying offset
//! composed of a thermal sinusoid (HVAC-like daily cycle) and a
//! mean-reverting random walk.

use ps3_units::SimTime;

use crate::noise::GaussianNoise;

/// A bounded slowly-varying additive offset.
///
/// # Examples
///
/// ```
/// use ps3_sensors::ThermalDrift;
/// use ps3_units::SimTime;
///
/// let mut d = ThermalDrift::new(0.005, 3600.0, 11);
/// let offset = d.offset_at(SimTime::from_micros(1_000_000));
/// assert!(offset.abs() <= 0.015);
/// ```
#[derive(Debug, Clone)]
pub struct ThermalDrift {
    /// Peak amplitude of the deterministic thermal component.
    amplitude: f64,
    /// Period of the thermal component in seconds.
    period_s: f64,
    /// Mean-reverting random component state.
    walk: f64,
    noise: GaussianNoise,
    last_update: Option<SimTime>,
    phase: f64,
}

impl ThermalDrift {
    /// Creates a drift source with the given amplitude (in the unit of
    /// whatever quantity it offsets, e.g. amps) and thermal period.
    ///
    /// # Panics
    ///
    /// Panics if `period_s` is not strictly positive.
    #[must_use]
    pub fn new(amplitude: f64, period_s: f64, seed: u64) -> Self {
        assert!(period_s > 0.0, "period must be positive");
        let mut noise = GaussianNoise::new(1.0, seed);
        let phase = noise.uniform(0.0, core::f64::consts::TAU);
        Self {
            amplitude,
            period_s,
            walk: 0.0,
            noise,
            last_update: None,
            phase,
        }
    }

    /// A drift source that never drifts (for unit tests).
    #[must_use]
    pub fn none() -> Self {
        Self::new(0.0, 1.0, 0)
    }

    /// The drift offset at simulated time `now`.
    ///
    /// Guaranteed bounded: |offset| ≤ 3 × amplitude.
    pub fn offset_at(&mut self, now: SimTime) -> f64 {
        let t = now.as_secs_f64();
        let thermal =
            self.amplitude * (core::f64::consts::TAU * t / self.period_s + self.phase).sin();
        // Mean-reverting (Ornstein–Uhlenbeck-ish) walk updated at most
        // once per simulated second to stay cheap at 20 kHz.
        let should_step = match self.last_update {
            None => true,
            Some(last) => now.saturating_duration_since(last).as_secs_f64() >= 1.0,
        };
        if should_step && self.amplitude > 0.0 {
            self.last_update = Some(now);
            let theta = 0.01; // reversion rate per step
            self.walk += -theta * self.walk + self.noise.sample() * self.amplitude * 0.02;
            self.walk = self.walk.clamp(-2.0 * self.amplitude, 2.0 * self.amplitude);
        }
        thermal + self.walk
    }

    /// The configured amplitude.
    #[must_use]
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_units::SimDuration;

    #[test]
    fn none_is_zero_forever() {
        let mut d = ThermalDrift::none();
        for h in 0..100u64 {
            assert_eq!(
                d.offset_at(SimTime::ZERO + SimDuration::from_secs(h * 3600)),
                0.0
            );
        }
    }

    #[test]
    fn bounded_over_fifty_hours() {
        let mut d = ThermalDrift::new(0.006, 6.0 * 3600.0, 1234);
        let mut worst: f64 = 0.0;
        // One probe per 15 simulated minutes for 50 h, like §IV-B.
        for i in 0..200u64 {
            let t = SimTime::ZERO + SimDuration::from_secs(i * 900);
            worst = worst.max(d.offset_at(t).abs());
        }
        assert!(worst <= 3.0 * 0.006, "worst drift {worst}");
        assert!(worst > 0.0, "drift should not be identically zero");
    }

    #[test]
    fn slow_on_sample_timescale() {
        // Over one 50 µs sample frame the drift must be essentially flat.
        let mut d = ThermalDrift::new(0.006, 3600.0, 5);
        let a = d.offset_at(SimTime::from_micros(1_000_000));
        let b = d.offset_at(SimTime::from_micros(1_000_050));
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ThermalDrift::new(0.01, 100.0, 77);
        let mut b = ThermalDrift::new(0.01, 100.0, 77);
        for i in 0..20u64 {
            let t = SimTime::ZERO + SimDuration::from_secs(i * 10);
            assert_eq!(a.offset_at(t), b.offset_at(t));
        }
    }
}
