//! Seeded gaussian noise source.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic white gaussian noise generator.
///
/// Every analog error source in the sensor models (Hall sensor noise,
/// amplifier noise) draws from one of these. Seeding makes entire
/// simulated experiments bit-reproducible.
///
/// # Examples
///
/// ```
/// use ps3_sensors::GaussianNoise;
///
/// let mut a = GaussianNoise::new(0.1, 42);
/// let mut b = GaussianNoise::new(0.1, 42);
/// assert_eq!(a.sample(), b.sample());
/// ```
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    sigma: f64,
    rng: StdRng,
    cached: Option<f64>,
}

impl GaussianNoise {
    /// Creates a noise source with standard deviation `sigma`.
    #[must_use]
    pub fn new(sigma: f64, seed: u64) -> Self {
        Self {
            sigma,
            rng: StdRng::seed_from_u64(seed),
            cached: None,
        }
    }

    /// The configured standard deviation.
    #[must_use]
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one sample ~ N(0, sigma²) via the Box–Muller transform.
    pub fn sample(&mut self) -> f64 {
        if let Some(z) = self.cached.take() {
            return z * self.sigma;
        }
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (core::f64::consts::TAU * u2).sin_cos();
        self.cached = Some(r * s);
        r * c * self.sigma
    }

    /// Draws a uniform sample in `[lo, hi)` from the same stream
    /// (used for quantisation-dither style effects).
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_analysis::SampleStats;

    #[test]
    fn statistics_match_parameters() {
        let mut n = GaussianNoise::new(0.115, 7);
        let stats = SampleStats::from_samples((0..200_000).map(|_| n.sample())).unwrap();
        assert!(stats.mean.abs() < 2e-3, "mean {}", stats.mean);
        assert!(
            (stats.std - 0.115).abs() < 2e-3,
            "std {} should be ≈0.115",
            stats.std
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a: Vec<f64> = {
            let mut n = GaussianNoise::new(1.0, 99);
            (0..16).map(|_| n.sample()).collect()
        };
        let b: Vec<f64> = {
            let mut n = GaussianNoise::new(1.0, 99);
            (0..16).map(|_| n.sample()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianNoise::new(1.0, 1);
        let mut b = GaussianNoise::new(1.0, 2);
        assert_ne!(a.sample(), b.sample());
    }

    #[test]
    fn zero_sigma_is_silent() {
        let mut n = GaussianNoise::new(0.0, 3);
        for _ in 0..32 {
            assert_eq!(n.sample(), 0.0);
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut n = GaussianNoise::new(1.0, 5);
        for _ in 0..1000 {
            let v = n.uniform(-0.5, 0.5);
            assert!((-0.5..0.5).contains(&v));
        }
    }
}
