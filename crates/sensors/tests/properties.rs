//! Property-based tests of the analog sensor models.

use proptest::prelude::*;

use ps3_sensors::{
    AdcSpec, HallCurrentSensor, HallSensorSpec, IsolatedVoltageSensor, ModuleKind, SensorModule,
    VoltageSensorSpec,
};
use ps3_units::{Amps, SimDuration, SimTime, Volts};

/// Settles an ideal Hall sensor on a constant current and returns the
/// final output voltage.
fn settled_hall(spec: HallSensorSpec, amps: f64) -> f64 {
    let mut s = HallCurrentSensor::new(spec, 3.3, 0);
    s.make_ideal();
    let mut out = 0.0;
    for i in 0..200u64 {
        out = s.output_voltage(
            Amps::new(amps),
            SimTime::ZERO + SimDuration::from_nanos(i * 1042),
        );
    }
    out
}

proptest! {
    #[test]
    fn hall_output_is_monotonic_in_current(
        a in -9.0f64..9.0,
        delta in 0.1f64..1.0,
    ) {
        let spec = HallSensorSpec::MLX91221_10A;
        let low = settled_hall(spec, a);
        let high = settled_hall(spec, a + delta);
        prop_assert!(high > low, "{a} A -> {low} V, {} A -> {high} V", a + delta);
    }

    #[test]
    fn hall_output_always_within_rails(amps in -1e3f64..1e3) {
        let v = settled_hall(HallSensorSpec::MLX91221_20A, amps);
        prop_assert!((0.0..=3.3).contains(&v));
    }

    #[test]
    fn voltage_sensor_is_monotonic(u in 0.0f64..15.0, delta in 0.1f64..1.0) {
        let mut s = IsolatedVoltageSensor::new(VoltageSensorSpec::RAIL_12V, 3.3, 0);
        s.make_ideal();
        let mut low = 0.0;
        let mut high = 0.0;
        for i in 0..200u64 {
            let t = SimTime::ZERO + SimDuration::from_nanos(i * 1042);
            low = s.output_voltage(Volts::new(u), t);
        }
        let mut s2 = IsolatedVoltageSensor::new(VoltageSensorSpec::RAIL_12V, 3.3, 0);
        s2.make_ideal();
        for i in 0..200u64 {
            let t = SimTime::ZERO + SimDuration::from_nanos(i * 1042);
            high = s2.output_voltage(Volts::new(u + delta), t);
        }
        prop_assert!(high > low);
    }

    #[test]
    fn adc_quantize_is_monotonic(v1 in 0.0f64..3.3, v2 in 0.0f64..3.3) {
        let adc = AdcSpec::POWERSENSOR3;
        if v1 <= v2 {
            prop_assert!(adc.quantize(v1) <= adc.quantize(v2));
        } else {
            prop_assert!(adc.quantize(v1) >= adc.quantize(v2));
        }
    }

    #[test]
    fn ideal_module_decodes_back_to_truth(
        amps in -8.0f64..8.0,
        volts in 9.0f64..14.0,
    ) {
        let mut m = SensorModule::ideal(ModuleKind::Slot10A12V);
        let mut out = (0.0, 0.0);
        for i in 0..300u64 {
            out = m.sample(
                Volts::new(volts),
                Amps::new(amps),
                SimTime::ZERO + SimDuration::from_nanos(i * 1042),
            );
        }
        let i_back = (out.0 - SensorModule::VREF / 2.0) / m.nominal_sensitivity();
        let u_back = out.1 * m.nominal_gain();
        // Nonlinearity allows up to 0.3 % of full scale on current.
        prop_assert!((i_back - amps).abs() < 0.05, "I {amps} -> {i_back}");
        prop_assert!((u_back - volts).abs() < 0.01, "U {volts} -> {u_back}");
    }

    #[test]
    fn factory_errors_bounded_for_any_seed(seed in 0u64..10_000) {
        let m = SensorModule::new(ModuleKind::UsbC, seed);
        prop_assert!(
            m.hall().factory_offset().value().abs()
                <= m.hall().spec().max_offset_error_amps
        );
        prop_assert!(
            (m.voltage_sensor().factory_gain() - 1.0).abs()
                <= m.voltage_sensor().spec().max_gain_error
        );
    }
}
