//! End-to-end fleet coordinator tests over real loopback sockets.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ps3_fleet::{testbed_rig_factory, Fleet, FleetConfig, FleetQuery, RigFactory};
use ps3_stream::{RigSelector, StreamClient, StreamClientConfig};
use ps3_units::{SimDuration, SimTime};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ps3-fleet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Polls until `cond` holds or the deadline passes.
fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn fleet_sub(rig: RigSelector) -> StreamClientConfig {
    StreamClientConfig {
        rig: Some(rig),
        ..StreamClientConfig::default()
    }
}

#[test]
fn merged_and_per_rig_subscriptions_flow() {
    let dir = temp_dir("merged");
    let mut fleet = Fleet::start(
        4,
        testbed_rig_factory(11),
        "127.0.0.1:0",
        FleetConfig::new(&dir),
    )
    .expect("start fleet");
    let addr = fleet.local_addr();

    let merged = StreamClient::connect(addr, fleet_sub(RigSelector::All)).expect("merged sub");
    let hello = merged.fleet().expect("fleet hello");
    assert_eq!(hello.rigs, 4);
    let one = StreamClient::connect(addr, fleet_sub(RigSelector::One(2))).expect("rig-2 sub");
    let legacy = StreamClient::connect(addr, StreamClientConfig::default()).expect("legacy sub");
    assert!(legacy.fleet().is_none(), "legacy hello has no fleet suffix");

    // Merged subscriptions see non-decreasing timestamps per rig, and
    // (absent restarts) near-sorted globally; check per-rig order.
    let order_ok = Arc::new(AtomicBool::new(true));
    {
        let order_ok = Arc::clone(&order_ok);
        let mut last = std::collections::BTreeMap::new();
        merged.set_rig_frame_callback(move |rig, frame| {
            if let Some(prev) = last.insert(rig, frame.time) {
                if frame.time < prev {
                    order_ok.store(false, Ordering::SeqCst);
                }
            }
        });
    }

    for _ in 0..12 {
        fleet.advance(SimDuration::from_millis(5));
        std::thread::sleep(Duration::from_millis(10));
    }
    // 60 ms at 20 kHz is 1200 frames per rig.
    wait_for(
        || merged.frames_received() >= 4 * 1000 && one.frames_received() >= 1000,
        "streams to flow",
    );
    wait_for(|| legacy.frames_received() >= 1000, "legacy stream");

    let counts = merged.rig_counts();
    assert_eq!(counts.len(), 4, "merged stream covers all rigs: {counts:?}");
    for c in &counts {
        assert!(c.frames >= 1000, "rig {} starved: {c:?}", c.rig);
    }
    assert!(order_ok.load(Ordering::SeqCst), "per-rig timestamp order");

    let one_counts = one.rig_counts();
    assert_eq!(one_counts.len(), 1);
    assert_eq!(one_counts[0].rig, 2);
    // The legacy client streams rig 0 without rig tagging.
    assert!(legacy.rig_counts().is_empty());

    let roster = merged
        .query_fleet(Duration::from_secs(5))
        .expect("query fleet");
    assert_eq!(roster.len(), 4);
    for rig in &roster {
        assert!(rig.alive, "rig {} should be alive: {rig:?}", rig.id);
        assert_eq!(rig.restarts, 0);
        assert!(rig.frames_published >= 1200);
    }

    let stats = merged.query_stats(Duration::from_secs(5)).expect("stats");
    assert_eq!(stats.active_subscribers, 3);
    assert!(stats.frames_published >= 4 * 1200);

    fleet.shutdown();
    wait_for(|| !merged.is_alive(), "merged client to see shutdown");
    assert!(!merged.is_evicted(), "shutdown is not a for-cause eviction");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn selector_out_of_range_is_rejected() {
    let dir = temp_dir("reject");
    let fleet = Fleet::start(
        2,
        testbed_rig_factory(5),
        "127.0.0.1:0",
        FleetConfig::new(&dir),
    )
    .expect("start fleet");
    let err = StreamClient::connect(fleet.local_addr(), fleet_sub(RigSelector::One(7)))
        .expect_err("selector beyond the roster must fail the handshake");
    // The coordinator closes the connection before Hello.
    drop(err);
    drop(fleet);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Factory whose rig 1 crashes once a shared flag flips.
fn crashing_factory(seed: u64, crash_rig1: &Arc<AtomicBool>) -> RigFactory {
    let mut inner = testbed_rig_factory(seed);
    let flag = Arc::clone(crash_rig1);
    Box::new(move |id, generation| {
        let mut parts = inner(id, generation)?;
        if id == 1 && generation == 0 {
            let flag = Arc::clone(&flag);
            parts.crashed = Box::new(move || flag.load(Ordering::SeqCst));
        }
        Ok(parts)
    })
}

#[test]
fn supervisor_restarts_crashed_rig_into_fresh_shard() {
    let dir = temp_dir("restart");
    let crash = Arc::new(AtomicBool::new(false));
    let mut fleet = Fleet::start(
        3,
        crashing_factory(23, &crash),
        "127.0.0.1:0",
        FleetConfig::new(&dir),
    )
    .expect("start fleet");

    let merged =
        StreamClient::connect(fleet.local_addr(), fleet_sub(RigSelector::All)).expect("sub");
    fleet.advance(SimDuration::from_millis(5));
    wait_for(|| merged.rig_counts().len() == 3, "all rigs streaming");

    crash.store(true, Ordering::SeqCst);
    fleet.advance(SimDuration::from_millis(5));
    let down = fleet
        .status()
        .into_iter()
        .find(|r| r.id == 1)
        .expect("rig 1 in roster");
    assert!(!down.alive, "crashed rig marked dead: {down:?}");

    assert_eq!(fleet.supervise().expect("supervise"), 1);
    let up = fleet
        .status()
        .into_iter()
        .find(|r| r.id == 1)
        .expect("rig 1 in roster");
    assert!(up.alive, "restarted rig alive again: {up:?}");
    assert_eq!(up.restarts, 1);
    assert_eq!(up.shards, 2);

    // The replacement generation streams into the same merged session.
    let before = merged
        .rig_counts()
        .iter()
        .find(|c| c.rig == 1)
        .map_or(0, |c| c.frames);
    for _ in 0..4 {
        fleet.advance(SimDuration::from_millis(5));
        std::thread::sleep(Duration::from_millis(10));
    }
    wait_for(
        || {
            merged
                .rig_counts()
                .iter()
                .find(|c| c.rig == 1)
                .is_some_and(|c| c.frames > before)
        },
        "restarted rig to stream",
    );

    fleet.shutdown();
    // Both generations left shards behind.
    assert!(dir.join("rig-001-g0.ps3a").exists());
    assert!(dir.join("rig-001-g1.ps3a").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn queries_aggregate_across_shards_bit_exactly() {
    let dir = temp_dir("query");
    let mut fleet = Fleet::start(
        4,
        testbed_rig_factory(42),
        "127.0.0.1:0",
        FleetConfig::new(&dir),
    )
    .expect("start fleet");
    for _ in 0..20 {
        fleet.advance(SimDuration::from_millis(5));
    }
    fleet.shutdown();

    let query = FleetQuery::open(&dir).expect("open fleet query");
    assert_eq!(query.rigs(), &[0, 1, 2, 3]);
    assert_eq!(query.shard_count(), 4);

    let (start, end) = (SimTime::ZERO, SimTime::from_micros(u64::MAX / 2_000));
    // Ground truth: per-shard energies via ps3-archive directly,
    // folded in shard order — the query must match bit-for-bit.
    let mut expected = 0.0f64;
    for rig in 0..4u16 {
        let shard = ps3_archive::Archive::open(dir.join(ps3_fleet::shard_name(rig, 0)))
            .expect("open shard");
        expected += shard.energy(start, end).expect("shard energy").value();
    }
    let total = query.total_energy(start, end).expect("total energy");
    assert_eq!(
        total.value().to_bits(),
        expected.to_bits(),
        "cross-rig energy must equal the in-order fold of per-shard energies"
    );
    assert!(total.value() > 0.0);

    let stats = query.fleet_stats(start, end).expect("fleet stats");
    // 100 ms of capture at 20 kHz is 2000 frames per rig.
    assert!(stats.count >= 4 * 1900, "stats cover all rigs: {stats:?}");
    assert!(stats.max_w >= stats.min_w);

    // Rig loads rise with id (1 A + 0.75 A per id), so top-k is
    // descending rig id here.
    let top = query.top_k(2, start, end).expect("top-k");
    assert_eq!(top.len(), 2);
    assert_eq!(top[0].rig, 3);
    assert_eq!(top[1].rig, 2);
    assert!(top[0].mean.value() > top[1].mean.value());

    let joined = query
        .joined_downsample(start, end, 100)
        .expect("joined downsample");
    assert_eq!(joined.rigs, vec![0, 1, 2, 3]);
    assert!(!joined.rows.is_empty());
    for row in &joined.rows {
        assert_eq!(row.power.len(), 4);
    }
    // ~2000 frames per rig at divisor 100 is ~20 full buckets.
    assert!(joined.rows.len() >= 18, "rows: {}", joined.rows.len());
    let _ = std::fs::remove_dir_all(&dir);
}
