//! The fleet coordinator: N supervised rigs behind one TCP endpoint.
//!
//! Each rig is a full acquisition stack — sensor, per-rig
//! [`StreamDaemon`], and an [`ArchiveWriter`] persisting to its own
//! shard under the fleet data dir (`rig-{id:03}-g{gen}.ps3a`; the
//! generation counts restarts, so a crash never appends to a
//! possibly-torn file). The coordinator additionally taps every rig
//! into a per-rig broadcast ring and serves rig-routed subscriptions
//! off those rings:
//!
//! * a legacy subscription (no [`RigSelector`]) streams rig 0 with
//!   plain `Batch`/`Gap` messages — old clients work unchanged;
//! * `One`/`Set`/`All` subscriptions stream rig-tagged
//!   `RigBatch`/`RigGap` messages, k-way merged on sample timestamps
//!   across the selected rigs with per-rig gap propagation.
//!
//! Merge ordering: a frame is emitted once every other selected,
//! alive, non-closed rig has a frame queued (so the true minimum
//! timestamp is known); ties break toward the lowest rig id. A rig
//! restart starts a fresh device timeline, which appears as a
//! documented timestamp discontinuity in the merged stream — frames
//! are still delivered and accounted, never silently skipped.
//!
//! Supervision is poll-driven and deterministic: [`Fleet::advance`]
//! moves every healthy rig's virtual clock, [`Fleet::supervise`]
//! restarts crashed rigs (fresh sensor, fresh shard, tap resumed into
//! the *same* ring so per-rig publish counters continue).

use std::collections::VecDeque;
use std::io;
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use ps3_archive::{ArchiveWriter, ArchiveWriterOptions};
use ps3_firmware::{FRAME_INTERVAL, SENSOR_SLOTS};
use ps3_stream::proto::{read_msg_body, write_msg, MAX_BATCH_FRAMES};
use ps3_stream::{
    bind_reusable, BroadcastRing, ClientMsg, Downsampler, EvictReason, FleetHello, ReadOutcome,
    RigSelector, RigStatus, ServerMsg, StreamDaemon, StreamDaemonConfig, StreamFrame, StreamStats,
};
use ps3_units::SimDuration;

use crate::rig::{RigFactory, RigParts};
use crate::FLEET_PROTO_VERSION;

/// Tuning for [`Fleet::start`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Where per-rig archive shards live (created if absent).
    pub data_dir: PathBuf,
    /// Stream tuning, shared by the coordinator's subscriber sessions
    /// and every per-rig daemon.
    pub stream: StreamDaemonConfig,
    /// Archive writer tuning for the per-rig shards.
    pub archive: ArchiveWriterOptions,
}

impl FleetConfig {
    /// Defaults with shards under `data_dir`.
    #[must_use]
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            stream: StreamDaemonConfig::default(),
            archive: ArchiveWriterOptions::default(),
        }
    }
}

/// Shard filename for one rig generation.
#[must_use]
pub fn shard_name(rig: u16, generation: u32) -> String {
    format!("rig-{rig:03}-g{generation}.ps3a")
}

/// Per-rig state shared with subscriber sessions.
struct RigShared {
    ring: Arc<BroadcastRing>,
    alive: AtomicBool,
    restarts: AtomicU32,
    shards: AtomicU32,
    gap_events: AtomicU64,
    writer_dropped: AtomicU64,
}

struct FleetShared {
    stream: StreamDaemonConfig,
    rigs: Vec<RigShared>,
    /// Pre-encoded `Hello` without the fleet suffix (legacy clients).
    hello_legacy: Vec<u8>,
    /// Pre-encoded `Hello` with the fleet suffix (rig-routed clients).
    hello_fleet: Vec<u8>,
    shutdown: AtomicBool,
    active_subscribers: AtomicU64,
    evicted: AtomicU64,
    gap_events: AtomicU64,
    clients: Mutex<Vec<JoinHandle<()>>>,
}

/// Owner-side state for one rig generation.
struct RigRuntime {
    id: u16,
    generation: u32,
    sensor: ps3_core::SharedPowerSensor,
    advance: Box<dyn FnMut(SimDuration) + Send>,
    crashed: Box<dyn Fn() -> bool + Send>,
    daemon: StreamDaemon,
    writer: Option<ArchiveWriter>,
    tap_alive: Arc<AtomicBool>,
    /// Drops accumulated from already-finished writers of this rig.
    writer_dropped_acc: u64,
}

/// A running fleet coordinator. Dropping it shuts everything down.
pub struct Fleet {
    shared: Arc<FleetShared>,
    rigs: Mutex<Vec<RigRuntime>>,
    factory: Mutex<RigFactory>,
    config: FleetConfig,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Fleet {
    /// Spawns `rig_count` rigs (generation 0 each) and starts serving
    /// `addr` (port 0 for ephemeral).
    ///
    /// # Errors
    ///
    /// Rig construction, shard creation, or socket bind errors.
    pub fn start<A: ToSocketAddrs>(
        rig_count: u16,
        mut factory: RigFactory,
        addr: A,
        config: FleetConfig,
    ) -> io::Result<Self> {
        assert!(rig_count > 0, "a fleet needs at least one rig");
        std::fs::create_dir_all(&config.data_dir)?;

        let rig_shared: Vec<RigShared> = (0..rig_count)
            .map(|_| RigShared {
                ring: Arc::new(BroadcastRing::new(config.stream.ring_capacity)),
                alive: AtomicBool::new(true),
                restarts: AtomicU32::new(0),
                shards: AtomicU32::new(1),
                gap_events: AtomicU64::new(0),
                writer_dropped: AtomicU64::new(0),
            })
            .collect();

        // Built as a plain value first — the hello frames need rig
        // 0's sensor configuration, which only exists after the rigs
        // are built — and wrapped in an Arc exactly once at the end.
        let mut shared = FleetShared {
            stream: config.stream.clone(),
            rigs: rig_shared,
            hello_legacy: Vec::new(),
            hello_fleet: Vec::new(),
            shutdown: AtomicBool::new(false),
            active_subscribers: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            gap_events: AtomicU64::new(0),
            clients: Mutex::new(Vec::new()),
        };

        let mut runtimes = Vec::with_capacity(usize::from(rig_count));
        for id in 0..rig_count {
            runtimes.push(build_rig(&mut factory, id, 0, &shared, &config)?);
        }

        // Both Hello forms carry rig 0's sensor configuration (the
        // factory gives every rig the same module layout).
        let configs = Box::new(runtimes[0].sensor.configs());
        let hello = |fleet: Option<FleetHello>| {
            ServerMsg::Hello {
                frame_interval_us: FRAME_INTERVAL.as_micros() as u32,
                configs: configs.clone(),
                fleet,
            }
            .encode()
        };
        shared.hello_legacy = hello(None);
        shared.hello_fleet = hello(Some(FleetHello {
            version: FLEET_PROTO_VERSION,
            rigs: rig_count,
        }));
        let shared = Arc::new(shared);

        let listener = bind_reusable(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ps3-fleet-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };

        Ok(Self {
            shared,
            rigs: Mutex::new(runtimes),
            factory: Mutex::new(factory),
            config,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The coordinator's listening address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of rigs in the fleet.
    #[must_use]
    pub fn rig_count(&self) -> u16 {
        self.shared.rigs.len() as u16
    }

    /// Where the per-rig archive shards live.
    #[must_use]
    pub fn data_dir(&self) -> &Path {
        &self.config.data_dir
    }

    /// The per-rig daemon's own listening address (for direct
    /// attachment bypassing the coordinator), if the rig is up.
    #[must_use]
    pub fn rig_daemon_addr(&self, id: u16) -> Option<SocketAddr> {
        self.rigs
            .lock()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.daemon.local_addr())
    }

    /// Advances every healthy rig's virtual clock by `d`. A rig that
    /// has crashed is skipped (and marked dead for subscribers) until
    /// [`Fleet::supervise`] restarts it.
    pub fn advance(&self, d: SimDuration) {
        let mut rigs = self.rigs.lock();
        for rig in rigs.iter_mut() {
            if (rig.crashed)() || !rig.sensor.is_alive() {
                self.shared.rigs[usize::from(rig.id)]
                    .alive
                    .store(false, Ordering::SeqCst);
                continue;
            }
            (rig.advance)(d);
        }
        refresh_writer_counters(&self.shared, &rigs);
    }

    /// Restarts every crashed rig: its writer is finished (sealing the
    /// old shard), a fresh sensor generation is built, its tap resumes
    /// into the same per-rig ring, and archiving continues into a new
    /// shard. Returns how many rigs were restarted.
    ///
    /// # Errors
    ///
    /// Factory or shard-creation failure for a replacement rig.
    pub fn supervise(&self) -> io::Result<u32> {
        let mut rigs = self.rigs.lock();
        let mut factory = self.factory.lock();
        let mut restarted = 0u32;
        for rig in rigs.iter_mut() {
            if !(rig.crashed)() && rig.sensor.is_alive() {
                continue;
            }
            let rs = &self.shared.rigs[usize::from(rig.id)];
            rig.tap_alive.store(false, Ordering::SeqCst);
            if let Some(writer) = rig.writer.take() {
                // A failed finish means the shard tail is torn; the
                // sealed prefix remains readable via recovery.
                if let Ok(stats) = writer.finish() {
                    rig.writer_dropped_acc += stats.dropped;
                }
            }
            rig.daemon.shutdown();

            let generation = rig.generation + 1;
            let fresh = build_rig(&mut factory, rig.id, generation, &self.shared, &self.config)?;
            let writer_dropped_acc = rig.writer_dropped_acc;
            *rig = fresh;
            rig.writer_dropped_acc = writer_dropped_acc;

            rs.alive.store(true, Ordering::SeqCst);
            rs.restarts.fetch_add(1, Ordering::SeqCst);
            rs.shards.fetch_add(1, Ordering::SeqCst);
            restarted += 1;
        }
        refresh_writer_counters(&self.shared, &rigs);
        Ok(restarted)
    }

    /// Per-rig status roster (what `fleet status` and `QueryFleet`
    /// report).
    #[must_use]
    pub fn status(&self) -> Vec<RigStatus> {
        refresh_writer_counters(&self.shared, &self.rigs.lock());
        snapshot(&self.shared)
    }

    /// Aggregate counters across the coordinator endpoint.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        aggregate_stats(&self.shared)
    }

    /// Stops serving, disconnects subscribers, seals every shard, and
    /// joins all threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for rig in &self.shared.rigs {
            rig.ring.close();
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let clients = std::mem::take(&mut *self.shared.clients.lock());
        for handle in clients {
            let _ = handle.join();
        }
        let mut rigs = self.rigs.lock();
        for rig in rigs.iter_mut() {
            rig.tap_alive.store(false, Ordering::SeqCst);
            if let Some(writer) = rig.writer.take() {
                if let Ok(stats) = writer.finish() {
                    rig.writer_dropped_acc += stats.dropped;
                    self.shared.rigs[usize::from(rig.id)]
                        .writer_dropped
                        .store(rig.writer_dropped_acc, Ordering::SeqCst);
                }
            }
            rig.daemon.shutdown();
        }
        rigs.clear();
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl core::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Fleet")
            .field("local_addr", &self.local_addr)
            .field("rigs", &self.shared.rigs.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Builds one rig generation: sensor, shard writer, ring tap, per-rig
/// daemon.
fn build_rig(
    factory: &mut RigFactory,
    id: u16,
    generation: u32,
    shared: &FleetShared,
    config: &FleetConfig,
) -> io::Result<RigRuntime> {
    let RigParts {
        sensor,
        advance,
        crashed,
    } = factory(id, generation)?;

    let shard = config.data_dir.join(shard_name(id, generation));
    let writer = ArchiveWriter::spawn(&shard, sensor.configs(), config.archive)
        .map_err(|e| io::Error::other(format!("rig {id} shard {}: {e}", shard.display())))?;
    writer.attach(&sensor);

    // Tap the sensor into the coordinator's per-rig ring. The kill
    // switch detaches a dead generation's tap so a restarted rig's tap
    // is the ring's only producer (the ring is single-producer).
    let tap_alive = Arc::new(AtomicBool::new(true));
    {
        let ring = Arc::clone(&shared.rigs[usize::from(id)].ring);
        let alive = Arc::clone(&tap_alive);
        sensor.add_frame_sink(move |record| {
            if !alive.load(Ordering::SeqCst) || ring.is_closed() {
                return false;
            }
            ring.publish(&StreamFrame {
                time: record.time,
                raw: record.raw,
                present: record.present,
                marker: record.marker.is_some(),
            });
            true
        });
    }

    let daemon = StreamDaemon::start(sensor.clone(), "127.0.0.1:0", config.stream.clone())?;

    Ok(RigRuntime {
        id,
        generation,
        sensor,
        advance,
        crashed,
        daemon,
        writer: Some(writer),
        tap_alive,
        writer_dropped_acc: 0,
    })
}

/// Publishes the owner-side writer drop counters into the shared
/// per-rig atomics, where subscriber sessions can report them.
fn refresh_writer_counters(shared: &FleetShared, rigs: &[RigRuntime]) {
    for rig in rigs {
        let live = rig.writer.as_ref().map_or(0, ArchiveWriter::dropped);
        shared.rigs[usize::from(rig.id)]
            .writer_dropped
            .store(rig.writer_dropped_acc + live, Ordering::SeqCst);
    }
}

fn snapshot(shared: &FleetShared) -> Vec<RigStatus> {
    shared
        .rigs
        .iter()
        .enumerate()
        .map(|(id, rig)| RigStatus {
            id: id as u16,
            alive: rig.alive.load(Ordering::SeqCst),
            restarts: rig.restarts.load(Ordering::SeqCst),
            shards: rig.shards.load(Ordering::SeqCst),
            frames_published: rig.ring.head(),
            gap_events: rig.gap_events.load(Ordering::SeqCst),
            writer_dropped: rig.writer_dropped.load(Ordering::SeqCst),
        })
        .collect()
}

fn aggregate_stats(shared: &FleetShared) -> StreamStats {
    StreamStats {
        frames_published: shared.rigs.iter().map(|r| r.ring.head()).sum(),
        active_subscribers: shared.active_subscribers.load(Ordering::SeqCst),
        evicted: shared.evicted.load(Ordering::SeqCst),
        gap_events: shared.gap_events.load(Ordering::SeqCst),
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<FleetShared>) {
    let mut client_id = 0u64;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                client_id += 1;
                let shared_for_client = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("ps3-fleet-sub-{client_id}"))
                    .spawn(move || {
                        let _ = serve_client(&shared_for_client, stream);
                    });
                match spawned {
                    Ok(handle) => shared.clients.lock().push(handle),
                    // Degrade, don't die: drop this connection (the
                    // stream closes on drop) and keep accepting —
                    // thread exhaustion may be transient.
                    Err(e) => {
                        eprintln!("ps3-fleet: dropping client {client_id}: spawn failed: {e}");
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Why a subscriber session ended (mirrors the daemon's semantics).
enum SessionEnd {
    Disconnected,
    Evicted(EvictReason),
    Shutdown,
}

fn serve_client(shared: &Arc<FleetShared>, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.stream.handshake_timeout))?;
    let mut control = stream;
    let body = read_msg_body(&mut control)?;
    let ClientMsg::Subscribe {
        pair_mask,
        divisor,
        rig,
    } = ClientMsg::decode(&body)?
    else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "first message must be Subscribe",
        ));
    };

    // Resolve the selector to rig ids; legacy clients stream rig 0.
    let n = shared.rigs.len() as u16;
    let legacy = rig.is_none();
    let mut rig_ids: Vec<u16> = match rig {
        None => vec![0],
        Some(RigSelector::All) => (0..n).collect(),
        Some(RigSelector::One(id)) => vec![id],
        Some(RigSelector::Set(ids)) => ids,
    };
    rig_ids.sort_unstable();
    rig_ids.dedup();
    if rig_ids.iter().any(|&id| id >= n) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("rig selector out of range (fleet has {n} rigs)"),
        ));
    }

    let writer = Arc::new(Mutex::new(control.try_clone()?));
    control.set_read_timeout(None)?;
    writer
        .lock()
        .set_write_timeout(Some(shared.stream.write_timeout))?;
    let hello = if legacy {
        &shared.hello_legacy
    } else {
        &shared.hello_fleet
    };
    write_msg(&mut *writer.lock(), hello)?;

    shared.active_subscribers.fetch_add(1, Ordering::SeqCst);
    let client_gone = Arc::new(AtomicBool::new(false));
    let control_thread = {
        let ctl_shared = Arc::clone(shared);
        let writer = Arc::clone(&writer);
        let client_gone = Arc::clone(&client_gone);
        let spawned = std::thread::Builder::new()
            .name("ps3-fleet-ctl".into())
            .spawn(move || control_loop(&ctl_shared, control, &writer, &client_gone));
        match spawned {
            Ok(handle) => handle,
            Err(e) => {
                // Undo the registration and drop just this client;
                // the coordinator itself keeps serving.
                shared.active_subscribers.fetch_sub(1, Ordering::SeqCst);
                return Err(e);
            }
        }
    };

    let end = merge_loop(
        shared,
        &writer,
        pair_mask,
        divisor,
        &rig_ids,
        legacy,
        &client_gone,
    );
    match end {
        SessionEnd::Evicted(reason) => {
            shared.evicted.fetch_add(1, Ordering::SeqCst);
            let _ = write_msg(&mut *writer.lock(), &ServerMsg::Evicted { reason }.encode());
        }
        SessionEnd::Shutdown => {
            let _ = write_msg(
                &mut *writer.lock(),
                &ServerMsg::Evicted {
                    reason: EvictReason::Shutdown,
                }
                .encode(),
            );
        }
        SessionEnd::Disconnected => {}
    }
    let _ = writer.lock().shutdown(NetShutdown::Both);
    let _ = control_thread.join();
    shared.active_subscribers.fetch_sub(1, Ordering::SeqCst);
    Ok(())
}

fn control_loop(
    shared: &FleetShared,
    mut control: TcpStream,
    writer: &Mutex<TcpStream>,
    client_gone: &AtomicBool,
) {
    while let Ok(msg) = read_msg_body(&mut control).and_then(|b| ClientMsg::decode(&b)) {
        match msg {
            // Markers are a single-rig concept; against a fleet the
            // client should attach to the rig's own daemon to inject.
            ClientMsg::InjectMarker { .. } => {}
            ClientMsg::QueryStats => {
                let stats = aggregate_stats(shared);
                if write_msg(&mut *writer.lock(), &ServerMsg::Stats(stats).encode()).is_err() {
                    break;
                }
            }
            ClientMsg::QueryFleet => {
                let reply = ServerMsg::FleetStatus {
                    rigs: snapshot(shared),
                };
                if write_msg(&mut *writer.lock(), &reply.encode()).is_err() {
                    break;
                }
            }
            ClientMsg::Bye => break,
            ClientMsg::Subscribe { .. } => break, // protocol violation
        }
    }
    client_gone.store(true, Ordering::SeqCst);
}

/// Safety valve: emit past an empty-but-alive rig once this many
/// frames are queued across the session (a stalled rig must not let a
/// subscriber's buffers grow without bound).
const FORCE_EMIT_QUEUED: usize = 65_536;

/// K-way timestamp merge of the selected rigs' rings into one socket.
#[allow(clippy::too_many_lines)]
fn merge_loop(
    shared: &FleetShared,
    writer: &Mutex<TcpStream>,
    pair_mask: u8,
    divisor: u32,
    rig_ids: &[u16],
    legacy: bool,
    client_gone: &AtomicBool,
) -> SessionEnd {
    // Expand the pair mask to a slot mask (pair p = slots 2p, 2p+1).
    let mut slot_mask = 0u8;
    for pair in 0..SENSOR_SLOTS / 2 {
        if pair_mask & (1 << pair) != 0 {
            slot_mask |= 0b11 << (2 * pair);
        }
    }
    let k = rig_ids.len();
    let rigs: Vec<&RigShared> = rig_ids
        .iter()
        .map(|&id| &shared.rigs[usize::from(id)])
        .collect();
    // Subscribers start at each ring's live edge.
    let mut cursors: Vec<u64> = rigs.iter().map(|r| r.ring.head()).collect();
    let mut downsamplers: Vec<Downsampler> = (0..k).map(|_| Downsampler::new(divisor)).collect();
    let mut queues: Vec<VecDeque<StreamFrame>> = (0..k).map(|_| VecDeque::new()).collect();
    let mut ring_closed = vec![false; k];
    let mut my_gaps = 0u64;
    let mut batch: Vec<StreamFrame> = Vec::with_capacity(MAX_BATCH_FRAMES);
    let mut batch_rig = rig_ids[0];

    let flush = |batch: &mut Vec<StreamFrame>, rig: u16| -> io::Result<()> {
        let frames = std::mem::take(batch);
        let msg = if legacy {
            ServerMsg::Batch { frames }
        } else {
            ServerMsg::RigBatch { rig, frames }
        };
        write_msg(&mut *writer.lock(), &msg.encode())
    };

    macro_rules! try_write {
        ($expr:expr) => {
            match $expr {
                Ok(()) => {}
                Err(e) if is_stall(&e) => return SessionEnd::Evicted(EvictReason::StalledWrite),
                Err(_) => return SessionEnd::Disconnected,
            }
        };
    }

    loop {
        if client_gone.load(Ordering::SeqCst) {
            return SessionEnd::Disconnected;
        }

        // Phase 1: drain whatever each selected ring has ready.
        let mut progressed = false;
        for i in 0..k {
            if ring_closed[i] {
                continue;
            }
            loop {
                match rigs[i].ring.next(cursors[i], Duration::ZERO) {
                    ReadOutcome::Frame(frame) => {
                        cursors[i] += 1;
                        progressed = true;
                        let mut masked = frame;
                        masked.present &= slot_mask;
                        if let Some(out) = downsamplers[i].push(&masked) {
                            queues[i].push_back(out);
                        }
                        if queues[i].len() >= MAX_BATCH_FRAMES * 4 {
                            break;
                        }
                    }
                    ReadOutcome::Lapped { resume_at, dropped } => {
                        cursors[i] = resume_at;
                        downsamplers[i].reset();
                        my_gaps += 1;
                        shared.gap_events.fetch_add(1, Ordering::SeqCst);
                        rigs[i].gap_events.fetch_add(1, Ordering::SeqCst);
                        if !batch.is_empty() {
                            try_write!(flush(&mut batch, batch_rig));
                        }
                        let gap = if legacy {
                            ServerMsg::Gap { dropped }
                        } else {
                            ServerMsg::RigGap {
                                rig: rig_ids[i],
                                dropped,
                            }
                        };
                        try_write!(write_msg(&mut *writer.lock(), &gap.encode()));
                        if my_gaps > shared.stream.max_gap_events {
                            return SessionEnd::Evicted(EvictReason::TooManyGaps {
                                gaps: my_gaps,
                                limit: shared.stream.max_gap_events,
                            });
                        }
                    }
                    ReadOutcome::TimedOut => break,
                    ReadOutcome::Closed => {
                        ring_closed[i] = true;
                        break;
                    }
                }
            }
        }

        // Phase 2: emit merged frames while the global minimum is
        // known. An empty queue whose rig is alive and un-closed may
        // still produce the next-oldest frame, so it blocks the merge
        // (unless the safety valve trips). An idle pass (no ring had
        // anything) means every rig is drained to its head — rigs
        // advance their virtual clocks in lockstep, so what is queued
        // is complete for the current window and can be emitted
        // without waiting on the blocked rigs.
        let all_closed = ring_closed.iter().all(|&c| c);
        let force = !progressed;
        loop {
            let mut min: Option<(usize, u64)> = None;
            let mut blocked = false;
            let mut total_queued = 0usize;
            for i in 0..k {
                total_queued += queues[i].len();
                match queues[i].front() {
                    Some(frame) => {
                        let t = frame.time.as_nanos();
                        if min.is_none_or(|(_, mt)| t < mt) {
                            min = Some((i, t));
                        }
                    }
                    None => {
                        if !ring_closed[i] && rigs[i].alive.load(Ordering::SeqCst) {
                            blocked = true;
                        }
                    }
                }
            }
            let Some((i, _)) = min else { break };
            if blocked && !all_closed && !force && total_queued < FORCE_EMIT_QUEUED {
                break;
            }
            // `min` was computed from this queue's front, so the pop
            // must yield; an empty queue here would be a merge-logic
            // bug, degraded to a skipped round rather than a dead
            // subscriber thread.
            let Some(frame) = queues[i].pop_front() else {
                break;
            };
            let rig = rig_ids[i];
            if rig != batch_rig && !batch.is_empty() {
                try_write!(flush(&mut batch, batch_rig));
            }
            batch_rig = rig;
            batch.push(frame);
            if batch.len() >= MAX_BATCH_FRAMES {
                try_write!(flush(&mut batch, batch_rig));
            }
        }

        if !progressed {
            // Idle: push out whatever is pending so quiescent captures
            // deliver their tails promptly, then wait for new frames.
            if !batch.is_empty() {
                try_write!(flush(&mut batch, batch_rig));
            }
            if all_closed {
                return SessionEnd::Shutdown;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

/// A write that hit the socket's write timeout means the peer stopped
/// reading: the stall signal.
fn is_stall(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
