//! The fleet coordinator: N supervised rigs behind one TCP endpoint.
//!
//! Each rig is a full acquisition stack — sensor, per-rig
//! [`StreamDaemon`], and an [`ArchiveWriter`] persisting to its own
//! shard under the fleet data dir (`rig-{id:03}-g{gen}.ps3a`; the
//! generation counts restarts, so a crash never appends to a
//! possibly-torn file). The coordinator additionally taps every rig
//! into a per-rig broadcast ring and serves rig-routed subscriptions
//! off those rings through the same single-thread event loop the
//! stream daemon uses (see `serve.rs` for the merge personality):
//!
//! * a legacy subscription (no [`RigSelector`]) streams rig 0 with
//!   plain `Batch`/`Gap` messages — old clients work unchanged;
//! * `One`/`Set`/`All` subscriptions stream rig-tagged
//!   `RigBatch`/`RigGap` messages, k-way merged on sample timestamps
//!   across the selected rigs with per-rig gap propagation.
//!
//! Merge ordering: a frame is emitted once every other selected,
//! alive, non-closed rig has a frame queued (so the true minimum
//! timestamp is known); ties break toward the lowest rig id. A rig
//! restart starts a fresh device timeline, which appears as a
//! documented timestamp discontinuity in the merged stream — frames
//! are still delivered and accounted, never silently skipped.
//!
//! Supervision is poll-driven and deterministic: [`Fleet::advance`]
//! moves every healthy rig's virtual clock, [`Fleet::supervise`]
//! restarts crashed rigs (fresh sensor, fresh shard, tap resumed into
//! the *same* ring so per-rig publish counters continue).
//!
//! [`RigSelector`]: ps3_stream::RigSelector

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use ps3_archive::{ArchiveWriter, ArchiveWriterOptions};
use ps3_firmware::FRAME_INTERVAL;
use ps3_stream::{
    bring_up, spawn_loop, BroadcastRing, FleetHello, LoopStats, LoopWaker, RigStatus, ServerMsg,
    StreamDaemon, StreamDaemonConfig, StreamFrame, StreamStats,
};
use ps3_units::SimDuration;

use crate::rig::{RigFactory, RigParts};
use crate::serve::FleetHandler;
use crate::FLEET_PROTO_VERSION;

/// Tuning for [`Fleet::start`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Where per-rig archive shards live (created if absent).
    pub data_dir: PathBuf,
    /// Stream tuning, shared by the coordinator's subscriber sessions
    /// and every per-rig daemon.
    pub stream: StreamDaemonConfig,
    /// Archive writer tuning for the per-rig shards.
    pub archive: ArchiveWriterOptions,
}

impl FleetConfig {
    /// Defaults with shards under `data_dir`.
    #[must_use]
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            stream: StreamDaemonConfig::default(),
            archive: ArchiveWriterOptions::default(),
        }
    }
}

/// Shard filename for one rig generation.
#[must_use]
pub fn shard_name(rig: u16, generation: u32) -> String {
    format!("rig-{rig:03}-g{generation}.ps3a")
}

/// Per-rig state shared with subscriber sessions.
pub(crate) struct RigShared {
    pub(crate) ring: Arc<BroadcastRing>,
    pub(crate) alive: AtomicBool,
    pub(crate) restarts: AtomicU32,
    pub(crate) shards: AtomicU32,
    pub(crate) gap_events: AtomicU64,
    pub(crate) writer_dropped: AtomicU64,
}

pub(crate) struct FleetShared {
    pub(crate) stream: StreamDaemonConfig,
    pub(crate) rigs: Vec<RigShared>,
    /// Pre-encoded `Hello` without the fleet suffix (legacy clients).
    pub(crate) hello_legacy: Vec<u8>,
    /// Pre-encoded `Hello` with the fleet suffix (rig-routed clients).
    pub(crate) hello_fleet: Vec<u8>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) stats: Arc<LoopStats>,
    pub(crate) waker: Arc<LoopWaker>,
}

/// Owner-side state for one rig generation.
struct RigRuntime {
    id: u16,
    generation: u32,
    sensor: ps3_core::SharedPowerSensor,
    advance: Box<dyn FnMut(SimDuration) + Send>,
    crashed: Box<dyn Fn() -> bool + Send>,
    daemon: StreamDaemon,
    writer: Option<ArchiveWriter>,
    tap_alive: Arc<AtomicBool>,
    /// Drops accumulated from already-finished writers of this rig.
    writer_dropped_acc: u64,
}

/// A running fleet coordinator. Dropping it shuts everything down.
pub struct Fleet {
    shared: Arc<FleetShared>,
    rigs: Mutex<Vec<RigRuntime>>,
    factory: Mutex<RigFactory>,
    config: FleetConfig,
    local_addr: SocketAddr,
    event_loop: Option<JoinHandle<()>>,
}

impl Fleet {
    /// Spawns `rig_count` rigs (generation 0 each) and starts serving
    /// `addr` (port 0 for ephemeral).
    ///
    /// # Errors
    ///
    /// Rig construction, shard creation, or socket bind errors.
    pub fn start<A: ToSocketAddrs>(
        rig_count: u16,
        mut factory: RigFactory,
        addr: A,
        config: FleetConfig,
    ) -> io::Result<Self> {
        assert!(rig_count > 0, "a fleet needs at least one rig");
        std::fs::create_dir_all(&config.data_dir)?;

        // Bind before building rigs: the rig taps capture the loop's
        // waker so every publish nudges the event loop.
        let parts = bring_up(addr)?;
        let local_addr = parts.local_addr();

        let rig_shared: Vec<RigShared> = (0..rig_count)
            .map(|_| RigShared {
                ring: Arc::new(BroadcastRing::new(config.stream.ring_capacity)),
                alive: AtomicBool::new(true),
                restarts: AtomicU32::new(0),
                shards: AtomicU32::new(1),
                gap_events: AtomicU64::new(0),
                writer_dropped: AtomicU64::new(0),
            })
            .collect();

        // Built as a plain value first — the hello frames need rig
        // 0's sensor configuration, which only exists after the rigs
        // are built — and wrapped in an Arc exactly once at the end.
        let mut shared = FleetShared {
            stream: config.stream.clone(),
            rigs: rig_shared,
            hello_legacy: Vec::new(),
            hello_fleet: Vec::new(),
            shutdown: Arc::new(AtomicBool::new(false)),
            stats: Arc::new(LoopStats::default()),
            waker: parts.waker(),
        };

        let mut runtimes = Vec::with_capacity(usize::from(rig_count));
        for id in 0..rig_count {
            runtimes.push(build_rig(&mut factory, id, 0, &shared, &config)?);
        }

        // Both Hello forms carry rig 0's sensor configuration (the
        // factory gives every rig the same module layout).
        let configs = Box::new(runtimes[0].sensor.configs());
        let hello = |fleet: Option<FleetHello>| {
            ServerMsg::Hello {
                frame_interval_us: FRAME_INTERVAL.as_micros() as u32,
                configs: configs.clone(),
                fleet,
            }
            .encode()
        };
        shared.hello_legacy = hello(None);
        shared.hello_fleet = hello(Some(FleetHello {
            version: FLEET_PROTO_VERSION,
            rigs: rig_count,
        }));
        let shared = Arc::new(shared);

        let event_loop = spawn_loop(
            "ps3-fleet-loop",
            "ps3-fleet",
            parts,
            FleetHandler {
                shared: Arc::clone(&shared),
            },
            config.stream.clone(),
            Arc::clone(&shared.shutdown),
            Arc::clone(&shared.stats),
        )?;

        Ok(Self {
            shared,
            rigs: Mutex::new(runtimes),
            factory: Mutex::new(factory),
            config,
            local_addr,
            event_loop: Some(event_loop),
        })
    }

    /// The coordinator's listening address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of rigs in the fleet.
    #[must_use]
    pub fn rig_count(&self) -> u16 {
        self.shared.rigs.len() as u16
    }

    /// Where the per-rig archive shards live.
    #[must_use]
    pub fn data_dir(&self) -> &Path {
        &self.config.data_dir
    }

    /// The per-rig daemon's own listening address (for direct
    /// attachment bypassing the coordinator), if the rig is up.
    #[must_use]
    pub fn rig_daemon_addr(&self, id: u16) -> Option<SocketAddr> {
        self.rigs
            .lock()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.daemon.local_addr())
    }

    /// Advances every healthy rig's virtual clock by `d`. A rig that
    /// has crashed is skipped (and marked dead for subscribers) until
    /// [`Fleet::supervise`] restarts it.
    pub fn advance(&self, d: SimDuration) {
        let mut rigs = self.rigs.lock();
        for rig in rigs.iter_mut() {
            if (rig.crashed)() || !rig.sensor.is_alive() {
                self.shared.rigs[usize::from(rig.id)]
                    .alive
                    .store(false, Ordering::SeqCst);
                continue;
            }
            (rig.advance)(d);
        }
        refresh_writer_counters(&self.shared, &rigs);
        // Liveness flips matter to the merge (an alive-but-empty rig
        // blocks it); make sure the loop notices promptly.
        self.shared.waker.wake();
    }

    /// Restarts every crashed rig: its writer is finished (sealing the
    /// old shard), a fresh sensor generation is built, its tap resumes
    /// into the same per-rig ring, and archiving continues into a new
    /// shard. Returns how many rigs were restarted.
    ///
    /// # Errors
    ///
    /// Factory or shard-creation failure for a replacement rig.
    pub fn supervise(&self) -> io::Result<u32> {
        let mut rigs = self.rigs.lock();
        let mut factory = self.factory.lock();
        let mut restarted = 0u32;
        for rig in rigs.iter_mut() {
            if !(rig.crashed)() && rig.sensor.is_alive() {
                continue;
            }
            let rs = &self.shared.rigs[usize::from(rig.id)];
            rig.tap_alive.store(false, Ordering::SeqCst);
            if let Some(writer) = rig.writer.take() {
                // A failed finish means the shard tail is torn; the
                // sealed prefix remains readable via recovery.
                if let Ok(stats) = writer.finish() {
                    rig.writer_dropped_acc += stats.dropped;
                }
            }
            rig.daemon.shutdown();

            let generation = rig.generation + 1;
            let fresh = build_rig(&mut factory, rig.id, generation, &self.shared, &self.config)?;
            let writer_dropped_acc = rig.writer_dropped_acc;
            *rig = fresh;
            rig.writer_dropped_acc = writer_dropped_acc;

            rs.alive.store(true, Ordering::SeqCst);
            rs.restarts.fetch_add(1, Ordering::SeqCst);
            rs.shards.fetch_add(1, Ordering::SeqCst);
            restarted += 1;
        }
        refresh_writer_counters(&self.shared, &rigs);
        if restarted > 0 {
            self.shared.waker.wake();
        }
        Ok(restarted)
    }

    /// Per-rig status roster (what `fleet status` and `QueryFleet`
    /// report).
    #[must_use]
    pub fn status(&self) -> Vec<RigStatus> {
        refresh_writer_counters(&self.shared, &self.rigs.lock());
        snapshot(&self.shared)
    }

    /// Aggregate counters across the coordinator endpoint.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        aggregate_stats(&self.shared)
    }

    /// Stops serving, disconnects subscribers, seals every shard, and
    /// joins all threads. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for rig in &self.shared.rigs {
            rig.ring.close();
        }
        self.shared.waker.wake();
        if let Some(handle) = self.event_loop.take() {
            let _ = handle.join();
        }
        let mut rigs = self.rigs.lock();
        for rig in rigs.iter_mut() {
            rig.tap_alive.store(false, Ordering::SeqCst);
            if let Some(writer) = rig.writer.take() {
                if let Ok(stats) = writer.finish() {
                    rig.writer_dropped_acc += stats.dropped;
                    self.shared.rigs[usize::from(rig.id)]
                        .writer_dropped
                        .store(rig.writer_dropped_acc, Ordering::SeqCst);
                }
            }
            rig.daemon.shutdown();
        }
        rigs.clear();
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl core::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Fleet")
            .field("local_addr", &self.local_addr)
            .field("rigs", &self.shared.rigs.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Builds one rig generation: sensor, shard writer, ring tap, per-rig
/// daemon.
fn build_rig(
    factory: &mut RigFactory,
    id: u16,
    generation: u32,
    shared: &FleetShared,
    config: &FleetConfig,
) -> io::Result<RigRuntime> {
    let RigParts {
        sensor,
        advance,
        crashed,
    } = factory(id, generation)?;

    let shard = config.data_dir.join(shard_name(id, generation));
    let writer = ArchiveWriter::spawn(&shard, sensor.configs(), config.archive)
        .map_err(|e| io::Error::other(format!("rig {id} shard {}: {e}", shard.display())))?;
    writer.attach(&sensor);

    // Tap the sensor into the coordinator's per-rig ring. The kill
    // switch detaches a dead generation's tap so a restarted rig's tap
    // is the ring's only producer (the ring is single-producer).
    let tap_alive = Arc::new(AtomicBool::new(true));
    {
        let ring = Arc::clone(&shared.rigs[usize::from(id)].ring);
        let alive = Arc::clone(&tap_alive);
        let waker = Arc::clone(&shared.waker);
        sensor.add_frame_sink(move |record| {
            if !alive.load(Ordering::SeqCst) || ring.is_closed() {
                return false;
            }
            ring.publish(&StreamFrame {
                time: record.time,
                raw: record.raw,
                present: record.present,
                marker: record.marker.is_some(),
            });
            waker.wake();
            true
        });
    }

    let daemon = StreamDaemon::start(sensor.clone(), "127.0.0.1:0", config.stream.clone())?;

    Ok(RigRuntime {
        id,
        generation,
        sensor,
        advance,
        crashed,
        daemon,
        writer: Some(writer),
        tap_alive,
        writer_dropped_acc: 0,
    })
}

/// Publishes the owner-side writer drop counters into the shared
/// per-rig atomics, where subscriber sessions can report them.
fn refresh_writer_counters(shared: &FleetShared, rigs: &[RigRuntime]) {
    for rig in rigs {
        let live = rig.writer.as_ref().map_or(0, ArchiveWriter::dropped);
        shared.rigs[usize::from(rig.id)]
            .writer_dropped
            .store(rig.writer_dropped_acc + live, Ordering::SeqCst);
    }
}

pub(crate) fn snapshot(shared: &FleetShared) -> Vec<RigStatus> {
    shared
        .rigs
        .iter()
        .enumerate()
        .map(|(id, rig)| RigStatus {
            id: id as u16,
            alive: rig.alive.load(Ordering::SeqCst),
            restarts: rig.restarts.load(Ordering::SeqCst),
            shards: rig.shards.load(Ordering::SeqCst),
            frames_published: rig.ring.head(),
            gap_events: rig.gap_events.load(Ordering::SeqCst),
            writer_dropped: rig.writer_dropped.load(Ordering::SeqCst),
        })
        .collect()
}

pub(crate) fn aggregate_stats(shared: &FleetShared) -> StreamStats {
    StreamStats {
        frames_published: shared.rigs.iter().map(|r| r.ring.head()).sum(),
        active_subscribers: shared.stats.active_subscribers.load(Ordering::SeqCst),
        evicted: shared.stats.evicted.load(Ordering::SeqCst),
        gap_events: shared.stats.gap_events.load(Ordering::SeqCst),
        accepted: shared.stats.accepted.load(Ordering::SeqCst),
        active_peak: shared.stats.active_peak.load(Ordering::SeqCst),
        bytes_sent: shared.stats.bytes_sent.load(Ordering::SeqCst),
        evicted_gaps: shared.stats.evicted_gaps.load(Ordering::SeqCst),
        evicted_stalled: shared.stats.evicted_stalled.load(Ordering::SeqCst),
    }
}
