//! The coordinator's subscriber-serving personality for the shared
//! stream event loop.
//!
//! The plain daemon's [`Handler`] drains one ring with one cursor;
//! this one k-way merges the selected rigs' rings on sample
//! timestamps — the same merge the dedicated per-subscriber threads
//! used to run, moved into per-session state pumped by the single
//! event-loop thread:
//!
//! * a legacy subscription (no [`RigSelector`]) streams rig 0 with
//!   plain `Batch`/`Gap` messages;
//! * `One`/`Set`/`All` subscriptions stream rig-tagged
//!   `RigBatch`/`RigGap` messages with per-rig gap propagation.
//!
//! Merge ordering: a frame is emitted once every other selected,
//! alive, non-closed rig has a frame queued (so the true minimum
//! timestamp is known); ties break toward the lowest rig id. A pump
//! pass in which no ring yielded anything means every rig is drained
//! to its head — rigs advance their virtual clocks in lockstep, so
//! what is queued is complete for the current window and is emitted
//! without waiting on the blocked rigs.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use ps3_stream::proto::MAX_BATCH_FRAMES;
use ps3_stream::{
    ClientMsg, Control, Downsampler, EvictReason, Handler, OutQueue, Pump, ReadOutcome,
    RigSelector, ServerMsg, StreamFrame,
};

use crate::coordinator::{aggregate_stats, snapshot, FleetShared};

/// Safety valve: emit past an empty-but-alive rig once this many
/// frames are queued across the session (a stalled rig must not let a
/// subscriber's buffers grow without bound).
const FORCE_EMIT_QUEUED: usize = 65_536;

/// Per-rig ready-queue cap per pump pass; frames beyond it stay in
/// the ring (whose lap accounting then applies), bounding session
/// memory exactly as the threaded merge did.
const QUEUE_CAP: usize = MAX_BATCH_FRAMES * 4;

/// One subscriber's merge state: cursors, per-rig downsamplers and
/// ready queues, and the batch being assembled.
pub(crate) struct MergeSession {
    slot_mask: u8,
    rig_ids: Vec<u16>,
    legacy: bool,
    cursors: Vec<u64>,
    downsamplers: Vec<Downsampler>,
    queues: Vec<VecDeque<StreamFrame>>,
    ring_closed: Vec<bool>,
    my_gaps: u64,
    batch: Vec<StreamFrame>,
    batch_rig: u16,
}

impl MergeSession {
    fn flush_batch(&mut self, out: &mut OutQueue) {
        if self.batch.is_empty() {
            return;
        }
        let frames = std::mem::take(&mut self.batch);
        let msg = if self.legacy {
            ServerMsg::Batch { frames }
        } else {
            ServerMsg::RigBatch {
                rig: self.batch_rig,
                frames,
            }
        };
        out.push(&msg);
    }
}

/// The fleet coordinator's event-loop handler.
pub(crate) struct FleetHandler {
    pub(crate) shared: Arc<FleetShared>,
}

impl Handler for FleetHandler {
    type Session = MergeSession;

    fn begin(
        &self,
        pair_mask: u8,
        divisor: u32,
        rig: Option<RigSelector>,
    ) -> io::Result<(Vec<u8>, MergeSession)> {
        // Resolve the selector to rig ids; legacy clients stream rig 0.
        let n = self.shared.rigs.len() as u16;
        let legacy = rig.is_none();
        let mut rig_ids: Vec<u16> = match rig {
            None => vec![0],
            Some(RigSelector::All) => (0..n).collect(),
            Some(RigSelector::One(id)) => vec![id],
            Some(RigSelector::Set(ids)) => ids,
        };
        rig_ids.sort_unstable();
        rig_ids.dedup();
        if rig_ids.iter().any(|&id| id >= n) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("rig selector out of range (fleet has {n} rigs)"),
            ));
        }

        // Expand the pair mask to a slot mask (pair p = slots 2p, 2p+1).
        let mut slot_mask = 0u8;
        for pair in 0..ps3_firmware::SENSOR_SLOTS / 2 {
            if pair_mask & (1 << pair) != 0 {
                slot_mask |= 0b11 << (2 * pair);
            }
        }

        let k = rig_ids.len();
        let hello = if legacy {
            self.shared.hello_legacy.clone()
        } else {
            self.shared.hello_fleet.clone()
        };
        // Subscribers start at each ring's live edge.
        let cursors = rig_ids
            .iter()
            .map(|&id| self.shared.rigs[usize::from(id)].ring.head())
            .collect();
        let batch_rig = rig_ids[0];
        Ok((
            hello,
            MergeSession {
                slot_mask,
                rig_ids,
                legacy,
                cursors,
                downsamplers: (0..k).map(|_| Downsampler::new(divisor)).collect(),
                queues: (0..k).map(|_| VecDeque::new()).collect(),
                ring_closed: vec![false; k],
                my_gaps: 0,
                batch: Vec::with_capacity(MAX_BATCH_FRAMES),
                batch_rig,
            },
        ))
    }

    #[allow(clippy::too_many_lines)]
    fn pump(&self, s: &mut MergeSession, out: &mut OutQueue) -> Pump {
        let shared = &self.shared;
        let k = s.rig_ids.len();

        // Phase 1: drain whatever each selected ring has ready.
        let mut progressed = false;
        for i in 0..k {
            if s.ring_closed[i] {
                continue;
            }
            let rig = &shared.rigs[usize::from(s.rig_ids[i])];
            loop {
                match rig.ring.next(s.cursors[i], Duration::ZERO) {
                    ReadOutcome::Frame(frame) => {
                        s.cursors[i] += 1;
                        progressed = true;
                        let mut masked = frame;
                        masked.present &= s.slot_mask;
                        if let Some(frame) = s.downsamplers[i].push(&masked) {
                            s.queues[i].push_back(frame);
                        }
                        if s.queues[i].len() >= QUEUE_CAP {
                            break;
                        }
                    }
                    ReadOutcome::Lapped { resume_at, dropped } => {
                        s.cursors[i] = resume_at;
                        s.downsamplers[i].reset();
                        s.my_gaps += 1;
                        shared.stats.gap_events.fetch_add(1, Ordering::SeqCst);
                        rig.gap_events.fetch_add(1, Ordering::SeqCst);
                        s.flush_batch(out);
                        let gap = if s.legacy {
                            ServerMsg::Gap { dropped }
                        } else {
                            ServerMsg::RigGap {
                                rig: s.rig_ids[i],
                                dropped,
                            }
                        };
                        out.push(&gap);
                        if s.my_gaps > shared.stream.max_gap_events {
                            return Pump::Evict(EvictReason::TooManyGaps {
                                gaps: s.my_gaps,
                                limit: shared.stream.max_gap_events,
                            });
                        }
                    }
                    ReadOutcome::TimedOut => break,
                    ReadOutcome::Closed => {
                        s.ring_closed[i] = true;
                        break;
                    }
                }
            }
        }

        // Phase 2: emit merged frames while the global minimum is
        // known. An empty queue whose rig is alive and un-closed may
        // still produce the next-oldest frame, so it blocks the merge
        // (unless the safety valve trips or this pass was idle).
        let all_closed = s.ring_closed.iter().all(|&c| c);
        let force = !progressed;
        while !out.is_full() {
            let mut min: Option<(usize, u64)> = None;
            let mut blocked = false;
            let mut total_queued = 0usize;
            for i in 0..k {
                total_queued += s.queues[i].len();
                match s.queues[i].front() {
                    Some(frame) => {
                        let t = frame.time.as_nanos();
                        if min.is_none_or(|(_, mt)| t < mt) {
                            min = Some((i, t));
                        }
                    }
                    None => {
                        if !s.ring_closed[i]
                            && shared.rigs[usize::from(s.rig_ids[i])]
                                .alive
                                .load(Ordering::SeqCst)
                        {
                            blocked = true;
                        }
                    }
                }
            }
            let Some((i, _)) = min else { break };
            if blocked && !all_closed && !force && total_queued < FORCE_EMIT_QUEUED {
                break;
            }
            // `min` was computed from this queue's front, so the pop
            // must yield; an empty queue here would be a merge-logic
            // bug, degraded to a skipped round rather than a wedged
            // subscriber.
            let Some(frame) = s.queues[i].pop_front() else {
                break;
            };
            let rig = s.rig_ids[i];
            if rig != s.batch_rig {
                s.flush_batch(out);
            }
            s.batch_rig = rig;
            s.batch.push(frame);
            if s.batch.len() >= MAX_BATCH_FRAMES {
                s.flush_batch(out);
            }
        }

        if !progressed {
            // Idle pass: every selected ring is drained to its head,
            // so deliver the pending tail promptly (the next event
            // can only make the batch longer, never reorder it).
            s.flush_batch(out);
            if all_closed && s.queues.iter().all(VecDeque::is_empty) {
                return Pump::Closed;
            }
        }
        Pump::Idle
    }

    fn control(&self, _s: &mut MergeSession, msg: ClientMsg, out: &mut OutQueue) -> Control {
        match msg {
            // Markers are a single-rig concept; against a fleet the
            // client should attach to the rig's own daemon to inject.
            ClientMsg::InjectMarker { .. } => Control::Continue,
            ClientMsg::QueryStats => {
                out.push(&ServerMsg::Stats(aggregate_stats(&self.shared)));
                Control::Continue
            }
            ClientMsg::QueryFleet => {
                out.push(&ServerMsg::FleetStatus {
                    rigs: snapshot(&self.shared),
                });
                Control::Continue
            }
            ClientMsg::Bye => Control::Disconnect,
            ClientMsg::Subscribe { .. } => Control::Disconnect, // protocol violation
        }
    }
}
