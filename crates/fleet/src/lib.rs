//! Fleet plane: many PowerSensor3 rigs behind one coordinator.
//!
//! PowerSensor3 measures one machine; measuring a cluster means many
//! rigs, and nobody wants to hand-manage N daemons and N archives.
//! This crate runs the whole fleet in one process:
//!
//! * [`Fleet`] spawns and supervises N rigs — each a complete
//!   acquisition stack with its own [`StreamDaemon`] and an archive
//!   shard under the fleet data dir — restarts crashed rigs into
//!   fresh shards, and serves a single TCP endpoint speaking the
//!   rig-routed extension of the subscribe protocol (legacy single-rig
//!   clients keep working and see rig 0).
//! * [`FleetQuery`] answers cross-rig aggregates off the shards:
//!   fleet-wide energy and power stats, top-k hottest rigs, rig-join
//!   aligned downsampling — per-shard scans fan out over the
//!   `compat/rayon` pool with a deterministic, documented fold order.
//! * [`RigFactory`] abstracts rig construction so the simulation
//!   harness can inject crashing rigs without this crate knowing.
//!
//! The `ps3-fleet` binary wraps this into `serve` / `status` /
//! `query` subcommands; see the README quickstart.
//!
//! [`StreamDaemon`]: ps3_stream::StreamDaemon

#![forbid(unsafe_code)]

mod coordinator;
mod query;
mod rig;
mod serve;

pub use coordinator::{shard_name, Fleet, FleetConfig};
pub use query::{parse_shard_name, FleetQuery, JoinedRow, JoinedTrace, RigPower, ShardEnergy};
pub use rig::{testbed_rig_factory, RigFactory, RigParts};

/// Version of the rig-routing protocol extension this crate speaks
/// (re-exported from the wire layer).
pub use ps3_stream::proto::FLEET_PROTO_VERSION;
