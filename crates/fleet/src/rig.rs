//! Rig construction: how the coordinator obtains and supervises one
//! acquisition stack.
//!
//! The coordinator is agnostic about what a "rig" physically is — it
//! only needs a connected sensor, a way to advance its (virtual)
//! clock, and a way to ask whether it has crashed. A [`RigFactory`]
//! packages that; [`testbed_rig_factory`] builds rigs from the virtual
//! testbed (each with a distinct load program so cross-rig queries
//! have structure), and the simulation harness supplies its own
//! fault-injecting factory without this crate depending on it.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ps3_core::SharedPowerSensor;
use ps3_duts::LoadProgram;
use ps3_sensors::ModuleKind;
use ps3_testbed::setups;
use ps3_units::{Amps, SimDuration};

/// One freshly built acquisition stack, as handed out by a
/// [`RigFactory`].
pub struct RigParts {
    /// The connected sensor (its reader thread is already running).
    pub sensor: SharedPowerSensor,
    /// Advances the rig's virtual clock by `d`. Called only from the
    /// fleet owner's thread, never concurrently.
    pub advance: Box<dyn FnMut(SimDuration) + Send>,
    /// `true` once the rig has crashed and needs a restart.
    pub crashed: Box<dyn Fn() -> bool + Send>,
}

/// Builds generation `generation` of rig `id`. Called at fleet start
/// (generation 0) and again on every restart after a crash.
///
/// # Errors
///
/// Returns whatever prevents the rig from coming up; the coordinator
/// surfaces it from `start`/`supervise`.
pub type RigFactory = Box<dyn FnMut(u16, u32) -> io::Result<RigParts> + Send>;

/// The default factory: virtual accuracy-bench rigs on the 10 A / 12 V
/// module, each drawing a different constant current (1 A + 0.75 A per
/// rig id, cycling over 8 levels) so fleet-wide top-k queries rank a
/// non-trivial power distribution. Seeds vary per rig and generation,
/// so sensor imperfections differ across the fleet.
#[must_use]
pub fn testbed_rig_factory(seed: u64) -> RigFactory {
    Box::new(move |id: u16, generation: u32| {
        let amps = 1.0 + f64::from(id % 8) * 0.75;
        let mut tb = setups::accuracy_bench(
            ModuleKind::Slot10A12V,
            LoadProgram::Constant(Amps::new(amps)),
            seed ^ (u64::from(id) << 16) ^ u64::from(generation),
        );
        let sensor = SharedPowerSensor::new(
            tb.connect()
                .map_err(|e| io::Error::other(format!("rig {id} connect: {e}")))?,
        );
        let advance_sensor = sensor.clone();
        // The testbed never crashes in normal operation; an advance
        // failure means a bug. Flag the rig as crashed instead of
        // panicking the fleet owner's thread — the supervisor then
        // restarts this rig (a fresh generation) and the rest of the
        // fleet keeps streaming.
        let failed = Arc::new(AtomicBool::new(false));
        let failed_flag = Arc::clone(&failed);
        Ok(RigParts {
            sensor,
            advance: Box::new(move |d| {
                if failed_flag.load(Ordering::SeqCst) {
                    return;
                }
                if let Err(e) = tb.advance_and_sync(&advance_sensor, d) {
                    ps3_stream::log::emit(
                        "ps3-fleet",
                        "rig-advance-failed",
                        &[
                            ("rig", &id.to_string()),
                            ("gen", &generation.to_string()),
                            ("error", &e.to_string()),
                        ],
                    );
                    failed_flag.store(true, Ordering::SeqCst);
                }
            }),
            crashed: Box::new(move || failed.load(Ordering::SeqCst)),
        })
    })
}
