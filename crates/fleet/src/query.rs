//! Cross-rig aggregate queries over a fleet's archive shards.
//!
//! A fleet data dir holds one `.ps3a` shard per rig *generation*
//! (`rig-{id:03}-g{gen}.ps3a`); a rig that crashed and restarted owns
//! several. [`FleetQuery`] opens every shard (recovering torn tails
//! the same way `ps3-arc` does) and answers fleet-wide questions by
//! fanning the per-shard scans over the `compat/rayon` pool and then
//! folding the per-shard results **sequentially in shard order**
//! (sorted by rig id, then generation).
//!
//! That fold order is a contract, not an implementation detail:
//! floating-point accumulation is order-dependent, and the simulation
//! harness checks that e.g. [`FleetQuery::total_energy`] is
//! *bit-exactly* the fold of the per-shard [`Tsdb::energy`] values in
//! shard order. Parallelism only changes who decodes which shard,
//! never the arithmetic.
//!
//! Each shard is served through the [`ps3_tsdb`] aggregation pyramid,
//! so cross-rig aggregates over long captures read tier nodes instead
//! of decoding payload bytes; only range edges decode.

use std::path::{Path, PathBuf};

use ps3_analysis::Trace;
use ps3_archive::{ArchiveError, RangeStats};
use ps3_tsdb::Tsdb;
use ps3_units::{Joules, SimTime, Watts};

/// One opened shard.
struct Shard {
    rig: u16,
    generation: u32,
    tsdb: Tsdb,
}

/// Per-shard energy contribution (what [`FleetQuery::total_energy`]
/// folds, exposed for ground-truth checks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardEnergy {
    /// Owning rig.
    pub rig: u16,
    /// Rig generation that wrote the shard.
    pub generation: u32,
    /// Energy in the queried range, from this shard alone.
    pub energy: Joules,
}

/// One rig's ranking entry in [`FleetQuery::top_k`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigPower {
    /// Rig id.
    pub rig: u16,
    /// Mean total power over the rig's samples in range (0 if none).
    pub mean: Watts,
    /// Samples contributing to the mean.
    pub samples: u64,
}

/// Rig-join aligned downsampling: per-rig mean-power buckets joined by
/// bucket index, so rigs can be compared column-wise.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinedTrace {
    /// Rig ids, one per power column (ascending).
    pub rigs: Vec<u16>,
    /// Joined rows, one per bucket index.
    pub rows: Vec<JoinedRow>,
}

/// One row of a [`JoinedTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct JoinedRow {
    /// Bucket timestamp: the earliest bucket-end time among the rigs
    /// that have this bucket.
    pub time: SimTime,
    /// Mean power per rig for this bucket, `None` once a rig's trace
    /// ran out.
    pub power: Vec<Option<Watts>>,
}

/// Read-side handle over every shard under a fleet data dir.
pub struct FleetQuery {
    data_dir: PathBuf,
    shards: Vec<Shard>,
    /// Distinct rig ids, ascending.
    rigs: Vec<u16>,
}

/// Parses `rig-{id:03}-g{gen}.ps3a` into `(id, generation)`.
#[must_use]
pub fn parse_shard_name(name: &str) -> Option<(u16, u32)> {
    let rest = name.strip_prefix("rig-")?.strip_suffix(".ps3a")?;
    let (rig, generation) = rest.split_once("-g")?;
    Some((rig.parse().ok()?, generation.parse().ok()?))
}

impl FleetQuery {
    /// Opens every `rig-*.ps3a` shard under `data_dir`.
    ///
    /// # Errors
    ///
    /// Directory-scan failures or shard corruption beyond recovery.
    /// A dir with no shards opens fine (queries report zero/empty).
    pub fn open(data_dir: impl AsRef<Path>) -> Result<Self, ArchiveError> {
        let data_dir = data_dir.as_ref().to_path_buf();
        let mut found: Vec<(u16, u32, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&data_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some((rig, generation)) = parse_shard_name(name) {
                found.push((rig, generation, entry.path()));
            }
        }
        // Shard order is the fold order for every aggregate below.
        found.sort_by_key(|&(rig, generation, _)| (rig, generation));

        let opened = rayon::global().par_map(found, |(rig, generation, path)| {
            Tsdb::open(&path).map(|tsdb| Shard {
                rig,
                generation,
                tsdb,
            })
        });
        let shards = opened.into_iter().collect::<Result<Vec<_>, _>>()?;
        let mut rigs: Vec<u16> = shards.iter().map(|s| s.rig).collect();
        rigs.dedup();
        Ok(Self {
            data_dir,
            shards,
            rigs,
        })
    }

    /// The scanned data dir.
    #[must_use]
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// Distinct rig ids with at least one shard, ascending.
    #[must_use]
    pub fn rigs(&self) -> &[u16] {
        &self.rigs
    }

    /// Number of shards opened.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard energy over `[start, end)`, in shard order.
    ///
    /// # Errors
    ///
    /// Decode errors from any shard.
    pub fn shard_energies(
        &self,
        start: SimTime,
        end: SimTime,
    ) -> Result<Vec<ShardEnergy>, ArchiveError> {
        let per_shard = rayon::global().par_map(self.shards.iter().collect(), |shard: &Shard| {
            shard.tsdb.energy(start, end).map(|energy| ShardEnergy {
                rig: shard.rig,
                generation: shard.generation,
                energy,
            })
        });
        per_shard.into_iter().collect()
    }

    /// Fleet-wide energy over `[start, end)`: the per-shard energies
    /// folded in shard order (bit-exact against doing exactly that by
    /// hand).
    ///
    /// # Errors
    ///
    /// Decode errors from any shard.
    pub fn total_energy(&self, start: SimTime, end: SimTime) -> Result<Joules, ArchiveError> {
        let mut total = 0.0f64;
        for shard in self.shard_energies(start, end)? {
            total += shard.energy.value();
        }
        Ok(Joules::new(total))
    }

    /// Fleet-wide power statistics over `[start, end)` (summary-block
    /// accelerated; counts and sums fold in shard order).
    ///
    /// # Errors
    ///
    /// Decode errors from any shard.
    pub fn fleet_stats(&self, start: SimTime, end: SimTime) -> Result<RangeStats, ArchiveError> {
        let per_shard = rayon::global().par_map(self.shards.iter().collect(), |shard: &Shard| {
            shard.tsdb.stats(start, end)
        });
        let mut out = RangeStats {
            count: 0,
            sum_w: 0.0,
            min_w: f64::INFINITY,
            max_w: f64::NEG_INFINITY,
        };
        for stats in per_shard {
            let stats = stats?;
            if stats.count == 0 {
                continue;
            }
            out.count += stats.count;
            out.sum_w += stats.sum_w;
            out.min_w = out.min_w.min(stats.min_w);
            out.max_w = out.max_w.max(stats.max_w);
        }
        if out.count == 0 {
            out = RangeStats {
                count: 0,
                sum_w: 0.0,
                min_w: 0.0,
                max_w: 0.0,
            };
        }
        Ok(out)
    }

    /// The `k` hottest rigs by mean power over `[start, end)`,
    /// descending; ties break toward the lower rig id. Rigs with no
    /// samples in range rank last (zero mean).
    ///
    /// # Errors
    ///
    /// Decode errors from any shard.
    pub fn top_k(
        &self,
        k: usize,
        start: SimTime,
        end: SimTime,
    ) -> Result<Vec<RigPower>, ArchiveError> {
        let per_shard = rayon::global().par_map(self.shards.iter().collect(), |shard: &Shard| {
            shard.tsdb.stats(start, end).map(|s| (shard.rig, s))
        });
        let mut per_rig: Vec<RigPower> = self
            .rigs
            .iter()
            .map(|&rig| RigPower {
                rig,
                mean: Watts::zero(),
                samples: 0,
            })
            .collect();
        let mut sums = vec![0.0f64; per_rig.len()];
        for stats in per_shard {
            let (rig, stats) = stats?;
            let slot = self
                .rigs
                .binary_search(&rig)
                .expect("shard rig is in the rig roster");
            per_rig[slot].samples += stats.count;
            sums[slot] += stats.sum_w;
        }
        for (entry, sum) in per_rig.iter_mut().zip(&sums) {
            if entry.samples > 0 {
                entry.mean = Watts::new(sum / entry.samples as f64);
            }
        }
        per_rig.sort_by(|a, b| {
            b.mean
                .value()
                .partial_cmp(&a.mean.value())
                .unwrap_or(core::cmp::Ordering::Equal)
                .then(a.rig.cmp(&b.rig))
        });
        per_rig.truncate(k);
        Ok(per_rig)
    }

    /// Downsamples one rig over `[start, end)` with `divisor` samples
    /// per bucket, concatenating the rig's shards in generation order
    /// (bucket accumulation restarts at each generation boundary,
    /// mirroring the capture discontinuity).
    ///
    /// # Errors
    ///
    /// Decode errors from the rig's shards.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn downsample_rig(
        &self,
        rig: u16,
        start: SimTime,
        end: SimTime,
        divisor: u64,
    ) -> Result<Trace, ArchiveError> {
        assert!(divisor > 0, "divisor must be at least 1");
        let mut out = Trace::new();
        // One scratch trace serves every shard: `downsample_into`
        // clears it but keeps its allocations.
        let mut scratch = Trace::new();
        for shard in self.shards.iter().filter(|s| s.rig == rig) {
            shard
                .tsdb
                .downsample_into(start, end, divisor, &mut scratch)?;
            for sample in scratch.samples() {
                out.push(sample.time, sample.power);
            }
        }
        Ok(out)
    }

    /// Rig-join aligned downsampling: every rig downsampled with the
    /// same `divisor` over the same `[start, end)`, joined row-wise by
    /// bucket index.
    ///
    /// # Errors
    ///
    /// Decode errors from any shard.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn joined_downsample(
        &self,
        start: SimTime,
        end: SimTime,
        divisor: u64,
    ) -> Result<JoinedTrace, ArchiveError> {
        assert!(divisor > 0, "divisor must be at least 1");
        let traces = rayon::global().par_map(self.rigs.clone(), |rig| {
            self.downsample_rig(rig, start, end, divisor)
        });
        let traces = traces.into_iter().collect::<Result<Vec<_>, _>>()?;
        let depth = traces.iter().map(|t| t.samples().len()).max().unwrap_or(0);
        let mut rows = Vec::with_capacity(depth);
        for i in 0..depth {
            let mut time: Option<SimTime> = None;
            let mut power = Vec::with_capacity(traces.len());
            for trace in &traces {
                match trace.samples().get(i) {
                    Some(sample) => {
                        power.push(Some(sample.power));
                        if time.is_none_or(|t| sample.time < t) {
                            time = Some(sample.time);
                        }
                    }
                    None => power.push(None),
                }
            }
            rows.push(JoinedRow {
                time: time.expect("a row exists only if some rig has the bucket"),
                power,
            });
        }
        Ok(JoinedTrace {
            rigs: self.rigs.clone(),
            rows,
        })
    }
}

impl core::fmt::Debug for FleetQuery {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FleetQuery")
            .field("data_dir", &self.data_dir)
            .field("shards", &self.shards.len())
            .field("rigs", &self.rigs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_names_roundtrip() {
        assert_eq!(parse_shard_name("rig-007-g0.ps3a"), Some((7, 0)));
        assert_eq!(parse_shard_name("rig-031-g12.ps3a"), Some((31, 12)));
        assert_eq!(parse_shard_name(&crate::shard_name(31, 12)), Some((31, 12)));
        assert_eq!(parse_shard_name("rig-007.ps3a"), None);
        assert_eq!(parse_shard_name("trace.ps3a"), None);
        assert_eq!(parse_shard_name("rig-1-g1.ps3x"), None);
    }
}
