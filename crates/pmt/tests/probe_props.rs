//! Property tests of the probe-family contracts: for arbitrary
//! utilisation schedules and poll cadences, every access path must
//! (1) accumulate energy monotonically, (2) round-trip its wrapping
//! counter, (3) stay within its modeled quantisation/staleness bound,
//! and (4) replay bit-identically from `(probe, schedule)`.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use ps3_duts::{CpuModel, CpuPhase, CpuSpec, CpuWorkload};
use ps3_pmt::{unwrap_delta, EnergySession, ProbeKind, SharedCpu};
use ps3_units::{SimDuration, SimTime};

/// Phase labels cycle through a fixed alphabet (labels don't affect
/// energy; they only mark transitions).
const LABELS: [char; 6] = ['a', 'b', 'c', 'd', 'e', 'f'];

fn workload(phases: &[(f64, u64)]) -> CpuWorkload {
    CpuWorkload::new(
        phases
            .iter()
            .enumerate()
            .map(|(i, &(util, ms))| CpuPhase {
                label: LABELS[i % LABELS.len()],
                util,
                work: SimDuration::from_millis(ms),
            })
            .collect(),
    )
}

fn shared(phases: &[(f64, u64)]) -> SharedCpu {
    Arc::new(Mutex::new(CpuModel::new(
        CpuSpec::desktop(),
        workload(phases),
    )))
}

fn kind_at(idx: usize) -> ProbeKind {
    ProbeKind::ALL[idx % ProbeKind::ALL.len()]
}

/// One full run: polls `kind` over `phases` every `cadence_us` until
/// past the workload, returning the raw register sequence plus the
/// session's final energy and the stolen time.
fn run(kind: ProbeKind, phases: &[(f64, u64)], cadence_us: u64) -> (Vec<u64>, u64, u64) {
    let cpu = shared(phases);
    let mut session = EnergySession::over(kind, Arc::clone(&cpu));
    let total_ms: u64 = phases.iter().map(|&(_, ms)| ms).sum();
    let end = SimTime::from_micros(total_ms * 1_000 + 2_000);
    let mut raws = Vec::new();
    let mut t = SimTime::ZERO;
    while t <= end {
        raws.push(session.poll(t));
        t += SimDuration::from_micros(cadence_us);
    }
    let stolen = cpu.lock().stolen_total().as_nanos();
    (raws, session.energy().value().to_bits(), stolen)
}

proptest! {
    #[test]
    fn energy_is_monotone_for_every_path(
        kind_idx in 0usize..5,
        phases in proptest::collection::vec((0.0f64..=1.0, 1u64..40), 1..5),
        cadence_us in 120u64..20_000,
    ) {
        let kind = kind_at(kind_idx);
        let cpu = shared(&phases);
        let mut session = EnergySession::over(kind, cpu);
        let total_ms: u64 = phases.iter().map(|&(_, ms)| ms).sum();
        let end = SimTime::from_micros(total_ms * 1_000 + 2_000);
        let mut t = SimTime::ZERO;
        let mut last = 0.0f64;
        while t <= end {
            session.poll(t);
            let e = session.energy().value();
            prop_assert!(e >= last, "{}: energy regressed {e} < {last}", kind.label());
            last = e;
            t += SimDuration::from_micros(cadence_us);
        }
        // Close the session with a poll at `end` (a long cadence can
        // otherwise leave a single mid-run sample behind).
        session.poll(end);
        let e = session.energy().value();
        prop_assert!(e >= last, "final poll regressed {e} < {last}");
        // The package is never below idle power, so a finished run has
        // accumulated a strictly positive energy.
        prop_assert!(e > 0.0);
    }

    #[test]
    fn counter_wrap_round_trips(
        start in 0u64..u64::MAX / 2,
        delta in 0u64..1u64 << 31,
        bits in 10u32..=64,
    ) {
        // Simulate the hardware: the register shows the masked value;
        // unwrap_delta must recover the true delta whenever it fits in
        // one wrap period.
        let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
        prop_assume!(delta <= mask);
        let a = start & mask;
        let b = start.wrapping_add(delta) & mask;
        prop_assert_eq!(unwrap_delta(a, b, bits), delta);
    }

    #[test]
    fn quantisation_error_is_bounded_by_the_model(
        kind_idx in 0usize..5,
        phases in proptest::collection::vec((0.0f64..=1.0, 1u64..30), 1..4),
        cadence_us in 500u64..10_000,
    ) {
        let kind = kind_at(kind_idx);
        let cpu = shared(&phases);
        let mut session = EnergySession::over(kind, Arc::clone(&cpu));
        let total_ms: u64 = phases.iter().map(|&(_, ms)| ms).sum();
        let end = SimTime::from_micros(total_ms * 1_000 + 2_000);
        let mut t = SimTime::ZERO;
        let mut last_poll = SimTime::ZERO;
        while t <= end {
            session.poll(t);
            last_poll = t;
            t += SimDuration::from_micros(cadence_us);
        }
        // Session energy vs ground truth over the identical tick span.
        let spec = session.spec();
        let tick = spec.tick_before(last_poll);
        let truth = cpu.lock().energy_at(tick).expect("within history").value();
        let envelope = spec
            .error_envelope(CpuSpec::desktop().max_power())
            .value();
        let err = (session.energy().value() - truth).abs();
        prop_assert!(
            err <= envelope + 1e-9,
            "{}: err {err} > envelope {envelope}",
            kind.label()
        );
    }

    #[test]
    fn replay_is_bit_identical(
        kind_idx in 0usize..5,
        phases in proptest::collection::vec((0.0f64..=1.0, 1u64..25), 1..4),
        cadence_us in 150u64..15_000,
    ) {
        let kind = kind_at(kind_idx);
        let a = run(kind, &phases, cadence_us);
        let b = run(kind, &phases, cadence_us);
        prop_assert_eq!(a.0, b.0, "raw register sequences diverged");
        prop_assert_eq!(a.1, b.1, "session energy bits diverged");
        prop_assert_eq!(a.2, b.2, "stolen time diverged");
    }
}
