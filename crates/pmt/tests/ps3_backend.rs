//! Integration of the PMT abstraction with the full PowerSensor3
//! simulation stack.

use std::sync::Arc;

use ps3_duts::{ConstantDut, RailId};
use ps3_pmt::{Monitor, PowerMeter, Ps3Meter};
use ps3_sensors::ModuleKind;
use ps3_testbed::TestbedBuilder;
use ps3_units::{Amps, SimDuration, SimTime, Volts};

#[test]
fn ps3_meter_reports_the_testbed_power() {
    let dut = ConstantDut::new(RailId::Slot12V, Volts::new(12.0), Amps::new(3.0));
    let mut tb = TestbedBuilder::new(dut)
        .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
        .build();
    let ps = Arc::new(tb.connect().unwrap());
    tb.advance_and_sync(&ps, SimDuration::from_millis(10))
        .unwrap();
    let mut meter = Ps3Meter::new(Arc::clone(&ps));
    assert_eq!(meter.name(), "PowerSensor3");
    assert_eq!(meter.native_interval(), SimDuration::from_micros(50));
    let w = meter.read_watts(tb.device_time()).value();
    assert!((w - 36.0).abs() < 1.0, "read {w}");
}

#[test]
fn monitor_drives_the_testbed_through_on_step() {
    let dut = ConstantDut::new(RailId::Slot12V, Volts::new(12.0), Amps::new(1.0));
    let mut tb = TestbedBuilder::new(dut)
        .attach(ModuleKind::Slot10A12V, RailId::Slot12V)
        .build();
    let ps = Arc::new(tb.connect().unwrap());
    let mut meter = Ps3Meter::new(Arc::clone(&ps));
    let monitor = Monitor::new(SimDuration::from_millis(5));
    let mut last = SimTime::ZERO;
    let trace = monitor.sample(
        &mut meter,
        SimTime::ZERO,
        SimDuration::from_millis(50),
        |t| {
            // Advance the testbed to the poll time.
            let delta = t.saturating_duration_since(last);
            if !delta.is_zero() {
                tb.advance_and_sync(&ps, delta).unwrap();
            }
            last = t;
        },
    );
    assert_eq!(trace.len(), 11);
    let mean = trace.mean_power().unwrap().value();
    // The first poll at t=0 reads 0 (no frames yet); the rest ≈ 12 W
    // with single-frame noise (σ ≈ 0.7 W per 50 µs sample).
    assert!((mean - 12.0).abs() < 2.0, "mean {mean}");
    let last = trace.samples().last().unwrap().power.value();
    assert!((last - 12.0).abs() < 3.0, "last {last}");
}
