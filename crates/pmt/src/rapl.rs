//! A RAPL-like CPU package meter with the real interface quirk: a
//! 32-bit microjoule register that wraps, which the meter unwraps
//! across reads.
//!
//! The hardware-side ledger is kept in *integer* microjoules (a `u64`
//! whole part plus a fractional remainder), so the wrapping 32-bit
//! register is an exact truncation of true energy rather than a float
//! cast — the old float-based ledger drifted from its own wrapped
//! register, and software-side unwrapped accounting could not be
//! checked against it bit-for-bit. See `wrap_accounting_is_exact`.

use ps3_units::{Joules, SimDuration, SimTime, Watts};

use crate::meter::PowerMeter;

/// A RAPL-like CPU package meter: the hardware exposes a 32-bit energy
/// counter in microjoules that wraps every couple of minutes at desktop
/// power levels; power is the derivative between two reads.
pub struct RaplMeter {
    /// Package idle power.
    idle_w: f64,
    /// Additional power at full utilisation.
    dynamic_w: f64,
    utilization: f64,
    /// True accumulated energy: whole microjoules…
    whole_uj: u64,
    /// …plus the sub-µJ remainder still to be carried (0 ≤ frac < 1).
    frac_uj: f64,
    last_tick: SimTime,
    last_read: Option<(SimTime, u32)>,
    /// Software-side unwrapped energy, accumulated from wrapping
    /// 32-bit deltas across reads.
    unwrapped_uj: u64,
    held_power: Watts,
}

impl RaplMeter {
    /// A desktop-class package: 15 W idle, +65 W at full load.
    #[must_use]
    pub fn desktop() -> Self {
        Self {
            idle_w: 15.0,
            dynamic_w: 65.0,
            utilization: 0.0,
            whole_uj: 0,
            frac_uj: 0.0,
            last_tick: SimTime::ZERO,
            last_read: None,
            unwrapped_uj: 0,
            held_power: Watts::new(15.0),
        }
    }

    /// Sets the CPU utilisation (0–1) from this moment on.
    ///
    /// # Panics
    ///
    /// Panics if `util` is outside `[0, 1]`.
    pub fn set_utilization(&mut self, util: f64, now: SimTime) {
        assert!((0.0..=1.0).contains(&util), "utilisation out of range");
        self.accumulate(now);
        self.utilization = util;
    }

    fn accumulate(&mut self, now: SimTime) {
        let dt = now.saturating_duration_since(self.last_tick).as_secs_f64();
        let p = self.idle_w + self.dynamic_w * self.utilization;
        let add = p * dt * 1e6 + self.frac_uj;
        let whole = add.floor();
        self.whole_uj += whole as u64;
        self.frac_uj = add - whole;
        self.last_tick = self.last_tick.max(now);
    }

    /// The raw wrapping hardware counter (testing/diagnostics).
    pub fn raw_counter_uj(&mut self, now: SimTime) -> u32 {
        self.accumulate(now);
        (self.whole_uj & 0xFFFF_FFFF) as u32
    }

    /// True accumulated energy since construction (wrap-free ground
    /// truth the software-side accounting is checked against).
    pub fn energy(&mut self, now: SimTime) -> Joules {
        self.accumulate(now);
        Joules::new((self.whole_uj as f64 + self.frac_uj) / 1e6)
    }

    /// Energy seen by the software side: wrapping 32-bit deltas summed
    /// across every [`PowerMeter::read_watts`] call. Matches the true
    /// ledger exactly as long as reads are less than one wrap period
    /// (~54 s at 80 W) apart.
    #[must_use]
    pub fn unwrapped_energy_uj(&self) -> u64 {
        self.unwrapped_uj
    }
}

impl PowerMeter for RaplMeter {
    fn name(&self) -> &str {
        "RAPL (package)"
    }

    fn read_watts(&mut self, now: SimTime) -> Watts {
        let raw = self.raw_counter_uj(now);
        if let Some((t0, raw0)) = self.last_read {
            // Unwrap the 32-bit counter.
            let delta = u64::from(raw.wrapping_sub(raw0));
            self.unwrapped_uj += delta;
            let dt = now.saturating_duration_since(t0).as_secs_f64();
            if dt > 0.0 {
                self.held_power = Watts::new(delta as f64 / 1e6 / dt);
            }
        }
        self.last_read = Some((now, raw));
        self.held_power
    }

    fn native_interval(&self) -> SimDuration {
        SimDuration::from_millis(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rapl_power_follows_utilization() {
        let mut rapl = RaplMeter::desktop();
        // Prime the counter.
        rapl.read_watts(SimTime::ZERO);
        let idle = rapl.read_watts(SimTime::from_micros(500_000)).value();
        assert!((idle - 15.0).abs() < 0.5, "idle {idle}");
        rapl.set_utilization(1.0, SimTime::from_micros(500_000));
        rapl.read_watts(SimTime::from_micros(600_000));
        let busy = rapl.read_watts(SimTime::from_micros(1_600_000)).value();
        assert!((busy - 80.0).abs() < 0.5, "busy {busy}");
    }

    #[test]
    fn rapl_counter_wraps_but_power_survives() {
        let mut rapl = RaplMeter::desktop();
        rapl.set_utilization(1.0, SimTime::ZERO);
        // 80 W = 8e7 µJ/s → the 32-bit counter (4.29e9 µJ) wraps every
        // ~54 s. Read at 20 s intervals across several wraps.
        let mut last = SimTime::ZERO;
        rapl.read_watts(last);
        for k in 1..10u64 {
            let t = SimTime::from_micros(k * 20_000_000);
            let w = rapl.read_watts(t).value();
            assert!((w - 80.0).abs() < 1.0, "read {k}: {w}");
            last = t;
        }
        let _ = last;
    }

    #[test]
    fn wrap_accounting_is_exact() {
        // Regression for the silent mid-interval wrap: with the old
        // float ledger the wrapped register and the true energy could
        // disagree, so unwrapped software accounting drifted. Cross at
        // least two wrap boundaries (80 W wraps every ~53.7 s) and
        // demand the software-side sum equal the hardware ledger to
        // the microjoule at every read.
        let mut rapl = RaplMeter::desktop();
        rapl.set_utilization(1.0, SimTime::ZERO);
        rapl.read_watts(SimTime::ZERO);
        let mut wraps = 0u32;
        let mut prev_raw = rapl.raw_counter_uj(SimTime::ZERO);
        for k in 1..=8u64 {
            let t = SimTime::from_micros(k * 20_000_000);
            let w = rapl.read_watts(t).value();
            assert!((w - 80.0).abs() < 1e-6, "read {k}: {w}");
            let raw = rapl.raw_counter_uj(t);
            if raw < prev_raw {
                wraps += 1;
            }
            prev_raw = raw;
            // The software-side unwrapped sum must match the true
            // integer ledger exactly — not approximately.
            assert_eq!(
                rapl.unwrapped_energy_uj(),
                rapl.whole_uj,
                "drift at read {k}"
            );
        }
        assert!(wraps >= 2, "test must cross wrap boundaries: {wraps}");
        // 160 s at 80 W = 12.8e9 µJ, well past two 4.29e9 µJ wraps.
        assert_eq!(rapl.unwrapped_energy_uj(), 12_800_000_000);
    }

    #[test]
    fn true_energy_is_wrap_free() {
        let mut rapl = RaplMeter::desktop();
        rapl.set_utilization(1.0, SimTime::ZERO);
        let t = SimTime::from_micros(100_000_000);
        let e = rapl.energy(t).value();
        assert!((e - 8_000.0).abs() < 1e-6, "100 s at 80 W: {e}");
        // The raw register has wrapped once by then; energy has not.
        assert!(f64::from(rapl.raw_counter_uj(t)) < e * 1e6);
    }
}
