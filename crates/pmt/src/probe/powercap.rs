//! The powercap-sysfs access path:
//! `/sys/class/powercap/intel-rapl:0/energy_uj`.
//!
//! The kernel's powercap layer pre-scales the energy-status MSR into
//! decimal microjoules, so the quantisation unit is 1 µJ — the finest
//! of the family — but every read is an `open`/`read`/`parse` round
//! trip through the VFS, making it by far the most expensive door:
//! 2.2 µs of stolen CPU per poll. The exported value wraps at the
//! 32-bit-µJ range (`max_energy_range_uj`), every couple of minutes at
//! desktop power.

use ps3_units::{SimDuration, SimTime};

use super::counter::CounterCore;
use super::{Probe, ProbeKind, ProbeSpec, SharedCpu};

/// Modeled characteristics of the sysfs door.
pub const SPEC: ProbeSpec = ProbeSpec {
    kind: ProbeKind::PowercapSysfs,
    read_cost: SimDuration::from_nanos(2_200),
    update_cost: SimDuration::ZERO,
    update_interval: SimDuration::from_millis(1),
    unit_uj: 1.0,
    counter_bits: 32,
};

/// A powercap-sysfs probe over a shared CPU package.
pub struct PowercapProbe {
    core: CounterCore,
}

impl PowercapProbe {
    /// Opens the sysfs door to `cpu`'s package counter.
    #[must_use]
    pub fn new(cpu: SharedCpu) -> Self {
        Self {
            core: CounterCore::new(SPEC, cpu),
        }
    }

    /// Ground truth at this probe's hardware tick (invariant checks).
    #[must_use]
    pub fn truth_at_tick(&self, now: SimTime) -> f64 {
        self.core.truth_at_tick(now)
    }
}

impl Probe for PowercapProbe {
    fn spec(&self) -> &ProbeSpec {
        self.core.spec()
    }

    fn read_raw(&mut self, now: SimTime) -> u64 {
        self.core.read_raw(now)
    }

    fn reads(&self) -> u64 {
        self.core.reads()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use parking_lot::Mutex;
    use ps3_duts::{CpuModel, CpuPhase, CpuSpec, CpuWorkload};

    use super::super::{unwrap_delta, EnergySession};
    use super::*;

    #[test]
    fn microjoule_counter_wraps_at_32_bits() {
        // A long full-load run: 80 W = 8e7 µJ/s wraps the 32-bit µJ
        // register every ~53.7 s.
        let cpu = Arc::new(Mutex::new(CpuModel::new(
            CpuSpec::desktop(),
            CpuWorkload::new(vec![CpuPhase {
                label: 'c',
                util: 1.0,
                work: SimDuration::from_secs(120),
            }]),
        )));
        let mut probe = PowercapProbe::new(Arc::clone(&cpu));
        let a = probe.read_raw(SimTime::from_micros(50_000_000));
        let b = probe.read_raw(SimTime::from_micros(60_000_000));
        assert!(b < a, "register wrapped: {b} vs {a}");
        // The session still reads the true delta through the wrap.
        let delta = unwrap_delta(a, b, 32);
        // ≈10 s at 80 W = 8e8 µJ (the probe's own steals add a hair).
        assert!(
            (8e8..8.1e8).contains(&(delta as f64)),
            "unwrapped delta {delta}"
        );
        // And a full session accumulates past the wrap monotonically.
        let mut session = EnergySession::over(ProbeKind::PowercapSysfs, cpu);
        let mut last = 0.0;
        for k in 0..24u64 {
            session.poll(SimTime::from_micros(k * 5_000_000));
            let e = session.energy().value();
            assert!(e >= last, "energy regressed at poll {k}: {e} < {last}");
            last = e;
        }
        assert!(last > 9_000.0, "115 s at ~80 W: {last}");
    }
}
