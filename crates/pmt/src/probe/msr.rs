//! The MSR access path: `pread` of `MSR_PKG_ENERGY_STATUS` on
//! `/dev/cpu/<n>/msr`.
//!
//! The rawest door: a single privileged register read, cheap (450 ns)
//! but undigested — the value is in hardware energy-status units
//! (2⁻¹⁴ J ≈ 61.035 µJ), only the low 32 bits are architected, and the
//! reader owns wrap handling entirely. This is the path the Diamond et
//! al. study found cheapest among the on-CPU doors.

use ps3_units::{SimDuration, SimTime};

use super::counter::CounterCore;
use super::{Probe, ProbeKind, ProbeSpec, SharedCpu};

/// One RAPL energy-status unit, microjoules (2⁻¹⁴ J).
pub const ENERGY_STATUS_UNIT_UJ: f64 = 1e6 / 16_384.0;

/// Modeled characteristics of the MSR door.
pub const SPEC: ProbeSpec = ProbeSpec {
    kind: ProbeKind::Msr,
    read_cost: SimDuration::from_nanos(450),
    update_cost: SimDuration::ZERO,
    update_interval: SimDuration::from_millis(1),
    unit_uj: ENERGY_STATUS_UNIT_UJ,
    counter_bits: 32,
};

/// An MSR probe over a shared CPU package.
pub struct MsrProbe {
    core: CounterCore,
}

impl MsrProbe {
    /// Opens `/dev/cpu/*/msr` against `cpu`'s package counter.
    #[must_use]
    pub fn new(cpu: SharedCpu) -> Self {
        Self {
            core: CounterCore::new(SPEC, cpu),
        }
    }

    /// Ground truth at this probe's hardware tick (invariant checks).
    #[must_use]
    pub fn truth_at_tick(&self, now: SimTime) -> f64 {
        self.core.truth_at_tick(now)
    }
}

impl Probe for MsrProbe {
    fn spec(&self) -> &ProbeSpec {
        self.core.spec()
    }

    fn read_raw(&mut self, now: SimTime) -> u64 {
        self.core.read_raw(now)
    }

    fn reads(&self) -> u64 {
        self.core.reads()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use parking_lot::Mutex;
    use ps3_duts::{CpuModel, CpuPhase, CpuSpec, CpuWorkload};

    use super::*;

    #[test]
    fn quantisation_is_one_energy_status_unit() {
        let cpu = Arc::new(Mutex::new(CpuModel::new(
            CpuSpec::desktop(),
            CpuWorkload::new(vec![CpuPhase {
                label: 'c',
                util: 1.0,
                work: SimDuration::from_millis(50),
            }]),
        )));
        let mut probe = MsrProbe::new(Arc::clone(&cpu));
        let raw = probe.read_raw(SimTime::from_micros(20_000));
        // 20 ms at 80 W = 1.6 J; in units of 2⁻¹⁴ J that is exactly
        // 26214.4 → quantised down to 26214.
        assert_eq!(raw, 26_214);
        let truth = cpu.lock().energy(SimTime::from_micros(20_000)).value();
        let err_uj = (raw as f64 * ENERGY_STATUS_UNIT_UJ) - truth * 1e6;
        assert!(
            err_uj.abs() <= ENERGY_STATUS_UNIT_UJ,
            "quantisation error {err_uj} µJ exceeds one unit"
        );
    }
}
