//! The eBPF access path: a kernel-side program samples the MSR on a
//! timer and publishes into a shared map userspace reads for free-ish.
//!
//! The trade the eBPF door makes is the inverse of sysfs: the
//! *userspace* read is nearly free (a map lookup, 150 ns), but the
//! kernel program fires every hardware update tick whether or not
//! anyone polls — a fixed background tax (2 µs per 1 ms tick) that
//! dominates at low polling rates and amortises away at high ones.
//! The map value is the kernel's 64-bit accumulation, so it never
//! wraps in userspace.

use ps3_units::{SimDuration, SimTime};

use super::counter::CounterCore;
use super::msr::ENERGY_STATUS_UNIT_UJ;
use super::{Probe, ProbeKind, ProbeSpec, SharedCpu};

/// Modeled characteristics of the eBPF door.
pub const SPEC: ProbeSpec = ProbeSpec {
    kind: ProbeKind::Ebpf,
    read_cost: SimDuration::from_nanos(150),
    update_cost: SimDuration::from_nanos(2_000),
    update_interval: SimDuration::from_millis(1),
    unit_uj: ENERGY_STATUS_UNIT_UJ,
    counter_bits: 64,
};

/// An eBPF probe over a shared CPU package.
pub struct EbpfProbe {
    core: CounterCore,
}

impl EbpfProbe {
    /// Attaches the kernel sampler to `cpu`'s package counter.
    #[must_use]
    pub fn new(cpu: SharedCpu) -> Self {
        Self {
            core: CounterCore::new(SPEC, cpu),
        }
    }

    /// Ground truth at this probe's hardware tick (invariant checks).
    #[must_use]
    pub fn truth_at_tick(&self, now: SimTime) -> f64 {
        self.core.truth_at_tick(now)
    }
}

impl Probe for EbpfProbe {
    fn spec(&self) -> &ProbeSpec {
        self.core.spec()
    }

    fn read_raw(&mut self, now: SimTime) -> u64 {
        self.core.read_raw(now)
    }

    fn reads(&self) -> u64 {
        self.core.reads()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use parking_lot::Mutex;
    use ps3_duts::{CpuModel, CpuPhase, CpuSpec, CpuWorkload};

    use super::*;

    fn cpu() -> SharedCpu {
        Arc::new(Mutex::new(CpuModel::new(
            CpuSpec::desktop(),
            CpuWorkload::new(vec![CpuPhase {
                label: 'c',
                util: 1.0,
                work: SimDuration::from_millis(200),
            }]),
        )))
    }

    #[test]
    fn background_tax_is_charged_even_for_rare_polls() {
        // Two polls 100 ms apart: the second charges the ~100 elapsed
        // kernel ticks (2 µs each) on top of two 150 ns map lookups.
        let shared = cpu();
        let mut probe = EbpfProbe::new(Arc::clone(&shared));
        probe.read_raw(SimTime::ZERO);
        probe.read_raw(SimTime::from_micros(100_000));
        let stolen = shared.lock().stolen_total().as_nanos();
        assert_eq!(stolen, 100 * 2_000 + 2 * 150);
    }

    #[test]
    fn background_tax_does_not_double_charge() {
        // Polling 10× inside one tick charges the tick's update once.
        let shared = cpu();
        let mut probe = EbpfProbe::new(Arc::clone(&shared));
        for k in 0..10u64 {
            probe.read_raw(SimTime::from_nanos(1_000_000 + k * 50_000));
        }
        let stolen = shared.lock().stolen_total().as_nanos();
        assert_eq!(stolen, 2_000 + 10 * 150);
    }
}
