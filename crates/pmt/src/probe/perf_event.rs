//! The perf-event access path: a `power/energy-pkg/` counter fd from
//! `perf_event_open`.
//!
//! The kernel's perf subsystem samples the energy-status MSR and
//! *accumulates it into a 64-bit counter*, so userspace never sees a
//! wrap — the kernel pays the unwrap tax instead. The price is a
//! heavier read than raw MSR access (fd `read` + context switch,
//! 1.3 µs) while keeping the same 61.035 µJ unit and 1 ms refresh.

use ps3_units::{SimDuration, SimTime};

use super::counter::CounterCore;
use super::msr::ENERGY_STATUS_UNIT_UJ;
use super::{Probe, ProbeKind, ProbeSpec, SharedCpu};

/// Modeled characteristics of the perf-event door.
pub const SPEC: ProbeSpec = ProbeSpec {
    kind: ProbeKind::PerfEvent,
    read_cost: SimDuration::from_nanos(1_300),
    update_cost: SimDuration::ZERO,
    update_interval: SimDuration::from_millis(1),
    unit_uj: ENERGY_STATUS_UNIT_UJ,
    counter_bits: 64,
};

/// A perf-event probe over a shared CPU package.
pub struct PerfEventProbe {
    core: CounterCore,
}

impl PerfEventProbe {
    /// Opens a perf counter fd against `cpu`'s package counter.
    #[must_use]
    pub fn new(cpu: SharedCpu) -> Self {
        Self {
            core: CounterCore::new(SPEC, cpu),
        }
    }

    /// Ground truth at this probe's hardware tick (invariant checks).
    #[must_use]
    pub fn truth_at_tick(&self, now: SimTime) -> f64 {
        self.core.truth_at_tick(now)
    }
}

impl Probe for PerfEventProbe {
    fn spec(&self) -> &ProbeSpec {
        self.core.spec()
    }

    fn read_raw(&mut self, now: SimTime) -> u64 {
        self.core.read_raw(now)
    }

    fn reads(&self) -> u64 {
        self.core.reads()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use parking_lot::Mutex;
    use ps3_duts::{CpuModel, CpuPhase, CpuSpec, CpuWorkload};

    use super::super::msr::MsrProbe;
    use super::*;

    #[test]
    fn sixty_four_bit_counter_never_wraps_where_msr_does() {
        // A span past the 32-bit wrap in energy-status units: 2³²
        // units × 61.035 µJ ≈ 262 kJ, ~54 min at 80 W. At 3400 s the
        // package has burned 272 kJ ≈ 4.46e9 units — MSR has wrapped,
        // perf's 64-bit accumulation has not.
        let mk = || {
            Arc::new(Mutex::new(CpuModel::new(
                CpuSpec::desktop(),
                CpuWorkload::new(vec![CpuPhase {
                    label: 'c',
                    util: 1.0,
                    work: SimDuration::from_secs(3_500),
                }]),
            )))
        };
        let t = SimTime::from_micros(3_400_000_000);
        let mut perf = PerfEventProbe::new(mk());
        let mut msr = MsrProbe::new(mk());
        let raw_perf = perf.read_raw(t);
        let raw_msr = msr.read_raw(t);
        assert!(raw_perf > u64::from(u32::MAX), "perf carried: {raw_perf}");
        assert!(raw_msr < u64::from(u32::MAX), "msr wrapped: {raw_msr}");
        assert_eq!(raw_perf & 0xFFFF_FFFF, raw_msr, "low words agree");
    }
}
