//! The PS3-external baseline: PowerSensor3 on the package's 12 V rail.
//!
//! The measurement happens *outside* the DUT — the sensor's own MCU
//! samples the rail at 20 kHz and streams over USB — so the only cost
//! the measured CPU ever pays is the host client draining the USB
//! buffer: 20 ns per poll, amortised. This is the paper's granularity
//! argument meeting the Diamond et al. overhead argument: the external
//! probe is simultaneously the *fastest*-updating (50 µs) and the
//! *least* perturbing path in the family.

use ps3_units::{SimDuration, SimTime};

use super::counter::CounterCore;
use super::{Probe, ProbeKind, ProbeSpec, SharedCpu};

/// Modeled characteristics of the external baseline.
pub const SPEC: ProbeSpec = ProbeSpec {
    kind: ProbeKind::Ps3External,
    read_cost: SimDuration::from_nanos(20),
    update_cost: SimDuration::ZERO,
    update_interval: SimDuration::from_micros(50),
    unit_uj: 12.5,
    counter_bits: 64,
};

/// A PowerSensor3-backed energy probe over a shared CPU package.
pub struct ExternalProbe {
    core: CounterCore,
}

impl ExternalProbe {
    /// Clamps the sensor onto `cpu`'s 12 V rail.
    #[must_use]
    pub fn new(cpu: SharedCpu) -> Self {
        Self {
            core: CounterCore::new(SPEC, cpu),
        }
    }

    /// Ground truth at this probe's hardware tick (invariant checks).
    #[must_use]
    pub fn truth_at_tick(&self, now: SimTime) -> f64 {
        self.core.truth_at_tick(now)
    }
}

impl Probe for ExternalProbe {
    fn spec(&self) -> &ProbeSpec {
        self.core.spec()
    }

    fn read_raw(&mut self, now: SimTime) -> u64 {
        self.core.read_raw(now)
    }

    fn reads(&self) -> u64 {
        self.core.reads()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use parking_lot::Mutex;
    use ps3_duts::{CpuModel, CpuPhase, CpuSpec, CpuWorkload};
    use ps3_units::Watts;

    use super::super::ProbeKind;
    use super::*;

    #[test]
    fn sees_transients_the_oncpu_paths_miss() {
        // A 200 µs burst sits entirely inside one 1 ms RAPL tick but
        // spans four 50 µs PS3 frames.
        let mk = || {
            Arc::new(Mutex::new(CpuModel::new(
                CpuSpec::desktop(),
                CpuWorkload::new(vec![
                    CpuPhase {
                        label: 'i',
                        util: 0.0,
                        work: SimDuration::from_micros(400),
                    },
                    CpuPhase {
                        label: 'b',
                        util: 1.0,
                        work: SimDuration::from_micros(200),
                    },
                    CpuPhase {
                        label: 'i',
                        util: 0.0,
                        work: SimDuration::from_micros(300),
                    },
                ]),
            )))
        };
        let t = SimTime::from_micros(900);
        let mut ext = ExternalProbe::new(mk());
        let mut msr = super::super::msr::MsrProbe::new(mk());
        let ext_units = ext.read_raw(t);
        // External tick 900 µs covers the burst: idle 15 W × 700 µs +
        // 80 W × 200 µs = 26.5 mJ → 2120 units of 12.5 µJ.
        assert_eq!(ext_units, 2_120);
        // MSR's tick for t=900 µs is t=0: it has seen nothing at all.
        assert_eq!(msr.read_raw(t), 0);
    }

    #[test]
    fn envelope_is_tightest_in_the_family() {
        let pmax = Watts::new(80.0);
        let ext = SPEC.error_envelope(pmax).value();
        for kind in ProbeKind::ALL {
            if kind != ProbeKind::Ps3External {
                let other = kind.spec().error_envelope(pmax).value();
                assert!(ext < other, "{}: {ext} !< {other}", kind.label());
            }
        }
    }
}
