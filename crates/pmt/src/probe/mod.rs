//! The RAPL probe family: four modeled access paths to the same
//! package energy counter, plus the PS3-external baseline.
//!
//! Real RAPL is one set of hardware registers behind several software
//! doors, and the door chosen decides what a measurement *costs* the
//! workload being measured (Diamond et al., "What Is the Cost of
//! Energy Monitoring?"):
//!
//! | path            | read path              | modeled read cost |
//! |-----------------|------------------------|-------------------|
//! | powercap-sysfs  | `open`/`read` a sysfs ASCII file | 2.2 µs |
//! | MSR             | `pread` on `/dev/cpu/*/msr`      | 450 ns |
//! | perf-event      | `read` on a perf fd              | 1.3 µs |
//! | eBPF            | shared map lookup (+ kernel-side timer) | 150 ns |
//! | ps3-external    | host-side USB client             | 20 ns  |
//!
//! Every [`Probe::read_raw`] call *steals* its read cost from the
//! [`CpuModel`] under measurement ([`ps3_duts::CpuModel::steal`]), so
//! polling faster really does inflate the workload's runtime — the
//! effect the `overhead` bench experiment sweeps. Each path also has
//! its own counter width, quantisation unit and hardware update
//! interval, captured in [`ProbeSpec`]; [`ProbeSpec::error_envelope`]
//! bounds how far a probe's energy estimate may legitimately sit from
//! ground truth, which the `probes` sim scenario enforces under fault
//! injection.
//!
//! The module layout mirrors the access-path split of real RAPL
//! tooling (one file per door): [`powercap`], [`msr`], [`perf_event`],
//! [`ebpf`], [`external`].

pub mod counter;
pub mod ebpf;
pub mod external;
pub mod msr;
pub mod perf_event;
pub mod powercap;

use std::sync::Arc;

use parking_lot::Mutex;
use ps3_duts::CpuModel;
use ps3_units::{Joules, SimDuration, SimTime, Watts};

pub use counter::CounterCore;
pub use ebpf::EbpfProbe;
pub use external::ExternalProbe;
pub use msr::MsrProbe;
pub use perf_event::PerfEventProbe;
pub use powercap::PowercapProbe;

/// The CPU package a probe family measures, shared with the workload
/// driver and the testbed.
pub type SharedCpu = Arc<Mutex<CpuModel>>;

/// Which door into the package energy counter a probe uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// `/sys/class/powercap/intel-rapl:0/energy_uj`.
    PowercapSysfs,
    /// `MSR_PKG_ENERGY_STATUS` via `/dev/cpu/*/msr`.
    Msr,
    /// `perf_event_open(PERF_TYPE_POWER)` counter fd.
    PerfEvent,
    /// Kernel-side eBPF program sampling into a shared map.
    Ebpf,
    /// PowerSensor3 on the external rail (near-zero perturbation).
    Ps3External,
}

impl ProbeKind {
    /// Every kind, in sweep order (on-CPU paths first, baseline last).
    pub const ALL: [ProbeKind; 5] = [
        ProbeKind::PowercapSysfs,
        ProbeKind::Msr,
        ProbeKind::PerfEvent,
        ProbeKind::Ebpf,
        ProbeKind::Ps3External,
    ];

    /// The modeled characteristics of this access path.
    #[must_use]
    pub fn spec(self) -> ProbeSpec {
        match self {
            ProbeKind::PowercapSysfs => powercap::SPEC,
            ProbeKind::Msr => msr::SPEC,
            ProbeKind::PerfEvent => perf_event::SPEC,
            ProbeKind::Ebpf => ebpf::SPEC,
            ProbeKind::Ps3External => external::SPEC,
        }
    }

    /// Display name for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProbeKind::PowercapSysfs => "powercap-sysfs",
            ProbeKind::Msr => "msr",
            ProbeKind::PerfEvent => "perf-event",
            ProbeKind::Ebpf => "ebpf",
            ProbeKind::Ps3External => "ps3-external",
        }
    }

    /// Identifier-safe name for metric keys and CSV legends.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            ProbeKind::PowercapSysfs => "powercap_sysfs",
            ProbeKind::Msr => "msr",
            ProbeKind::PerfEvent => "perf_event",
            ProbeKind::Ebpf => "ebpf",
            ProbeKind::Ps3External => "ps3_external",
        }
    }

    /// `true` for paths that run on the measured package itself.
    #[must_use]
    pub fn is_on_cpu(self) -> bool {
        self != ProbeKind::Ps3External
    }
}

/// Modeled characteristics of one access path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSpec {
    /// The access path.
    pub kind: ProbeKind,
    /// CPU time one read steals from the workload.
    pub read_cost: SimDuration,
    /// CPU time the path's background machinery steals per hardware
    /// update tick, whether or not anyone polls (eBPF only).
    pub update_cost: SimDuration,
    /// How often the hardware refreshes the counter; reads between
    /// refreshes see the value at the last tick.
    pub update_interval: SimDuration,
    /// Microjoules per counter unit (RAPL energy-status unit:
    /// 2⁻¹⁴ J ≈ 61.035 µJ; powercap pre-scales to 1 µJ).
    pub unit_uj: f64,
    /// Counter register width; the value wraps at 2^bits.
    pub counter_bits: u32,
}

impl ProbeSpec {
    /// Bitmask the raw counter is truncated to.
    #[must_use]
    pub fn mask(&self) -> u64 {
        if self.counter_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.counter_bits) - 1
        }
    }

    /// The hardware update tick at or before `now`.
    #[must_use]
    pub fn tick_before(&self, now: SimTime) -> SimTime {
        let iv = self.update_interval.as_nanos();
        SimTime::from_nanos(now.as_nanos() / iv * iv)
    }

    /// Worst-case distance between this probe's unwrapped energy over
    /// a span and ground truth over the same span, for a package that
    /// never exceeds `max_power`: one quantisation unit plus one
    /// update interval of staleness at each endpoint.
    #[must_use]
    pub fn error_envelope(&self, max_power: Watts) -> Joules {
        let quant = 2.0 * self.unit_uj / 1e6;
        let stale = max_power * (self.update_interval * 2);
        Joules::new(quant) + stale
    }
}

/// A modeled energy probe. Reading it costs the measured CPU time.
pub trait Probe: Send {
    /// The path's modeled characteristics.
    fn spec(&self) -> &ProbeSpec;

    /// Reads the raw counter at `now`: the quantised, truncated energy
    /// at the last hardware update tick. Charges the read cost (and
    /// any background cost) to the measured CPU.
    fn read_raw(&mut self, now: SimTime) -> u64;

    /// How many reads this probe has issued.
    fn reads(&self) -> u64;
}

/// Builds the probe for `kind` against a shared CPU package.
#[must_use]
pub fn build(kind: ProbeKind, cpu: SharedCpu) -> Box<dyn Probe> {
    match kind {
        ProbeKind::PowercapSysfs => Box::new(PowercapProbe::new(cpu)),
        ProbeKind::Msr => Box::new(MsrProbe::new(cpu)),
        ProbeKind::PerfEvent => Box::new(PerfEventProbe::new(cpu)),
        ProbeKind::Ebpf => Box::new(EbpfProbe::new(cpu)),
        ProbeKind::Ps3External => Box::new(ExternalProbe::new(cpu)),
    }
}

/// Unwraps one wrapping counter step: the forward distance from `prev`
/// to `cur` on a `bits`-wide ring. Correct whenever the true delta is
/// below one wrap period.
#[must_use]
pub fn unwrap_delta(prev: u64, cur: u64, bits: u32) -> u64 {
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    cur.wrapping_sub(prev) & mask
}

/// Polls a probe and accumulates wrap-corrected energy across reads —
/// the software half of every RAPL tool.
pub struct EnergySession {
    probe: Box<dyn Probe>,
    last_raw: Option<u64>,
    total_units: u64,
}

impl EnergySession {
    /// Starts a session over `probe` (no reads issued yet).
    #[must_use]
    pub fn new(probe: Box<dyn Probe>) -> Self {
        Self {
            probe,
            last_raw: None,
            total_units: 0,
        }
    }

    /// Convenience: builds the probe for `kind` and wraps it.
    #[must_use]
    pub fn over(kind: ProbeKind, cpu: SharedCpu) -> Self {
        Self::new(build(kind, cpu))
    }

    /// The probe's spec.
    #[must_use]
    pub fn spec(&self) -> ProbeSpec {
        *self.probe.spec()
    }

    /// Polls at `now`, folding the wrapped delta into the session
    /// total, and returns the raw register value.
    pub fn poll(&mut self, now: SimTime) -> u64 {
        let raw = self.probe.read_raw(now);
        if let Some(prev) = self.last_raw {
            self.total_units += unwrap_delta(prev, raw, self.probe.spec().counter_bits);
        }
        self.last_raw = Some(raw);
        raw
    }

    /// Wrap-corrected energy accumulated between the first and latest
    /// poll.
    #[must_use]
    pub fn energy(&self) -> Joules {
        Joules::new(self.total_units as f64 * self.probe.spec().unit_uj / 1e6)
    }

    /// The same accumulation in raw counter units — an exact integer,
    /// ideal for fingerprints and replay facts.
    #[must_use]
    pub fn total_units(&self) -> u64 {
        self.total_units
    }

    /// Reads issued so far.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.probe.reads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps3_duts::{CpuModel, CpuPhase, CpuSpec, CpuWorkload};

    fn busy_cpu() -> SharedCpu {
        Arc::new(Mutex::new(CpuModel::new(
            CpuSpec::desktop(),
            CpuWorkload::new(vec![CpuPhase {
                label: 'c',
                util: 1.0,
                work: SimDuration::from_millis(500),
            }]),
        )))
    }

    #[test]
    fn specs_are_distinct_and_ranked() {
        let specs: Vec<ProbeSpec> = ProbeKind::ALL.iter().map(|k| k.spec()).collect();
        for (i, a) in specs.iter().enumerate() {
            assert_eq!(a.kind, ProbeKind::ALL[i]);
            for b in &specs[i + 1..] {
                assert_ne!(a, b, "duplicate spec: {a:?}");
            }
        }
        // The overhead-study headline: the external baseline costs at
        // least 10× less per read than the worst on-CPU path.
        let worst = ProbeKind::ALL
            .iter()
            .filter(|k| k.is_on_cpu())
            .map(|k| k.spec().read_cost.as_nanos())
            .max()
            .unwrap();
        let ps3 = ProbeKind::Ps3External.spec().read_cost.as_nanos();
        assert!(worst >= 10 * ps3, "worst {worst} ns vs ps3 {ps3} ns");
    }

    #[test]
    fn unwrap_delta_handles_wrap_and_width() {
        assert_eq!(unwrap_delta(10, 25, 32), 15);
        assert_eq!(unwrap_delta(0xFFFF_FFF0, 0x10, 32), 0x20);
        assert_eq!(unwrap_delta(u64::MAX - 1, 3, 64), 5);
        assert_eq!(unwrap_delta(0x3FF, 0x001, 10), 2);
    }

    #[test]
    fn every_probe_tracks_a_busy_package() {
        for kind in ProbeKind::ALL {
            let cpu = busy_cpu();
            let mut session = EnergySession::over(kind, Arc::clone(&cpu));
            let step = SimDuration::from_millis(5);
            let mut t = SimTime::ZERO;
            let mut last_poll = SimTime::ZERO;
            for _ in 0..=100 {
                session.poll(t);
                last_poll = t;
                t += step;
            }
            // 500 ms at 80 W = 40 J; the session spans [tick(0),
            // tick(last poll)], so compare ground truth over exactly
            // that span and allow the quantisation/staleness envelope.
            let est = session.energy().value();
            let tick = kind.spec().tick_before(last_poll);
            let truth = cpu.lock().energy_at(tick).expect("in history").value();
            let envelope = kind.spec().error_envelope(Watts::new(80.0)).value();
            assert!(
                (est - truth).abs() <= envelope + 1e-9,
                "{}: est {est} truth {truth} envelope {envelope}",
                kind.label()
            );
            assert_eq!(session.reads(), 101);
        }
    }

    #[test]
    fn reads_steal_time_proportional_to_cost() {
        let kinds = [ProbeKind::PowercapSysfs, ProbeKind::Ps3External];
        let mut stolen = Vec::new();
        for kind in kinds {
            let cpu = busy_cpu();
            let mut session = EnergySession::over(kind, Arc::clone(&cpu));
            for k in 0..1_000u64 {
                session.poll(SimTime::from_micros(k * 100));
            }
            stolen.push(cpu.lock().stolen_total().as_nanos());
        }
        assert_eq!(stolen[0], 1_000 * 2_200);
        assert_eq!(stolen[1], 1_000 * 20);
    }
}
