//! Shared counter machinery: every access path reads the *same*
//! package energy, differing only in cost, quantisation, update
//! cadence and register width.

use ps3_units::{SimTime, Watts};

use super::{ProbeSpec, SharedCpu};

/// The common sampling core a concrete probe delegates to.
///
/// A read at `now`:
///
/// 1. advances the shared [`ps3_duts::CpuModel`] to `now`;
/// 2. charges any background update cost accrued since the last read
///    (eBPF's kernel-side sampler runs once per hardware tick whether
///    or not userspace polls — the charge is folded in lazily at read
///    time, which keeps the model deterministic without a separate
///    event source);
/// 3. quantises the package energy *at the last hardware update tick*
///    into counter units and truncates to the register width;
/// 4. charges the read cost itself — the syscall the workload pays
///    for.
pub struct CounterCore {
    spec: ProbeSpec,
    cpu: SharedCpu,
    reads: u64,
    /// Last hardware tick whose background cost has been charged.
    charged_through: SimTime,
}

impl CounterCore {
    /// Builds the core for one access path over a shared package.
    #[must_use]
    pub fn new(spec: ProbeSpec, cpu: SharedCpu) -> Self {
        Self {
            spec,
            cpu,
            reads: 0,
            charged_through: SimTime::ZERO,
        }
    }

    /// The path's spec.
    #[must_use]
    pub fn spec(&self) -> &ProbeSpec {
        &self.spec
    }

    /// Reads issued so far.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// One raw register read at `now` (see the type docs for the exact
    /// sequence).
    pub fn read_raw(&mut self, now: SimTime) -> u64 {
        let spec = self.spec;
        let mut cpu = self.cpu.lock();
        cpu.advance_to(now);
        let tick = spec.tick_before(now);
        if !spec.update_cost.is_zero() && tick > self.charged_through {
            let ticks = (tick - self.charged_through) / spec.update_interval;
            cpu.steal(now, spec.update_cost * ticks);
            self.charged_through = tick;
        }
        let energy = cpu
            .energy_at(tick)
            .unwrap_or_else(|| cpu.energy(now))
            .value();
        let units = (energy * 1e6 / spec.unit_uj).floor() as u64;
        cpu.steal(now, spec.read_cost);
        self.reads += 1;
        units & spec.mask()
    }

    /// Ground truth at this probe's hardware tick for `now` — what a
    /// perfect (cost-free, quantisation-free) probe would report.
    /// Used by invariant checks, costs nothing.
    pub fn truth_at_tick(&self, now: SimTime) -> f64 {
        let tick = self.spec.tick_before(now);
        let mut cpu = self.cpu.lock();
        cpu.energy_at(tick)
            .unwrap_or_else(|| cpu.energy(now))
            .value()
    }

    /// The package's full-load power (scales error envelopes).
    pub fn max_power(&self) -> Watts {
        self.cpu.lock().spec().max_power()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use parking_lot::Mutex;
    use ps3_duts::{CpuModel, CpuPhase, CpuSpec, CpuWorkload};
    use ps3_units::SimDuration;

    use super::super::ProbeKind;
    use super::*;

    fn cpu(util: f64) -> SharedCpu {
        Arc::new(Mutex::new(CpuModel::new(
            CpuSpec::desktop(),
            CpuWorkload::new(vec![CpuPhase {
                label: 'c',
                util,
                work: SimDuration::from_millis(100),
            }]),
        )))
    }

    #[test]
    fn counter_holds_between_update_ticks() {
        let mut core = CounterCore::new(ProbeKind::Msr.spec(), cpu(1.0));
        // 1 ms update interval: reads inside the same tick see the
        // same quantised value.
        let a = core.read_raw(SimTime::from_micros(5_100));
        let b = core.read_raw(SimTime::from_micros(5_900));
        assert_eq!(a, b);
        let c = core.read_raw(SimTime::from_micros(6_100));
        assert!(c > a, "next tick advances the counter: {c} vs {a}");
    }

    #[test]
    fn counter_is_quantised_to_whole_units() {
        let mut core = CounterCore::new(ProbeKind::Msr.spec(), cpu(1.0));
        // 80 W for 10 ms = 0.8 J = 13107.2 units of 61.035 µJ → 13107.
        let raw = core.read_raw(SimTime::from_micros(10_000));
        assert_eq!(raw, 13_107);
    }

    #[test]
    fn truth_at_tick_costs_nothing() {
        let shared = cpu(1.0);
        let core = CounterCore::new(ProbeKind::Msr.spec(), Arc::clone(&shared));
        shared.lock().advance_to(SimTime::from_micros(10_000));
        let truth = core.truth_at_tick(SimTime::from_micros(10_500));
        assert!((truth - 0.8).abs() < 1e-9, "truth {truth}");
        assert_eq!(shared.lock().stolen_total(), SimDuration::ZERO);
    }
}
