//! PMT — a Power Measurement Toolkit abstraction (§V-A1).
//!
//! The paper's PMT library offers one interface over many power
//! sources: vendor APIs (NVML, ROCm/AMD SMI, RAPL) and PowerSensor3.
//! This crate reproduces that layering:
//!
//! * [`PowerMeter`] — the unified interface: name, native update
//!   interval, and an instantaneous power reading at a simulated time.
//! * [`Ps3Meter`] — backed by a connected
//!   [`ps3_core::PowerSensor`] (20 kHz).
//! * [`OnboardMeter`] — adapts any
//!   [`ps3_duts::OnboardSensor`] (NVML at 10 Hz, AMD
//!   SMI at 1 kHz, the Jetson module sensor).
//! * [`RaplMeter`] — a RAPL-style CPU energy *counter* with the real
//!   interface quirk: a 32-bit microjoule register that wraps, which
//!   the meter unwraps on read.
//! * [`Monitor`] — polls any meter on a fixed grid and produces a
//!   [`ps3_analysis::Trace`], the common format all figure
//!   harnesses consume.

#![forbid(unsafe_code)]

use std::sync::Arc;

use ps3_analysis::Trace;
use ps3_core::PowerSensor;
use ps3_duts::OnboardSensor;
use ps3_units::{SimDuration, SimTime, Watts};

/// A source of instantaneous power readings on the simulated clock.
pub trait PowerMeter: Send {
    /// Human-readable name for reports and plot legends.
    fn name(&self) -> &str;

    /// The reading the meter reports when polled at `now`.
    ///
    /// Meters with slow native intervals (NVML: 100 ms) hold their
    /// value between refreshes — polling faster does not create
    /// information, which is exactly the paper's point.
    fn read_watts(&mut self, now: SimTime) -> Watts;

    /// The meter's native refresh interval.
    fn native_interval(&self) -> SimDuration;
}

/// PowerSensor3 through PMT: full 20 kHz resolution.
pub struct Ps3Meter {
    ps: Arc<PowerSensor>,
}

impl Ps3Meter {
    /// Wraps a connected sensor.
    #[must_use]
    pub fn new(ps: Arc<PowerSensor>) -> Self {
        Self { ps }
    }
}

impl PowerMeter for Ps3Meter {
    fn name(&self) -> &str {
        "PowerSensor3"
    }

    fn read_watts(&mut self, _now: SimTime) -> Watts {
        self.ps.read().total_watts()
    }

    fn native_interval(&self) -> SimDuration {
        SimDuration::from_micros(50)
    }
}

/// Any on-board vendor sensor through PMT.
pub struct OnboardMeter<S> {
    sensor: S,
}

impl<S: OnboardSensor> OnboardMeter<S> {
    /// Wraps an on-board sensor model.
    #[must_use]
    pub fn new(sensor: S) -> Self {
        Self { sensor }
    }
}

impl<S: OnboardSensor> PowerMeter for OnboardMeter<S> {
    fn name(&self) -> &str {
        self.sensor.name()
    }

    fn read_watts(&mut self, now: SimTime) -> Watts {
        self.sensor.read(now).power
    }

    fn native_interval(&self) -> SimDuration {
        self.sensor.update_interval()
    }
}

/// A RAPL-like CPU package meter: the hardware exposes a 32-bit energy
/// counter in microjoules that wraps every couple of minutes at desktop
/// power levels; power is the derivative between two reads.
pub struct RaplMeter {
    /// Package idle power.
    idle_w: f64,
    /// Additional power at full utilisation.
    dynamic_w: f64,
    utilization: f64,
    /// True accumulated energy in µJ (we wrap it on read).
    true_energy_uj: f64,
    last_tick: SimTime,
    last_read: Option<(SimTime, u32)>,
    held_power: Watts,
}

impl RaplMeter {
    /// A desktop-class package: 15 W idle, +65 W at full load.
    #[must_use]
    pub fn desktop() -> Self {
        Self {
            idle_w: 15.0,
            dynamic_w: 65.0,
            utilization: 0.0,
            true_energy_uj: 0.0,
            last_tick: SimTime::ZERO,
            last_read: None,
            held_power: Watts::new(15.0),
        }
    }

    /// Sets the CPU utilisation (0–1) from this moment on.
    ///
    /// # Panics
    ///
    /// Panics if `util` is outside `[0, 1]`.
    pub fn set_utilization(&mut self, util: f64, now: SimTime) {
        assert!((0.0..=1.0).contains(&util), "utilisation out of range");
        self.accumulate(now);
        self.utilization = util;
    }

    fn accumulate(&mut self, now: SimTime) {
        let dt = now.saturating_duration_since(self.last_tick).as_secs_f64();
        let p = self.idle_w + self.dynamic_w * self.utilization;
        self.true_energy_uj += p * dt * 1e6;
        self.last_tick = self.last_tick.max(now);
    }

    /// The raw wrapping hardware counter (testing/diagnostics).
    pub fn raw_counter_uj(&mut self, now: SimTime) -> u32 {
        self.accumulate(now);
        (self.true_energy_uj as u64 & 0xFFFF_FFFF) as u32
    }
}

impl PowerMeter for RaplMeter {
    fn name(&self) -> &str {
        "RAPL (package)"
    }

    fn read_watts(&mut self, now: SimTime) -> Watts {
        let raw = self.raw_counter_uj(now);
        if let Some((t0, raw0)) = self.last_read {
            let dt = now.saturating_duration_since(t0).as_secs_f64();
            if dt > 0.0 {
                // Unwrap the 32-bit counter.
                let delta = u64::from(raw.wrapping_sub(raw0));
                self.held_power = Watts::new(delta as f64 / 1e6 / dt);
            }
        }
        self.last_read = Some((now, raw));
        self.held_power
    }

    fn native_interval(&self) -> SimDuration {
        SimDuration::from_millis(1)
    }
}

/// Polls a meter on a fixed grid, producing a trace.
#[derive(Debug, Clone, Copy)]
pub struct Monitor {
    interval: SimDuration,
}

impl Monitor {
    /// A monitor polling every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "poll interval must be non-zero");
        Self { interval }
    }

    /// Polls `meter` from `start` for `duration`. Before each poll,
    /// `on_step` is called with the poll time — wire it to your
    /// testbed's `advance`/`sync` so simulated time actually passes.
    pub fn sample<F>(
        &self,
        meter: &mut dyn PowerMeter,
        start: SimTime,
        duration: SimDuration,
        mut on_step: F,
    ) -> Trace
    where
        F: FnMut(SimTime),
    {
        let steps = duration / self.interval;
        let mut trace = Trace::with_capacity(steps as usize + 1);
        for k in 0..=steps {
            let t = start + self.interval * k;
            on_step(t);
            trace.push(t, meter.read_watts(t));
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use ps3_duts::{GpuKernel, GpuModel, GpuSpec, NvmlSensor};

    fn shared_gpu() -> Arc<Mutex<GpuModel>> {
        Arc::new(Mutex::new(GpuModel::new(GpuSpec::rtx4000_ada(), 21)))
    }

    #[test]
    fn onboard_meter_adapts_sensor() {
        let gpu = shared_gpu();
        let mut meter = OnboardMeter::new(NvmlSensor::instantaneous(gpu));
        assert_eq!(meter.name(), "NVML (instantaneous)");
        assert_eq!(meter.native_interval(), SimDuration::from_millis(100));
        let w = meter.read_watts(SimTime::from_micros(200_000)).value();
        assert!((w - 18.0 * 1.02).abs() < 2.0, "idle via NVML: {w}");
    }

    #[test]
    fn monitor_produces_grid_trace() {
        let gpu = shared_gpu();
        gpu.lock()
            .launch(GpuKernel::synthetic_fma(SimDuration::from_secs(1), 4));
        let mut meter = OnboardMeter::new(NvmlSensor::instantaneous(gpu));
        let monitor = Monitor::new(SimDuration::from_millis(100));
        let trace = monitor.sample(
            &mut meter,
            SimTime::ZERO,
            SimDuration::from_secs(1),
            |_t| {},
        );
        assert_eq!(trace.len(), 11);
        assert!((trace.sample_rate().unwrap() - 10.0).abs() < 0.1);
        assert!(trace.mean_power().unwrap().value() > 50.0);
    }

    #[test]
    fn rapl_power_follows_utilization() {
        let mut rapl = RaplMeter::desktop();
        // Prime the counter.
        rapl.read_watts(SimTime::ZERO);
        let idle = rapl.read_watts(SimTime::from_micros(500_000)).value();
        assert!((idle - 15.0).abs() < 0.5, "idle {idle}");
        rapl.set_utilization(1.0, SimTime::from_micros(500_000));
        rapl.read_watts(SimTime::from_micros(600_000));
        let busy = rapl.read_watts(SimTime::from_micros(1_600_000)).value();
        assert!((busy - 80.0).abs() < 0.5, "busy {busy}");
    }

    #[test]
    fn rapl_counter_wraps_but_power_survives() {
        let mut rapl = RaplMeter::desktop();
        rapl.set_utilization(1.0, SimTime::ZERO);
        // 80 W = 8e7 µJ/s → the 32-bit counter (4.29e9 µJ) wraps every
        // ~54 s. Read at 20 s intervals across several wraps.
        let mut last = SimTime::ZERO;
        rapl.read_watts(last);
        for k in 1..10u64 {
            let t = SimTime::from_micros(k * 20_000_000);
            let w = rapl.read_watts(t).value();
            assert!((w - 80.0).abs() < 1.0, "read {k}: {w}");
            last = t;
        }
        let _ = last;
    }

    #[test]
    #[should_panic(expected = "poll interval")]
    fn zero_interval_monitor_panics() {
        let _ = Monitor::new(SimDuration::ZERO);
    }
}
