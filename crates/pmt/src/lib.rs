//! PMT — a Power Measurement Toolkit abstraction (§V-A1).
//!
//! The paper's PMT library offers one interface over many power
//! sources: vendor APIs (NVML, ROCm/AMD SMI, RAPL) and PowerSensor3.
//! This crate reproduces that layering:
//!
//! * [`PowerMeter`] — the unified interface: name, native update
//!   interval, and an instantaneous power reading at a simulated time.
//! * [`Ps3Meter`] — backed by a connected
//!   [`ps3_core::PowerSensor`] (20 kHz).
//! * [`OnboardMeter`] — adapts any
//!   [`ps3_duts::OnboardSensor`] (NVML at 10 Hz, AMD
//!   SMI at 1 kHz, the Jetson module sensor).
//! * [`RaplMeter`] — a RAPL-style CPU energy *counter* with the real
//!   interface quirk: a 32-bit microjoule register that wraps, which
//!   the meter unwraps on read.
//! * [`Monitor`] — polls any meter on a fixed grid and produces a
//!   [`ps3_analysis::Trace`], the common format all figure
//!   harnesses consume.
//! * [`probe`] — the RAPL probe *family*: four modeled access paths
//!   (powercap-sysfs, MSR, perf-event, eBPF) plus the PS3-external
//!   baseline behind one [`Probe`] trait, each with its own read
//!   cost, update resolution and counter width, and each charging its
//!   measurement overhead to the [`ps3_duts::CpuModel`] it measures —
//!   the substrate of the `overhead` bench experiment and the
//!   `probes` sim scenario.

#![forbid(unsafe_code)]

mod meter;
pub mod probe;
mod rapl;

pub use meter::{Monitor, OnboardMeter, PowerMeter, Ps3Meter};
pub use probe::{
    build as build_probe, unwrap_delta, EnergySession, Probe, ProbeKind, ProbeSpec, SharedCpu,
};
pub use rapl::RaplMeter;
