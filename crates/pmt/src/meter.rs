//! The unified [`PowerMeter`] interface and its PS3/on-board backends.

use std::sync::Arc;

use ps3_analysis::Trace;
use ps3_core::PowerSensor;
use ps3_duts::OnboardSensor;
use ps3_units::{SimDuration, SimTime, Watts};

/// A source of instantaneous power readings on the simulated clock.
pub trait PowerMeter: Send {
    /// Human-readable name for reports and plot legends.
    fn name(&self) -> &str;

    /// The reading the meter reports when polled at `now`.
    ///
    /// Meters with slow native intervals (NVML: 100 ms) hold their
    /// value between refreshes — polling faster does not create
    /// information, which is exactly the paper's point.
    fn read_watts(&mut self, now: SimTime) -> Watts;

    /// The meter's native refresh interval.
    fn native_interval(&self) -> SimDuration;
}

/// PowerSensor3 through PMT: full 20 kHz resolution.
pub struct Ps3Meter {
    ps: Arc<PowerSensor>,
}

impl Ps3Meter {
    /// Wraps a connected sensor.
    #[must_use]
    pub fn new(ps: Arc<PowerSensor>) -> Self {
        Self { ps }
    }
}

impl PowerMeter for Ps3Meter {
    fn name(&self) -> &str {
        "PowerSensor3"
    }

    fn read_watts(&mut self, _now: SimTime) -> Watts {
        self.ps.read().total_watts()
    }

    fn native_interval(&self) -> SimDuration {
        SimDuration::from_micros(50)
    }
}

/// Any on-board vendor sensor through PMT.
pub struct OnboardMeter<S> {
    sensor: S,
}

impl<S: OnboardSensor> OnboardMeter<S> {
    /// Wraps an on-board sensor model.
    #[must_use]
    pub fn new(sensor: S) -> Self {
        Self { sensor }
    }
}

impl<S: OnboardSensor> PowerMeter for OnboardMeter<S> {
    fn name(&self) -> &str {
        self.sensor.name()
    }

    fn read_watts(&mut self, now: SimTime) -> Watts {
        self.sensor.read(now).power
    }

    fn native_interval(&self) -> SimDuration {
        self.sensor.update_interval()
    }
}

/// Polls a meter on a fixed grid, producing a trace.
#[derive(Debug, Clone, Copy)]
pub struct Monitor {
    interval: SimDuration,
}

impl Monitor {
    /// A monitor polling every `interval`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn new(interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "poll interval must be non-zero");
        Self { interval }
    }

    /// Polls `meter` from `start` for `duration`. Before each poll,
    /// `on_step` is called with the poll time — wire it to your
    /// testbed's `advance`/`sync` so simulated time actually passes.
    pub fn sample<F>(
        &self,
        meter: &mut dyn PowerMeter,
        start: SimTime,
        duration: SimDuration,
        mut on_step: F,
    ) -> Trace
    where
        F: FnMut(SimTime),
    {
        let steps = duration / self.interval;
        let mut trace = Trace::with_capacity(steps as usize + 1);
        for k in 0..=steps {
            let t = start + self.interval * k;
            on_step(t);
            trace.push(t, meter.read_watts(t));
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use ps3_duts::{GpuKernel, GpuModel, GpuSpec, NvmlSensor};

    fn shared_gpu() -> Arc<Mutex<GpuModel>> {
        Arc::new(Mutex::new(GpuModel::new(GpuSpec::rtx4000_ada(), 21)))
    }

    #[test]
    fn onboard_meter_adapts_sensor() {
        let gpu = shared_gpu();
        let mut meter = OnboardMeter::new(NvmlSensor::instantaneous(gpu));
        assert_eq!(meter.name(), "NVML (instantaneous)");
        assert_eq!(meter.native_interval(), SimDuration::from_millis(100));
        let w = meter.read_watts(SimTime::from_micros(200_000)).value();
        assert!((w - 18.0 * 1.02).abs() < 2.0, "idle via NVML: {w}");
    }

    #[test]
    fn monitor_produces_grid_trace() {
        let gpu = shared_gpu();
        gpu.lock()
            .launch(GpuKernel::synthetic_fma(SimDuration::from_secs(1), 4));
        let mut meter = OnboardMeter::new(NvmlSensor::instantaneous(gpu));
        let monitor = Monitor::new(SimDuration::from_millis(100));
        let trace = monitor.sample(
            &mut meter,
            SimTime::ZERO,
            SimDuration::from_secs(1),
            |_t| {},
        );
        assert_eq!(trace.len(), 11);
        assert!((trace.sample_rate().unwrap() - 10.0).abs() < 0.1);
        assert!(trace.mean_power().unwrap().value() > 50.0);
    }

    #[test]
    #[should_panic(expected = "poll interval")]
    fn zero_interval_monitor_panics() {
        let _ = Monitor::new(SimDuration::ZERO);
    }
}
