//! Segment codec: frames in, sealed on-disk bytes out, and back.
//!
//! A segment stores a run of consecutive frames as one self-contained
//! unit:
//!
//! ```text
//! header   magic · seq · frame/summary/marker counts · payload len ·
//!          start/end time · per-slot Rice parameters
//! summary  one block per [`SUMMARY_FRAMES`] frames: count, first/last
//!          (time, power), Σ/min/max power, in-block trapezoid energy
//! markers  (time, label) table — marker queries never touch the
//!          payload
//! payload  the compressed frame bit stream (see below)
//! trailer  CRC-32 over everything above · seal word
//! ```
//!
//! # Payload encoding
//!
//! Timestamps are delta-of-delta coded (Gorilla-style): at 20 kHz the
//! inter-frame delta is a constant 50 µs, so the common case is a
//! single bit. Raw 10-bit sample values are coded per slot as a
//! Rice-coded zigzag delta from the slot's previous value, with the
//! Rice parameter `k` chosen per slot per segment by exact cost
//! minimisation over the segment's actual deltas. A steady frame
//! (regular cadence, unchanged slot set, no marker) spends one flag
//! bit plus its value codes — ~10 bits/frame for one active pair
//! against 48 bits on the wire.
//!
//! Marker labels are stored natively (21 bits of Unicode scalar), so
//! archived traces round-trip the host-side labels that the device
//! wire protocol itself cannot carry.

use ps3_core::SENSOR_PAIRS;
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_sensors::AdcSpec;
use ps3_units::{SimTime, Watts};

use crate::bits::{unzigzag64, zigzag64, BitReader, BitWriter};
use crate::crc::crc32;
use crate::format::{
    read_f64, read_u32, read_u64, ArchiveError, MARKER_WIRE_SIZE, SEAL_MAGIC, SEGMENT_HEADER_SIZE,
    SEGMENT_MAGIC, SUMMARY_FRAMES, SUMMARY_WIRE_SIZE,
};

/// The inter-frame delta the delta-of-delta coder assumes before the
/// second frame of a segment: the 20 kHz cadence (µs). Starting from
/// the true cadence makes the second frame of every segment hit the
/// single-bit fast path.
const DEFAULT_DELTA_US: u64 = 50;

/// Unicode scalar values fit in 21 bits.
const CHAR_BITS: u8 = 21;

/// One archived sample frame — the durable form of
/// [`ps3_core::FrameRecord`]: raw codes plus presence, so reads can
/// re-derive physical units bit-identically with the stored sensor
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveFrame {
    /// Unwrapped device timestamp.
    pub time: SimTime,
    /// Raw 10-bit ADC code per slot (0 where absent).
    pub raw: [u16; SENSOR_SLOTS],
    /// Bit `i` set when slot `i` reported a sample in this frame.
    pub present: u8,
    /// Host-side marker label paired with this frame, if any.
    pub marker: Option<char>,
}

/// Total power of one archived frame, mirroring the live reader's
/// accumulation (`finalize_frame` in `ps3-core`) exactly: pairs in
/// ascending order, a pair contributes only when both its slots are
/// enabled *and* present, additions in the same order — so the result
/// is bit-identical to the live `Trace` sample.
#[must_use]
pub fn frame_total(
    configs: &[SensorConfig; SENSOR_SLOTS],
    adc: &AdcSpec,
    frame: &ArchiveFrame,
) -> Watts {
    let mut total = Watts::zero();
    for pair in 0..SENSOR_PAIRS {
        let i_cfg = &configs[2 * pair];
        let u_cfg = &configs[2 * pair + 1];
        if !(i_cfg.enabled && u_cfg.enabled) {
            continue;
        }
        if frame.present >> (2 * pair) & 0b11 != 0b11 {
            continue;
        }
        let (_, _, watts) = ps3_core::pair_readings(
            i_cfg,
            u_cfg,
            adc,
            frame.raw[2 * pair],
            frame.raw[2 * pair + 1],
        );
        total += watts;
    }
    total
}

/// Pre-aggregated statistics over one block of up to
/// [`SUMMARY_FRAMES`] frames, stored uncompressed so range queries can
/// skip payload decoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryBlock {
    /// Frames in the block.
    pub count: u32,
    /// Timestamp of the first frame (µs).
    pub first_us: u64,
    /// Timestamp of the last frame (µs).
    pub last_us: u64,
    /// Sequential sum of total power over the block (W).
    pub sum_w: f64,
    /// Minimum total power (W).
    pub min_w: f64,
    /// Maximum total power (W).
    pub max_w: f64,
    /// Trapezoid energy over the block's interior sample pairs (J);
    /// junctions between blocks are the reader's job.
    pub energy_j: f64,
    /// Total power of the first frame (W).
    pub first_w: f64,
    /// Total power of the last frame (W).
    pub last_w: f64,
}

impl SummaryBlock {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.first_us.to_le_bytes());
        out.extend_from_slice(&self.last_us.to_le_bytes());
        for v in [
            self.sum_w,
            self.min_w,
            self.max_w,
            self.energy_j,
            self.first_w,
            self.last_w,
        ] {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Self {
        Self {
            count: read_u32(bytes, 0),
            first_us: read_u64(bytes, 4),
            last_us: read_u64(bytes, 12),
            sum_w: read_f64(bytes, 20),
            min_w: read_f64(bytes, 28),
            max_w: read_f64(bytes, 36),
            energy_j: read_f64(bytes, 44),
            first_w: read_f64(bytes, 52),
            last_w: read_f64(bytes, 60),
        }
    }
}

/// Builds the summary blocks for a segment's frames from their
/// (write-time) total-power values. The per-block sum is accumulated
/// sequentially over the block — the decoded fast/slow stats paths
/// reproduce exactly this grouping, which is what makes them agree to
/// the last ulp.
#[must_use]
pub fn build_summaries(frames: &[ArchiveFrame], watts: &[f64]) -> Vec<SummaryBlock> {
    debug_assert_eq!(frames.len(), watts.len());
    frames
        .chunks(SUMMARY_FRAMES)
        .zip(watts.chunks(SUMMARY_FRAMES))
        .map(|(fs, ws)| summarize_block(fs, ws))
        .collect()
}

/// Summary of one block (helper shared with the decoded stats path).
#[must_use]
pub fn summarize_block(frames: &[ArchiveFrame], watts: &[f64]) -> SummaryBlock {
    let mut sum = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut energy = 0.0f64;
    for (i, &w) in watts.iter().enumerate() {
        sum += w;
        min = min.min(w);
        max = max.max(w);
        if i > 0 {
            let dt = frames[i]
                .time
                .saturating_duration_since(frames[i - 1].time)
                .as_secs_f64();
            energy += (watts[i - 1] + w) / 2.0 * dt;
        }
    }
    SummaryBlock {
        count: frames.len() as u32,
        first_us: frames.first().map_or(0, |f| f.time.as_micros()),
        last_us: frames.last().map_or(0, |f| f.time.as_micros()),
        sum_w: sum,
        min_w: min,
        max_w: max,
        energy_j: energy,
        first_w: watts.first().copied().unwrap_or(0.0),
        last_w: watts.last().copied().unwrap_or(0.0),
    }
}

/// The fixed per-segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Sequence number (0-based, consecutive).
    pub seq: u32,
    /// Frames in the payload.
    pub frame_count: u32,
    /// Summary blocks following the header.
    pub summary_count: u32,
    /// Marker-table entries following the summaries.
    pub marker_count: u32,
    /// Compressed payload length in bytes.
    pub payload_len: u32,
    /// Timestamp of the first frame (µs).
    pub start_us: u64,
    /// Timestamp of the last frame (µs).
    pub end_us: u64,
    /// Per-slot Rice parameters, 4 bits each (slot `i` at bits `4i`).
    pub k_params: u32,
}

impl SegmentHeader {
    /// The Rice parameter for `slot`.
    #[must_use]
    pub fn k_for(&self, slot: usize) -> u8 {
        (self.k_params >> (4 * slot) & 0xF) as u8
    }

    /// Total on-disk size of the segment this header describes,
    /// including the header itself and the trailer.
    #[must_use]
    pub fn disk_size(&self) -> u64 {
        (SEGMENT_HEADER_SIZE
            + self.summary_count as usize * SUMMARY_WIRE_SIZE
            + self.marker_count as usize * MARKER_WIRE_SIZE
            + self.payload_len as usize
            + crate::format::SEGMENT_TRAILER_SIZE) as u64
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&SEGMENT_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.frame_count.to_le_bytes());
        out.extend_from_slice(&self.summary_count.to_le_bytes());
        out.extend_from_slice(&self.marker_count.to_le_bytes());
        out.extend_from_slice(&self.payload_len.to_le_bytes());
        out.extend_from_slice(&self.start_us.to_le_bytes());
        out.extend_from_slice(&self.end_us.to_le_bytes());
        out.extend_from_slice(&self.k_params.to_le_bytes());
    }

    /// Parses the fixed header at the start of `bytes`.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Corrupt`] (at absolute offset `abs_offset`) on a
    /// short slice or bad magic.
    pub fn parse(bytes: &[u8], abs_offset: u64) -> Result<Self, ArchiveError> {
        if bytes.len() < SEGMENT_HEADER_SIZE {
            return Err(ArchiveError::Corrupt {
                offset: abs_offset,
                what: "segment header truncated".into(),
            });
        }
        if read_u32(bytes, 0) != SEGMENT_MAGIC {
            return Err(ArchiveError::Corrupt {
                offset: abs_offset,
                what: "bad segment magic".into(),
            });
        }
        Ok(Self {
            seq: read_u32(bytes, 4),
            frame_count: read_u32(bytes, 8),
            summary_count: read_u32(bytes, 12),
            marker_count: read_u32(bytes, 16),
            payload_len: read_u32(bytes, 20),
            start_us: read_u64(bytes, 24),
            end_us: read_u64(bytes, 32),
            k_params: read_u32(bytes, 40),
        })
    }
}

/// Parses `count` summary blocks from `bytes`.
#[must_use]
pub fn parse_summaries(bytes: &[u8], count: usize) -> Vec<SummaryBlock> {
    (0..count)
        .map(|i| SummaryBlock::decode(&bytes[i * SUMMARY_WIRE_SIZE..]))
        .collect()
}

/// Parses `count` marker-table entries from `bytes`.
#[must_use]
pub fn parse_markers(bytes: &[u8], count: usize) -> Vec<(u64, char)> {
    (0..count)
        .map(|i| {
            let at = i * MARKER_WIRE_SIZE;
            let time_us = read_u64(bytes, at);
            let label = char::from_u32(read_u32(bytes, at + 8)).unwrap_or('?');
            (time_us, label)
        })
        .collect()
}

/// Builds the complete on-disk bytes of one sealed segment from its
/// frames and their (write-time) total-power values.
///
/// # Panics
///
/// Panics if `frames` is empty or `frames.len() != watts.len()`;
/// debug-asserts that timestamps are non-decreasing.
#[must_use]
pub fn build_segment(seq: u32, frames: &[ArchiveFrame], watts: &[f64]) -> Vec<u8> {
    assert!(!frames.is_empty(), "a segment holds at least one frame");
    assert_eq!(frames.len(), watts.len());
    debug_assert!(
        frames.windows(2).all(|w| w[0].time <= w[1].time),
        "segment frames must be in time order"
    );
    let k_params = choose_rice_params(frames);
    let payload = encode_payload(frames, k_params);
    let summaries = build_summaries(frames, watts);
    let markers: Vec<(u64, char)> = frames
        .iter()
        .filter_map(|f| f.marker.map(|label| (f.time.as_micros(), label)))
        .collect();

    let header = SegmentHeader {
        seq,
        frame_count: frames.len() as u32,
        summary_count: summaries.len() as u32,
        marker_count: markers.len() as u32,
        payload_len: payload.len() as u32,
        start_us: frames[0].time.as_micros(),
        end_us: frames[frames.len() - 1].time.as_micros(),
        k_params,
    };
    let mut out = Vec::with_capacity(header.disk_size() as usize);
    header.encode_into(&mut out);
    for s in &summaries {
        s.encode_into(&mut out);
    }
    for &(time_us, label) in &markers {
        out.extend_from_slice(&time_us.to_le_bytes());
        out.extend_from_slice(&(label as u32).to_le_bytes());
    }
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&SEAL_MAGIC.to_le_bytes());
    out
}

/// Picks the Rice parameter per slot by exact cost minimisation over
/// the segment's zigzagged value deltas (ties go to the smaller `k`).
fn choose_rice_params(frames: &[ArchiveFrame]) -> u32 {
    let mut deltas: [Vec<u32>; SENSOR_SLOTS] = core::array::from_fn(|_| Vec::new());
    let mut prev: [Option<u16>; SENSOR_SLOTS] = [None; SENSOR_SLOTS];
    for frame in frames {
        for slot in 0..SENSOR_SLOTS {
            if frame.present & (1 << slot) == 0 {
                continue;
            }
            let v = frame.raw[slot];
            if let Some(p) = prev[slot] {
                deltas[slot].push(zigzag64(i64::from(v) - i64::from(p)) as u32);
            }
            prev[slot] = Some(v);
        }
    }
    let mut packed = 0u32;
    for (slot, ds) in deltas.iter().enumerate() {
        let best = (0..=10u8)
            .min_by_key(|&k| {
                ds.iter()
                    .map(|&d| u64::from(BitWriter::rice_cost(d, k)))
                    .sum::<u64>()
            })
            .unwrap_or(0);
        packed |= u32::from(best) << (4 * slot);
    }
    packed
}

fn encode_payload(frames: &[ArchiveFrame], k_params: u32) -> Vec<u8> {
    let k: [u8; SENSOR_SLOTS] = core::array::from_fn(|s| (k_params >> (4 * s) & 0xF) as u8);
    let mut w = BitWriter::new();
    let mut prev_vals: [Option<u16>; SENSOR_SLOTS] = [None; SENSOR_SLOTS];
    let mut push_values = |w: &mut BitWriter, frame: &ArchiveFrame| {
        for slot in 0..SENSOR_SLOTS {
            if frame.present & (1 << slot) == 0 {
                continue;
            }
            let v = frame.raw[slot];
            match prev_vals[slot] {
                None => w.push_bits(u64::from(v), 10),
                Some(p) => {
                    w.push_rice(zigzag64(i64::from(v) - i64::from(p)) as u32, k[slot]);
                }
            }
            prev_vals[slot] = Some(v);
        }
    };

    // First frame: its timestamp is the header's `start_us`.
    let first = &frames[0];
    w.push_bits(u64::from(first.present), 8);
    push_marker(&mut w, first.marker);
    push_values(&mut w, first);

    let mut prev_time = first.time.as_micros();
    let mut prev_delta = DEFAULT_DELTA_US;
    let mut prev_present = first.present;
    for frame in &frames[1..] {
        let t = frame.time.as_micros();
        let delta = t - prev_time;
        let dod = i128::from(delta) - i128::from(prev_delta);
        let fast = dod == 0 && frame.present == prev_present && frame.marker.is_none();
        w.push_bit(fast);
        if !fast {
            push_dod(&mut w, dod, delta);
            if frame.present == prev_present {
                w.push_bit(false);
            } else {
                w.push_bit(true);
                w.push_bits(u64::from(frame.present), 8);
            }
            push_marker(&mut w, frame.marker);
        }
        push_values(&mut w, frame);
        prev_time = t;
        prev_delta = delta;
        prev_present = frame.present;
    }
    w.finish()
}

/// Writes a marker flag bit plus, when set, the label's Unicode scalar.
fn push_marker(w: &mut BitWriter, marker: Option<char>) {
    match marker {
        None => w.push_bit(false),
        Some(label) => {
            w.push_bit(true);
            w.push_bits(u64::from(label as u32), CHAR_BITS);
        }
    }
}

/// Timestamp delta-of-delta classes (after a `0` slow-path flag):
/// `0` → dod = 0, `10`+8 bits, `110`+16 bits, `1110`+32 bits (all
/// zigzag), `1111`+64 raw bits of the delta itself.
fn push_dod(w: &mut BitWriter, dod: i128, delta: u64) {
    if dod == 0 {
        w.push_bit(false);
        return;
    }
    w.push_bit(true);
    let mag = dod.unsigned_abs();
    if mag <= 127 {
        w.push_bit(false);
        w.push_bits(zigzag64(dod as i64), 8);
    } else if mag <= 32_767 {
        w.push_bit(true);
        w.push_bit(false);
        w.push_bits(zigzag64(dod as i64), 16);
    } else if mag <= i32::MAX as u128 {
        w.push_bit(true);
        w.push_bit(true);
        w.push_bit(false);
        w.push_bits(zigzag64(dod as i64), 32);
    } else {
        w.push_bit(true);
        w.push_bit(true);
        w.push_bit(true);
        w.push_bits(delta, 64);
    }
}

/// Decodes a segment payload back into its frames.
///
/// # Errors
///
/// [`ArchiveError::Corrupt`] (at `abs_offset`) if the bit stream ends
/// early or decodes to impossible values — only reachable on CRC-valid
/// but logically damaged data, or a codec bug.
pub fn decode_payload(
    header: &SegmentHeader,
    payload: &[u8],
    abs_offset: u64,
) -> Result<Vec<ArchiveFrame>, ArchiveError> {
    let corrupt = |what: &str| ArchiveError::Corrupt {
        offset: abs_offset,
        what: what.into(),
    };
    let k: [u8; SENSOR_SLOTS] = core::array::from_fn(|s| header.k_for(s));
    let mut r = BitReader::new(payload);
    let mut frames = Vec::with_capacity(header.frame_count as usize);
    if header.frame_count == 0 {
        return Ok(frames);
    }
    let mut prev_vals: [Option<u16>; SENSOR_SLOTS] = [None; SENSOR_SLOTS];
    let mut read_values = |r: &mut BitReader<'_>, present: u8| -> Result<_, ArchiveError> {
        let mut raw = [0u16; SENSOR_SLOTS];
        for slot in 0..SENSOR_SLOTS {
            if present & (1 << slot) == 0 {
                continue;
            }
            let v = match prev_vals[slot] {
                None => r
                    .read_bits(10)
                    .map_err(|_| corrupt("payload ends mid-value"))? as u16,
                Some(p) => {
                    let zz = r
                        .read_rice(k[slot])
                        .map_err(|_| corrupt("payload ends mid-delta"))?;
                    let v = i64::from(p) + unzigzag64(u64::from(zz));
                    u16::try_from(v).map_err(|_| corrupt("value delta out of range"))?
                }
            };
            raw[slot] = v;
            prev_vals[slot] = Some(v);
        }
        Ok(raw)
    };

    // First frame.
    let present = r
        .read_bits(8)
        .map_err(|_| corrupt("payload ends in first frame"))? as u8;
    let marker = read_marker(&mut r).map_err(|_| corrupt("payload ends mid-marker"))?;
    let raw = read_values(&mut r, present)?;
    frames.push(ArchiveFrame {
        time: SimTime::from_micros(header.start_us),
        raw,
        present,
        marker,
    });

    let mut prev_time = header.start_us;
    let mut prev_delta = DEFAULT_DELTA_US;
    let mut prev_present = present;
    for _ in 1..header.frame_count {
        let fast = r
            .read_bit()
            .map_err(|_| corrupt("payload ends between frames"))?;
        let (delta, present, marker) = if fast {
            (prev_delta, prev_present, None)
        } else {
            let delta =
                read_dod(&mut r, prev_delta).map_err(|_| corrupt("payload ends mid-timestamp"))?;
            let delta = delta.ok_or_else(|| corrupt("negative timestamp delta"))?;
            let present = if r
                .read_bit()
                .map_err(|_| corrupt("payload ends mid-present"))?
            {
                r.read_bits(8)
                    .map_err(|_| corrupt("payload ends mid-present"))? as u8
            } else {
                prev_present
            };
            let marker = read_marker(&mut r).map_err(|_| corrupt("payload ends mid-marker"))?;
            (delta, present, marker)
        };
        let time = prev_time
            .checked_add(delta)
            .ok_or_else(|| corrupt("timestamp overflow"))?;
        let raw = read_values(&mut r, present)?;
        frames.push(ArchiveFrame {
            time: SimTime::from_micros(time),
            raw,
            present,
            marker,
        });
        prev_time = time;
        prev_delta = delta;
        prev_present = present;
    }
    Ok(frames)
}

fn read_marker(r: &mut BitReader<'_>) -> Result<Option<char>, crate::bits::BitStreamExhausted> {
    if !r.read_bit()? {
        return Ok(None);
    }
    let code = r.read_bits(CHAR_BITS)? as u32;
    Ok(Some(char::from_u32(code).unwrap_or('?')))
}

/// Reads a delta-of-delta class; `None` when the reconstructed delta
/// would be negative (corrupt data).
fn read_dod(
    r: &mut BitReader<'_>,
    prev_delta: u64,
) -> Result<Option<u64>, crate::bits::BitStreamExhausted> {
    if !r.read_bit()? {
        return Ok(Some(prev_delta));
    }
    let dod = if !r.read_bit()? {
        unzigzag64(r.read_bits(8)?)
    } else if !r.read_bit()? {
        unzigzag64(r.read_bits(16)?)
    } else if !r.read_bit()? {
        unzigzag64(r.read_bits(32)?)
    } else {
        return Ok(Some(r.read_bits(64)?));
    };
    let delta = i128::from(prev_delta) + i128::from(dod);
    Ok(u64::try_from(delta).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady_frames(n: u64) -> Vec<ArchiveFrame> {
        (0..n)
            .map(|i| ArchiveFrame {
                time: SimTime::from_micros(25 + i * 50),
                raw: {
                    let mut raw = [0u16; SENSOR_SLOTS];
                    raw[0] = 580 + (i % 7) as u16;
                    raw[1] = 744;
                    raw
                },
                present: 0b11,
                marker: if i == 100 { Some('k') } else { None },
            })
            .collect()
    }

    fn roundtrip(frames: &[ArchiveFrame]) -> Vec<ArchiveFrame> {
        let watts: Vec<f64> = frames.iter().map(|_| 0.0).collect();
        let bytes = build_segment(0, frames, &watts);
        let header = SegmentHeader::parse(&bytes, 0).unwrap();
        let payload_at = SEGMENT_HEADER_SIZE
            + header.summary_count as usize * SUMMARY_WIRE_SIZE
            + header.marker_count as usize * MARKER_WIRE_SIZE;
        decode_payload(
            &header,
            &bytes[payload_at..payload_at + header.payload_len as usize],
            0,
        )
        .unwrap()
    }

    #[test]
    fn steady_stream_round_trips() {
        let frames = steady_frames(2500);
        assert_eq!(roundtrip(&frames), frames);
    }

    #[test]
    fn steady_stream_compresses_hard() {
        let frames = steady_frames(20_000);
        let watts: Vec<f64> = frames.iter().map(|_| 24.0).collect();
        let bytes = build_segment(0, &frames, &watts);
        // Wire cost: 3 packets × 2 bytes per frame.
        let wire = frames.len() * 6;
        assert!(
            bytes.len() * 4 < wire,
            "segment {} bytes vs wire {wire}",
            bytes.len()
        );
    }

    #[test]
    fn irregular_times_presence_and_markers_round_trip() {
        let mut frames = steady_frames(50);
        frames[7].present = 0b0000_1111;
        frames[7].raw[2] = 1023;
        frames[7].raw[3] = 0;
        frames[20].time = SimTime::from_micros(20_000_000); // long pause
        for f in frames.iter_mut().skip(21) {
            f.time = SimTime::from_micros(20_000_000 + 50 * (f.time.as_micros() / 50));
        }
        frames[21].marker = Some('é');
        frames[49].marker = Some('?');
        assert_eq!(roundtrip(&frames), frames);
    }

    #[test]
    fn empty_presence_frames_round_trip() {
        let mut frames = steady_frames(10);
        for f in &mut frames {
            f.present = 0;
            f.raw = [0; SENSOR_SLOTS];
        }
        assert_eq!(roundtrip(&frames), frames);
    }

    #[test]
    fn summaries_cover_blocks() {
        let frames = steady_frames(2500);
        let watts: Vec<f64> = (0..frames.len()).map(|i| 10.0 + (i % 3) as f64).collect();
        let summaries = build_summaries(&frames, &watts);
        assert_eq!(summaries.len(), 3);
        assert_eq!(summaries[0].count, 1000);
        assert_eq!(summaries[2].count, 500);
        let total: f64 = summaries.iter().map(|s| s.sum_w).sum();
        let direct: f64 = watts.iter().sum();
        assert!((total - direct).abs() < 1e-9);
        assert_eq!(summaries[0].min_w, 10.0);
        assert_eq!(summaries[0].max_w, 12.0);
    }

    #[test]
    fn marker_table_matches_payload_markers() {
        let frames = steady_frames(300);
        let watts = vec![0.0; frames.len()];
        let bytes = build_segment(3, &frames, &watts);
        let header = SegmentHeader::parse(&bytes, 0).unwrap();
        assert_eq!(header.marker_count, 1);
        let markers_at = SEGMENT_HEADER_SIZE + header.summary_count as usize * SUMMARY_WIRE_SIZE;
        let markers = parse_markers(&bytes[markers_at..], header.marker_count as usize);
        assert_eq!(markers, vec![(25 + 100 * 50, 'k')]);
    }

    #[test]
    fn truncated_payload_is_detected() {
        let frames = steady_frames(100);
        let watts = vec![0.0; frames.len()];
        let bytes = build_segment(0, &frames, &watts);
        let header = SegmentHeader::parse(&bytes, 0).unwrap();
        let payload_at = SEGMENT_HEADER_SIZE
            + header.summary_count as usize * SUMMARY_WIRE_SIZE
            + header.marker_count as usize * MARKER_WIRE_SIZE;
        let short = &bytes[payload_at..payload_at + header.payload_len as usize / 2];
        assert!(decode_payload(&header, short, 0).is_err());
    }
}
