//! Bit-level primitives for the segment payload codec: an LSB-first
//! bit stream, zigzag signed↔unsigned mapping, and Rice coding with an
//! escape for outliers.
//!
//! Bit order is LSB-first within each byte: the first bit written
//! lands in bit 0 of byte 0. Multi-bit fields are written least
//! significant bit first, so writer and reader agree without any
//! byte-order bookkeeping.

/// Number of unary `1` bits after which a Rice codeword escapes to a
/// fixed-width raw value (keeps pathological deltas bounded).
pub const RICE_ESCAPE_Q: u32 = 16;

/// Width of the escaped raw value: zigzagged 10-bit deltas span
/// `0..=2046`, which fits in 11 bits.
pub const RICE_ESCAPE_BITS: u8 = 11;

/// Maps a signed value onto the non-negative integers with small
/// magnitudes first: `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`.
#[must_use]
pub fn zigzag64(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag64`].
#[must_use]
pub fn unzigzag64(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// An append-only LSB-first bit stream.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits already used in the final byte of `out` (0 when byte-aligned).
    used: u8,
}

impl BitWriter {
    /// An empty stream.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.out.push(0);
        }
        if bit {
            let last = self.out.last_mut().expect("pushed above");
            *last |= 1 << self.used;
        }
        self.used = (self.used + 1) % 8;
    }

    /// Appends the `n` least significant bits of `value`, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn push_bits(&mut self, value: u64, n: u8) {
        assert!(n <= 64, "at most 64 bits per field");
        for i in 0..n {
            self.push_bit(value >> i & 1 == 1);
        }
    }

    /// Appends `count` one-bits followed by a terminating zero
    /// (classic unary).
    pub fn push_unary(&mut self, count: u32) {
        for _ in 0..count {
            self.push_bit(true);
        }
        self.push_bit(false);
    }

    /// Rice-codes `value` with parameter `k`. Values whose quotient
    /// reaches [`RICE_ESCAPE_Q`] are written as the escape marker
    /// followed by the raw [`RICE_ESCAPE_BITS`]-bit value.
    pub fn push_rice(&mut self, value: u32, k: u8) {
        let q = value >> k;
        if q >= RICE_ESCAPE_Q {
            for _ in 0..RICE_ESCAPE_Q {
                self.push_bit(true);
            }
            self.push_bits(u64::from(value), RICE_ESCAPE_BITS);
        } else {
            self.push_unary(q);
            self.push_bits(u64::from(value) & ((1 << k) - 1), k);
        }
    }

    /// Number of bits a Rice codeword for `value` at parameter `k`
    /// would occupy (used to pick `k` exactly).
    #[must_use]
    pub fn rice_cost(value: u32, k: u8) -> u32 {
        let q = value >> k;
        if q >= RICE_ESCAPE_Q {
            RICE_ESCAPE_Q + u32::from(RICE_ESCAPE_BITS)
        } else {
            q + 1 + u32::from(k)
        }
    }

    /// Finishes the stream, zero-padding the final partial byte.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        self.out
    }

    /// Bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        match self.used {
            0 => self.out.len() * 8,
            used => (self.out.len() - 1) * 8 + used as usize,
        }
    }
}

/// Reader over a [`BitWriter`] stream. Running off the end is an
/// error (torn payloads must not decode silently).
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// The payload bit stream ended before the decoder was done — the
/// segment is corrupt (CRC should have caught it first).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitStreamExhausted;

impl<'a> BitReader<'a> {
    /// A reader over `bytes`, starting at bit 0 of byte 0.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// [`BitStreamExhausted`] at end of input.
    pub fn read_bit(&mut self) -> Result<bool, BitStreamExhausted> {
        let byte = self.bytes.get(self.pos / 8).ok_or(BitStreamExhausted)?;
        let bit = byte >> (self.pos % 8) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits written by [`BitWriter::push_bits`].
    ///
    /// # Errors
    ///
    /// [`BitStreamExhausted`] at end of input.
    pub fn read_bits(&mut self, n: u8) -> Result<u64, BitStreamExhausted> {
        let mut value = 0u64;
        for i in 0..n {
            if self.read_bit()? {
                value |= 1 << i;
            }
        }
        Ok(value)
    }

    /// Reads a Rice codeword written with parameter `k`.
    ///
    /// # Errors
    ///
    /// [`BitStreamExhausted`] at end of input.
    pub fn read_rice(&mut self, k: u8) -> Result<u32, BitStreamExhausted> {
        let mut q = 0u32;
        while q < RICE_ESCAPE_Q {
            if !self.read_bit()? {
                let r = self.read_bits(k)? as u32;
                return Ok((q << k) | r);
            }
            q += 1;
        }
        Ok(self.read_bits(RICE_ESCAPE_BITS)? as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips() {
        for v in [-5i64, -1, 0, 1, 2, 1023, -1023, i64::MIN / 2, i64::MAX / 2] {
            assert_eq!(unzigzag64(zigzag64(v)), v, "{v}");
        }
        assert_eq!(zigzag64(0), 0);
        assert_eq!(zigzag64(-1), 1);
        assert_eq!(zigzag64(1), 2);
    }

    #[test]
    fn bits_round_trip() {
        let mut w = BitWriter::new();
        w.push_bit(true);
        w.push_bits(0b1011_0010, 8);
        w.push_bits(0x3FF, 10);
        w.push_unary(5);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(8).unwrap(), 0b1011_0010);
        assert_eq!(r.read_bits(10).unwrap(), 0x3FF);
        for _ in 0..5 {
            assert!(r.read_bit().unwrap());
        }
        assert!(!r.read_bit().unwrap());
    }

    #[test]
    fn rice_round_trips_all_ten_bit_deltas() {
        for k in 0..=10u8 {
            let mut w = BitWriter::new();
            for v in 0..=2046u32 {
                w.push_rice(v, k);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for v in 0..=2046u32 {
                assert_eq!(r.read_rice(k).unwrap(), v, "k={k} v={v}");
            }
        }
    }

    #[test]
    fn rice_cost_matches_written_bits() {
        for k in [0u8, 2, 5, 10] {
            for v in [0u32, 1, 7, 100, 2046] {
                let mut w = BitWriter::new();
                w.push_rice(v, k);
                assert_eq!(w.bit_len() as u32, BitWriter::rice_cost(v, k));
            }
        }
    }

    #[test]
    fn exhausted_stream_is_an_error() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bit(), Err(BitStreamExhausted));
    }
}
