//! The `.ps3a` on-disk format: constants, the file header, and the
//! error type shared by every layer of the crate.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ file header: magic "PS3ARCH1" · version · 8 sensor configs   │
//! │              · header CRC-32                                 │
//! ├──────────────────────────────────────────────────────────────┤
//! │ segment 0: header · summary blocks · marker table ·          │
//! │            compressed payload · CRC-32 · seal "PS3e"         │
//! ├──────────────────────────────────────────────────────────────┤
//! │ segment 1: …                                                 │
//! ├──────────────────────────────────────────────────────────────┤
//! │ (possibly a torn tail after a crash — ignored on open)       │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Everything before a segment's trailing seal word is covered by its
//! CRC, so any prefix of the file that ends in a sealed segment is a
//! valid archive: appending is crash-safe by construction and a kill
//! mid-write loses at most the unsealed tail.

use core::fmt;
use std::error::Error;
use std::io;

use ps3_firmware::{SensorConfig, CONFIG_WIRE_SIZE, SENSOR_SLOTS};

use crate::crc::crc32;

/// File magic, first 8 bytes of every archive.
pub const FILE_MAGIC: [u8; 8] = *b"PS3ARCH1";

/// Format version written by this crate.
pub const FORMAT_VERSION: u32 = 1;

/// Magic opening every segment header ("PS3s").
pub const SEGMENT_MAGIC: u32 = u32::from_le_bytes(*b"PS3s");

/// Seal word closing every segment ("PS3e"); a segment without it is
/// an unsealed tail.
pub const SEAL_MAGIC: u32 = u32::from_le_bytes(*b"PS3e");

/// Frames per pre-aggregated summary block (50 ms at 20 kHz).
pub const SUMMARY_FRAMES: usize = 1000;

/// Default frames per segment (1 s at 20 kHz).
pub const DEFAULT_SEGMENT_FRAMES: usize = 20_000;

/// Size of the fixed portion of a segment header, bytes.
pub const SEGMENT_HEADER_SIZE: usize = 4 + 4 + 4 + 4 + 4 + 4 + 8 + 8 + 4;

/// Size of one summary block on disk, bytes.
pub const SUMMARY_WIRE_SIZE: usize = 4 + 8 + 8 + 6 * 8;

/// Size of one marker-table entry on disk, bytes.
pub const MARKER_WIRE_SIZE: usize = 8 + 4;

/// Size of the file header on disk, bytes.
pub const FILE_HEADER_SIZE: usize = 8 + 4 + SENSOR_SLOTS * CONFIG_WIRE_SIZE + 4;

/// Segment CRC + seal word, bytes.
pub const SEGMENT_TRAILER_SIZE: usize = 4 + 4;

/// Errors from archive I/O, decoding, and queries.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArchiveError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// Structural damage at a byte offset: bad magic, CRC mismatch,
    /// truncated or undecodable content. `what` names the failure.
    Corrupt {
        /// Byte offset of the damaged structure.
        offset: u64,
        /// Human-readable description.
        what: String,
    },
    /// The file is not a PowerSensor3 archive (wrong magic/version).
    NotAnArchive,
    /// A query referenced a marker label the archive does not contain.
    MarkerNotFound(char),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "archive I/O error: {e}"),
            ArchiveError::Corrupt { offset, what } => {
                write!(f, "archive corrupt at byte {offset}: {what}")
            }
            ArchiveError::NotAnArchive => write!(f, "not a PowerSensor3 archive"),
            ArchiveError::MarkerNotFound(label) => {
                write!(f, "marker '{label}' not found in archive")
            }
        }
    }
}

impl Error for ArchiveError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArchiveError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArchiveError {
    fn from(e: io::Error) -> Self {
        ArchiveError::Io(e)
    }
}

/// Encodes the file header: magic, version, the eight sensor-slot
/// configuration records (wire format shared with the device EEPROM),
/// and a CRC over all of it.
#[must_use]
pub fn encode_file_header(configs: &[SensorConfig; SENSOR_SLOTS]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FILE_HEADER_SIZE);
    out.extend_from_slice(&FILE_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    for cfg in configs {
        out.extend_from_slice(&cfg.to_wire());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    debug_assert_eq!(out.len(), FILE_HEADER_SIZE);
    out
}

/// Decodes and validates a file header.
///
/// # Errors
///
/// [`ArchiveError::NotAnArchive`] on wrong magic or version,
/// [`ArchiveError::Corrupt`] on a short header, bad CRC, or an
/// undecodable configuration record.
pub fn decode_file_header(bytes: &[u8]) -> Result<[SensorConfig; SENSOR_SLOTS], ArchiveError> {
    if bytes.len() < FILE_HEADER_SIZE {
        return Err(ArchiveError::Corrupt {
            offset: 0,
            what: format!(
                "file header truncated ({} of {FILE_HEADER_SIZE} bytes)",
                bytes.len()
            ),
        });
    }
    let header = &bytes[..FILE_HEADER_SIZE];
    if header[..8] != FILE_MAGIC {
        return Err(ArchiveError::NotAnArchive);
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(ArchiveError::NotAnArchive);
    }
    let body_len = FILE_HEADER_SIZE - 4;
    let stored = u32::from_le_bytes(header[body_len..].try_into().expect("4 bytes"));
    if crc32(&header[..body_len]) != stored {
        return Err(ArchiveError::Corrupt {
            offset: 0,
            what: "file header CRC mismatch".into(),
        });
    }
    let mut configs: [SensorConfig; SENSOR_SLOTS] =
        core::array::from_fn(|_| SensorConfig::unpopulated());
    for (slot, cfg) in configs.iter_mut().enumerate() {
        let at = 12 + slot * CONFIG_WIRE_SIZE;
        let record: [u8; CONFIG_WIRE_SIZE] = header[at..at + CONFIG_WIRE_SIZE]
            .try_into()
            .expect("sized above");
        *cfg = SensorConfig::from_wire(&record).map_err(|e| ArchiveError::Corrupt {
            offset: at as u64,
            what: format!("bad sensor config record: {e}"),
        })?;
    }
    Ok(configs)
}

/// Reads a little-endian `u32` at `at` (caller guarantees bounds).
#[must_use]
pub fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

/// Reads a little-endian `u64` at `at` (caller guarantees bounds).
#[must_use]
pub fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// Reads a little-endian `f64` at `at` (caller guarantees bounds).
#[must_use]
pub fn read_f64(bytes: &[u8], at: usize) -> f64 {
    f64::from_bits(read_u64(bytes, at))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configs() -> [SensorConfig; SENSOR_SLOTS] {
        let mut c: [SensorConfig; SENSOR_SLOTS] =
            core::array::from_fn(|_| SensorConfig::unpopulated());
        c[0] = SensorConfig::new("I0", 3.3, 0.12, true);
        c[1] = SensorConfig::new("U0", 3.3, 5.0, true);
        c
    }

    #[test]
    fn file_header_round_trips() {
        let header = encode_file_header(&configs());
        assert_eq!(header.len(), FILE_HEADER_SIZE);
        let decoded = decode_file_header(&header).unwrap();
        assert_eq!(decoded[0].name, "I0");
        assert!((decoded[1].gain - 5.0).abs() < 1e-6);
        assert!(decoded[0].enabled && !decoded[2].enabled);
    }

    #[test]
    fn header_crc_detects_damage() {
        let mut header = encode_file_header(&configs());
        header[20] ^= 1;
        assert!(matches!(
            decode_file_header(&header),
            Err(ArchiveError::Corrupt { .. })
        ));
    }

    #[test]
    fn wrong_magic_is_not_an_archive() {
        let mut header = encode_file_header(&configs());
        header[0] = b'X';
        assert!(matches!(
            decode_file_header(&header),
            Err(ArchiveError::NotAnArchive)
        ));
    }
}
