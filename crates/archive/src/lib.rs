//! `ps3-archive` — an append-only, crash-safe, compressed on-disk
//! store for PowerSensor3 20 kHz power traces, plus an indexed query
//! engine over it.
//!
//! The live continuous mode (§III-C of the paper) produces a
//! [`Trace`](ps3_analysis::Trace) in memory and a text dump on disk —
//! fine for one run, unworkable for hours of 20 kHz data. This crate
//! adds the durable form:
//!
//! * **`.ps3a` archive** — a file header carrying the sensor
//!   configuration, followed by sealed segments of delta-of-delta
//!   timestamps and Rice-coded 10-bit sample deltas, each closed by a
//!   CRC-32 and a seal word. Any prefix ending in a sealed segment is
//!   a valid archive, so a crash mid-write loses at most the unsealed
//!   tail ([`format`] has the layout).
//! * **`.ps3x` sidecar index** — derived data mapping time ranges and
//!   markers to segment offsets; rebuilt by scan whenever it is
//!   missing, stale, or damaged.
//! * **Summary blocks** — per ~50 ms of frames, pre-aggregated
//!   count/sum/min/max/energy, so [`Archive::stats`],
//!   [`Archive::energy`], [`Archive::energy_between`] and coarse
//!   [`Archive::downsample`] reads run without decompressing covered
//!   blocks — and still agree with a full decode to the last bit.
//!
//! Reads are *exact*: the archive stores raw ADC codes and re-derives
//! watts with the stored configuration using the live acquisition
//! path's own arithmetic, so [`Archive::read_range`] returns a trace
//! byte-identical to what continuous mode recorded, markers included.
//!
//! # Examples
//!
//! Record frames and query them back:
//!
//! ```
//! use ps3_archive::{Archive, ArchiveFrame, SegmentWriter};
//! use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
//! use ps3_units::SimTime;
//!
//! let mut configs: [SensorConfig; SENSOR_SLOTS] =
//!     core::array::from_fn(|_| SensorConfig::unpopulated());
//! configs[0] = SensorConfig::new("I0", 3.3, 0.105, true);
//! configs[1] = SensorConfig::new("U0", 3.3, 0.2171, true);
//!
//! let dir = std::env::temp_dir().join("ps3-archive-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join(format!("doc-{}.ps3a", std::process::id()));
//! let mut writer = SegmentWriter::create(&path, configs).unwrap();
//! for i in 0..1000u64 {
//!     let mut raw = [0u16; SENSOR_SLOTS];
//!     raw[0] = 600;
//!     raw[1] = 700;
//!     writer
//!         .push(ArchiveFrame {
//!             time: SimTime::from_micros(25 + i * 50),
//!             raw,
//!             present: 0b11,
//!             marker: None,
//!         })
//!         .unwrap();
//! }
//! writer.finish().unwrap();
//!
//! let archive = Archive::open(&path).unwrap();
//! assert_eq!(archive.frames(), 1000);
//! let trace = archive.read_all().unwrap();
//! assert_eq!(trace.len(), 1000);
//! ```

#![forbid(unsafe_code)]

mod archive;
pub mod bits;
mod crc;
pub mod format;
mod index;
mod meter;
mod segment;
mod writer;

pub use archive::{Archive, RangeStats, RecoveryReport, SegmentMeta, VerifyReport};
pub use crc::{crc32, Crc32};
pub use format::ArchiveError;
pub use index::{index_path_for, ArchiveIndex, IndexSegment};
pub use meter::ArchiveMeter;
pub use segment::{
    build_segment, build_summaries, frame_total, parse_summaries, summarize_block, ArchiveFrame,
    SegmentHeader, SummaryBlock,
};
pub use writer::{
    stats_path_for, ArchiveWriter, ArchiveWriterOptions, Maintenance, SegmentWriter, WriterStats,
};
