//! PMT integration: replaying an archive through the
//! [`PowerMeter`](ps3_pmt::PowerMeter) interface, so archived captures
//! drop into any harness built on [`ps3_pmt::Monitor`].

use std::sync::Arc;

use ps3_pmt::PowerMeter;
use ps3_units::{SimDuration, SimTime, Watts};

use crate::archive::Archive;
use crate::segment::frame_total;

/// A [`PowerMeter`] backed by an archived capture: polling it at `now`
/// returns the power of the latest archived frame at or before `now`
/// (hold-last semantics, like every hardware meter in `ps3-pmt`).
/// Decoded segments are cached one at a time, so a forward-moving
/// monitor decodes each segment once.
pub struct ArchiveMeter {
    archive: Arc<Archive>,
    /// `(segment index, per-frame (time µs, watts))` of the segment
    /// decoded most recently.
    cached: Option<(usize, Vec<(u64, f64)>)>,
    held: Watts,
}

impl ArchiveMeter {
    /// Wraps an open archive.
    #[must_use]
    pub fn new(archive: Arc<Archive>) -> Self {
        Self {
            archive,
            cached: None,
            held: Watts::zero(),
        }
    }

    /// The watts of the latest archived frame at or before `now`, or
    /// `None` when `now` precedes the archive (or decoding fails —
    /// a meter poll has no error channel, so damage reads as a hold).
    fn lookup(&mut self, now: SimTime) -> Option<f64> {
        let now_us = now.as_micros();
        let segments = self.archive.segments();
        // Last segment starting at or before `now`.
        let si = segments
            .partition_point(|s| s.header.start_us <= now_us)
            .checked_sub(1)?;
        let frames = self.frames_of(si)?;
        let fi = frames.partition_point(|&(t, _)| t <= now_us);
        match fi.checked_sub(1) {
            Some(fi) => Some(frames[fi].1),
            // `now` falls before this segment's first frame (can only
            // happen through time gaps): use the previous segment's
            // last frame.
            None => si
                .checked_sub(1)
                .and_then(|prev| self.frames_of(prev)?.last().map(|&(_, w)| w)),
        }
    }

    /// The decoded `(time µs, watts)` list of segment `si`, via the
    /// one-segment cache.
    fn frames_of(&mut self, si: usize) -> Option<&Vec<(u64, f64)>> {
        if self.cached.as_ref().is_none_or(|(i, _)| *i != si) {
            let meta = &self.archive.segments()[si];
            let frames = self.archive.decode_segment_frames(meta).ok()?;
            let configs = self.archive.configs().clone();
            let adc = *self.archive.adc();
            let decoded = frames
                .iter()
                .map(|f| (f.time.as_micros(), frame_total(&configs, &adc, f).value()))
                .collect();
            self.cached = Some((si, decoded));
        }
        self.cached.as_ref().map(|(_, f)| f)
    }
}

impl PowerMeter for ArchiveMeter {
    fn name(&self) -> &str {
        "PowerSensor3 archive"
    }

    fn read_watts(&mut self, now: SimTime) -> Watts {
        if let Some(w) = self.lookup(now) {
            self.held = Watts::new(w);
        }
        self.held
    }

    fn native_interval(&self) -> SimDuration {
        ps3_firmware::FRAME_INTERVAL
    }
}

impl std::fmt::Debug for ArchiveMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArchiveMeter")
            .field("path", &self.archive.path())
            .finish_non_exhaustive()
    }
}
