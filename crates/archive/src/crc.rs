//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), hand-rolled because
//! the workspace vendors no checksum crate. Table-driven, one table
//! built at first use.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// A streaming CRC-32 accumulator.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ u32::from(b)) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The final checksum value.
    #[must_use]
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"PowerSensor3 archive";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 64];
        data[10] = 0x42;
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), clean, "flip at {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
