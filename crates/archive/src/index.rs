//! The `.ps3x` sidecar index: time ranges and marker labels mapped to
//! segment offsets, so `Archive::open` can seek straight to the data
//! it needs without scanning the archive file.
//!
//! The index is pure derived data. It records `data_len`, the length
//! of the sealed prefix of the `.ps3a` file it describes; on open it
//! is trusted only when its CRC checks out *and* `data_len` is
//! consistent with the archive on disk. Otherwise — stale after a
//! crash, deleted, damaged — the reader falls back to a sequential
//! scan of the archive and rebuilds it. The writer rewrites the whole
//! sidecar after each sealed segment, *after* flushing the segment
//! itself, so the index never describes data that might not survive a
//! crash.

use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::format::{read_u32, read_u64, ArchiveError};

/// Sidecar magic, first 8 bytes.
pub const INDEX_MAGIC: [u8; 8] = *b"PS3XIDX1";

/// The sidecar path for an archive: `capture.ps3a` → `capture.ps3x`;
/// any other name gets `.ps3x` appended.
#[must_use]
pub fn index_path_for(archive: &Path) -> PathBuf {
    if archive.extension().is_some_and(|e| e == "ps3a") {
        archive.with_extension("ps3x")
    } else {
        let mut name = archive.as_os_str().to_os_string();
        name.push(".ps3x");
        PathBuf::from(name)
    }
}

const INDEX_HEADER_SIZE: usize = 8 + 8 + 4 + 4;
const SEGMENT_RECORD_SIZE: usize = 8 + 4 + 4 + 8 + 8;
const MARKER_RECORD_SIZE: usize = 8 + 4;

/// One segment's entry in the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexSegment {
    /// Byte offset of the segment header in the `.ps3a` file.
    pub offset: u64,
    /// Segment sequence number.
    pub seq: u32,
    /// Frames in the segment.
    pub frame_count: u32,
    /// Timestamp of the segment's first frame (µs).
    pub start_us: u64,
    /// Timestamp of the segment's last frame (µs).
    pub end_us: u64,
}

/// The in-memory form of the sidecar index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArchiveIndex {
    /// Length of the sealed `.ps3a` prefix this index describes.
    pub data_len: u64,
    /// Per-segment records, in file order.
    pub segments: Vec<IndexSegment>,
    /// Every marker in the archive: `(time µs, label)`, in time order.
    pub markers: Vec<(u64, char)>,
}

impl ArchiveIndex {
    /// Serialises the index to its sidecar byte form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            INDEX_HEADER_SIZE
                + self.segments.len() * SEGMENT_RECORD_SIZE
                + self.markers.len() * MARKER_RECORD_SIZE
                + 4,
        );
        out.extend_from_slice(&INDEX_MAGIC);
        out.extend_from_slice(&self.data_len.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.markers.len() as u32).to_le_bytes());
        for seg in &self.segments {
            out.extend_from_slice(&seg.offset.to_le_bytes());
            out.extend_from_slice(&seg.seq.to_le_bytes());
            out.extend_from_slice(&seg.frame_count.to_le_bytes());
            out.extend_from_slice(&seg.start_us.to_le_bytes());
            out.extend_from_slice(&seg.end_us.to_le_bytes());
        }
        for &(time_us, label) in &self.markers {
            out.extend_from_slice(&time_us.to_le_bytes());
            out.extend_from_slice(&(label as u32).to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a sidecar file.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Corrupt`] on wrong magic, truncation, or CRC
    /// mismatch. Callers treat any error as "no usable index" and
    /// rebuild from the archive.
    pub fn decode(bytes: &[u8]) -> Result<Self, ArchiveError> {
        let corrupt = |what: &str| ArchiveError::Corrupt {
            offset: 0,
            what: format!("index {what}"),
        };
        if bytes.len() < INDEX_HEADER_SIZE + 4 {
            return Err(corrupt("truncated"));
        }
        if bytes[..8] != INDEX_MAGIC {
            return Err(corrupt("magic mismatch"));
        }
        let body_len = bytes.len() - 4;
        let stored = read_u32(bytes, body_len);
        if crc32(&bytes[..body_len]) != stored {
            return Err(corrupt("CRC mismatch"));
        }
        let data_len = read_u64(bytes, 8);
        let seg_count = read_u32(bytes, 16) as usize;
        let marker_count = read_u32(bytes, 20) as usize;
        let need = INDEX_HEADER_SIZE
            + seg_count * SEGMENT_RECORD_SIZE
            + marker_count * MARKER_RECORD_SIZE
            + 4;
        if bytes.len() != need {
            return Err(corrupt("length inconsistent with counts"));
        }
        let mut segments = Vec::with_capacity(seg_count);
        let mut at = INDEX_HEADER_SIZE;
        for _ in 0..seg_count {
            segments.push(IndexSegment {
                offset: read_u64(bytes, at),
                seq: read_u32(bytes, at + 8),
                frame_count: read_u32(bytes, at + 12),
                start_us: read_u64(bytes, at + 16),
                end_us: read_u64(bytes, at + 24),
            });
            at += SEGMENT_RECORD_SIZE;
        }
        let mut markers = Vec::with_capacity(marker_count);
        for _ in 0..marker_count {
            let label = char::from_u32(read_u32(bytes, at + 8)).unwrap_or('?');
            markers.push((read_u64(bytes, at), label));
            at += MARKER_RECORD_SIZE;
        }
        Ok(Self {
            data_len,
            segments,
            markers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ArchiveIndex {
        ArchiveIndex {
            data_len: 123_456,
            segments: vec![
                IndexSegment {
                    offset: 224,
                    seq: 0,
                    frame_count: 20_000,
                    start_us: 25,
                    end_us: 999_975,
                },
                IndexSegment {
                    offset: 40_000,
                    seq: 1,
                    frame_count: 1_500,
                    start_us: 1_000_025,
                    end_us: 1_074_975,
                },
            ],
            markers: vec![(500_025, 'k'), (1_000_125, 'é')],
        }
    }

    #[test]
    fn index_round_trips() {
        let idx = sample();
        assert_eq!(ArchiveIndex::decode(&idx.encode()).unwrap(), idx);
    }

    #[test]
    fn empty_index_round_trips() {
        let idx = ArchiveIndex::default();
        assert_eq!(ArchiveIndex::decode(&idx.encode()).unwrap(), idx);
    }

    #[test]
    fn any_single_bit_flip_is_rejected() {
        let bytes = sample().encode();
        for byte in 0..bytes.len() {
            let mut dam = bytes.clone();
            dam[byte] ^= 1;
            assert!(
                ArchiveIndex::decode(&dam).is_err(),
                "flip at byte {byte} accepted"
            );
        }
    }

    #[test]
    fn index_path_swaps_or_appends_extension() {
        assert_eq!(
            index_path_for(Path::new("/tmp/cap.ps3a")),
            PathBuf::from("/tmp/cap.ps3x")
        );
        assert_eq!(
            index_path_for(Path::new("/tmp/capture")),
            PathBuf::from("/tmp/capture.ps3x")
        );
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(ArchiveIndex::decode(&bytes[..len]).is_err(), "len {len}");
        }
    }
}
