//! Archive writers: a synchronous segmented file writer and a
//! background writer with a bounded queue that taps a live
//! [`PowerSensor`](ps3_core::PowerSensor) frame sink.
//!
//! Crash-safety discipline (see the crate docs): a segment is built in
//! memory, appended in one write, and flushed *before* the sidecar
//! index is rewritten to cover it. A crash at any point leaves a file
//! whose sealed prefix is a complete, valid archive.

use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use ps3_core::{FrameRecord, PowerSensor};
use ps3_firmware::{SensorConfig, SENSOR_SLOTS};
use ps3_sensors::AdcSpec;

use crate::format::{encode_file_header, ArchiveError, DEFAULT_SEGMENT_FRAMES, FILE_HEADER_SIZE};
use crate::index::{index_path_for, ArchiveIndex, IndexSegment};
use crate::segment::{build_segment, frame_total, ArchiveFrame};

/// Counters reported when a writer finishes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Frames written into sealed segments.
    pub frames: u64,
    /// Sealed segments.
    pub segments: u64,
    /// Total archive size on disk, header included (bytes).
    pub bytes: u64,
    /// Frames dropped because the background queue was full (always 0
    /// for the synchronous writer).
    pub dropped: u64,
}

impl WriterStats {
    /// Sidecar text form: `key=value` lines.
    #[must_use]
    pub fn encode_text(&self) -> String {
        format!(
            "frames={}\nsegments={}\nbytes={}\ndropped={}\n",
            self.frames, self.segments, self.bytes, self.dropped
        )
    }

    /// Parses [`WriterStats::encode_text`] output; `None` on any
    /// malformed or missing field.
    #[must_use]
    pub fn decode_text(text: &str) -> Option<Self> {
        let mut stats = Self::default();
        let mut seen = 0u8;
        for line in text.lines() {
            let (key, value) = line.split_once('=')?;
            let value: u64 = value.trim().parse().ok()?;
            match key {
                "frames" => (stats.frames, seen) = (value, seen | 1),
                "segments" => (stats.segments, seen) = (value, seen | 2),
                "bytes" => (stats.bytes, seen) = (value, seen | 4),
                "dropped" => (stats.dropped, seen) = (value, seen | 8),
                _ => {} // forward compatibility: ignore unknown keys
            }
        }
        (seen == 0b1111).then_some(stats)
    }

    /// Loads the stats sidecar written when the archive's writer
    /// finished. `None` when absent (the capture crashed before
    /// finishing, or predates stats sidecars) or unparsable.
    #[must_use]
    pub fn load_for(archive: &Path) -> Option<Self> {
        let text = std::fs::read_to_string(stats_path_for(archive)).ok()?;
        Self::decode_text(&text)
    }
}

/// Sidecar path holding a finished writer's [`WriterStats`]
/// (`trace.ps3a` → `trace.ps3s`), mirroring [`index_path_for`].
#[must_use]
pub fn stats_path_for(archive: &Path) -> PathBuf {
    if archive.extension().is_some_and(|e| e == "ps3a") {
        archive.with_extension("ps3s")
    } else {
        let mut name = archive.as_os_str().to_os_string();
        name.push(".ps3s");
        PathBuf::from(name)
    }
}

/// A per-seal maintenance hook (see [`SegmentWriter::set_maintenance`]).
pub type Maintenance = Box<dyn FnMut(&mut SegmentWriter) -> Result<(), ArchiveError> + Send>;

/// Synchronous archive writer: frames in, sealed segments out.
pub struct SegmentWriter {
    path: PathBuf,
    file: File,
    index_path: PathBuf,
    stats_path: PathBuf,
    configs: [SensorConfig; SENSOR_SLOTS],
    adc: AdcSpec,
    index: ArchiveIndex,
    pending: Vec<ArchiveFrame>,
    pending_watts: Vec<f64>,
    segment_frames: usize,
    next_seq: u32,
    stats: WriterStats,
    maintenance: Option<Maintenance>,
}

impl std::fmt::Debug for SegmentWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentWriter")
            .field("path", &self.path)
            .field("next_seq", &self.next_seq)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl SegmentWriter {
    /// Creates (truncating) an archive at `path` with the default
    /// segment size of [`DEFAULT_SEGMENT_FRAMES`] frames.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(
        path: impl AsRef<Path>,
        configs: [SensorConfig; SENSOR_SLOTS],
    ) -> Result<Self, ArchiveError> {
        Self::create_with(path, configs, DEFAULT_SEGMENT_FRAMES)
    }

    /// Like [`SegmentWriter::create`] with an explicit segment size
    /// (frames per sealed segment; smaller segments lose less on a
    /// crash and cost a little compression).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    ///
    /// # Panics
    ///
    /// Panics if `segment_frames` is zero.
    pub fn create_with(
        path: impl AsRef<Path>,
        configs: [SensorConfig; SENSOR_SLOTS],
        segment_frames: usize,
    ) -> Result<Self, ArchiveError> {
        assert!(segment_frames > 0, "segments hold at least one frame");
        let path = path.as_ref();
        let mut file = File::create(path)?;
        file.write_all(&encode_file_header(&configs))?;
        file.sync_data()?;
        // A finished capture leaves a stats sidecar; scrub any stale
        // one now so its presence always means *this* capture finished.
        let stats_path = stats_path_for(path);
        let _ = std::fs::remove_file(&stats_path);
        let writer = Self {
            path: path.to_path_buf(),
            file,
            index_path: index_path_for(path),
            stats_path,
            configs,
            adc: AdcSpec::POWERSENSOR3,
            index: ArchiveIndex {
                data_len: FILE_HEADER_SIZE as u64,
                segments: Vec::new(),
                markers: Vec::new(),
            },
            pending: Vec::with_capacity(segment_frames),
            pending_watts: Vec::with_capacity(segment_frames),
            segment_frames,
            next_seq: 0,
            stats: WriterStats {
                bytes: FILE_HEADER_SIZE as u64,
                ..WriterStats::default()
            },
            maintenance: None,
        };
        writer.rewrite_index();
        Ok(writer)
    }

    /// Installs a maintenance hook that runs after *every* sealed
    /// segment (index already rewritten), on the sealing thread. The
    /// hook layer (e.g. `ps3-tsdb`) uses it for pyramid upkeep,
    /// compaction, and retention; running per seal — not per drained
    /// batch — keeps the on-disk evolution a pure function of the
    /// frame sequence, independent of queue batching.
    pub fn set_maintenance(&mut self, hook: Maintenance) {
        self.maintenance = Some(hook);
    }

    /// The archive file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The in-memory sidecar index covering everything sealed so far.
    #[must_use]
    pub fn index(&self) -> &ArchiveIndex {
        &self.index
    }

    /// Replaces the sealed portion of the archive with the complete,
    /// already-built archive file at `staged` — the adopt half of the
    /// compactor's write-new-then-atomic-rename protocol. The staged
    /// file is flushed, atomically renamed over the live path, and the
    /// writer re-seats its append handle, sequence counter, and index
    /// on the new layout. Pending unsealed frames are untouched and
    /// seal on top of the adopted file. A crash before the rename
    /// leaves the original archive intact; a crash after it leaves the
    /// rewritten one — both valid.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; on error the original file is
    /// still in place (rename either happened or did not).
    pub fn adopt_rewritten(
        &mut self,
        staged: &Path,
        index: ArchiveIndex,
    ) -> Result<(), ArchiveError> {
        OpenOptions::new().write(true).open(staged)?.sync_all()?;
        std::fs::rename(staged, &self.path)?;
        let mut file = OpenOptions::new().write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.next_seq = index.segments.last().map_or(0, |s| s.seq + 1);
        self.stats.bytes = index.data_len;
        self.index = index;
        self.rewrite_index();
        Ok(())
    }

    /// Appends one frame, sealing a segment when the configured size
    /// is reached.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from sealing.
    pub fn push(&mut self, frame: ArchiveFrame) -> Result<(), ArchiveError> {
        let watts = frame_total(&self.configs, &self.adc, &frame).value();
        self.pending.push(frame);
        self.pending_watts.push(watts);
        if self.pending.len() >= self.segment_frames {
            self.seal_segment()?;
        }
        Ok(())
    }

    /// Frames accepted so far (sealed or pending).
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.stats.frames + self.pending.len() as u64
    }

    /// Segments sealed so far.
    #[must_use]
    pub fn segments(&self) -> u64 {
        self.stats.segments
    }

    /// Seals all pending frames and returns the final counters.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish(self) -> Result<WriterStats, ArchiveError> {
        self.finish_with_dropped(0)
    }

    /// [`SegmentWriter::finish`] with an externally tracked drop count
    /// folded into the stats (the background writer's queue drops).
    /// On success, writes the stats sidecar (best effort — the sidecar
    /// is advisory metadata, never worth failing a durable archive
    /// over).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish_with_dropped(mut self, dropped: u64) -> Result<WriterStats, ArchiveError> {
        if !self.pending.is_empty() {
            self.seal_segment()?;
        }
        self.file.sync_all()?;
        self.stats.dropped = dropped;
        let _ = std::fs::write(&self.stats_path, self.stats.encode_text());
        Ok(self.stats)
    }

    fn seal_segment(&mut self) -> Result<(), ArchiveError> {
        let bytes = build_segment(self.next_seq, &self.pending, &self.pending_watts);
        self.file.write_all(&bytes)?;
        self.file.sync_data()?;
        let first = self.pending[0].time.as_micros();
        let last = self.pending[self.pending.len() - 1].time.as_micros();
        self.index.segments.push(IndexSegment {
            offset: self.index.data_len,
            seq: self.next_seq,
            frame_count: self.pending.len() as u32,
            start_us: first,
            end_us: last,
        });
        self.index.markers.extend(
            self.pending
                .iter()
                .filter_map(|f| f.marker.map(|label| (f.time.as_micros(), label))),
        );
        self.index.data_len += bytes.len() as u64;
        self.stats.frames += self.pending.len() as u64;
        self.stats.segments += 1;
        self.stats.bytes = self.index.data_len;
        self.next_seq += 1;
        self.pending.clear();
        self.pending_watts.clear();
        // The index is derived data: written only after the segment is
        // durable, and a torn index write just forces a rescan on open.
        self.rewrite_index();
        // The maintenance hook sees every seal exactly once, so any
        // policy it implements is deterministic in the frame sequence.
        if let Some(mut hook) = self.maintenance.take() {
            let outcome = hook(self);
            self.maintenance = Some(hook);
            outcome?;
        }
        Ok(())
    }

    fn rewrite_index(&self) {
        let _ = std::fs::write(&self.index_path, self.index.encode());
    }
}

/// Options for [`ArchiveWriter::spawn`].
#[derive(Debug, Clone, Copy)]
pub struct ArchiveWriterOptions {
    /// Frames per sealed segment.
    pub segment_frames: usize,
    /// Bounded queue depth in frames; at 20 kHz the default (65536)
    /// buffers ~3 s of backlog before frames are dropped (and counted).
    pub queue_capacity: usize,
}

impl Default for ArchiveWriterOptions {
    fn default() -> Self {
        Self {
            segment_frames: DEFAULT_SEGMENT_FRAMES,
            queue_capacity: 65_536,
        }
    }
}

struct QueueState {
    queue: VecDeque<ArchiveFrame>,
    closed: bool,
}

struct WriterShared {
    state: Mutex<QueueState>,
    cond: Condvar,
    failed: AtomicBool,
    capacity: usize,
    /// Live counters, readable at any time without touching the queue
    /// lock the acquisition path contends on.
    dropped: AtomicU64,
    frames_written: AtomicU64,
    segments_sealed: AtomicU64,
}

/// Background archive writer: a worker thread drains a bounded frame
/// queue into a [`SegmentWriter`], so the 20 kHz acquisition path
/// never blocks on disk I/O. Feed it through [`ArchiveWriter::sink`]
/// (attachable to a live sensor via
/// [`PowerSensor::add_frame_sink`]) and close it with
/// [`ArchiveWriter::finish`].
pub struct ArchiveWriter {
    shared: Arc<WriterShared>,
    worker: Option<JoinHandle<Result<WriterStats, ArchiveError>>>,
}

impl ArchiveWriter {
    /// Creates the archive file and starts the worker thread.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the archive.
    pub fn spawn(
        path: impl AsRef<Path>,
        configs: [SensorConfig; SENSOR_SLOTS],
        options: ArchiveWriterOptions,
    ) -> Result<Self, ArchiveError> {
        Self::spawn_inner(path, configs, options, None)
    }

    /// [`ArchiveWriter::spawn`] with a per-seal maintenance hook
    /// installed on the underlying [`SegmentWriter`] (see
    /// [`SegmentWriter::set_maintenance`]). The hook runs on the
    /// worker thread between seals, so it may rewrite the archive
    /// (compaction, retention) without ever blocking the acquisition
    /// path — producers only touch the bounded queue.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the archive.
    pub fn spawn_with_maintenance(
        path: impl AsRef<Path>,
        configs: [SensorConfig; SENSOR_SLOTS],
        options: ArchiveWriterOptions,
        maintenance: Maintenance,
    ) -> Result<Self, ArchiveError> {
        Self::spawn_inner(path, configs, options, Some(maintenance))
    }

    fn spawn_inner(
        path: impl AsRef<Path>,
        configs: [SensorConfig; SENSOR_SLOTS],
        options: ArchiveWriterOptions,
        maintenance: Option<Maintenance>,
    ) -> Result<Self, ArchiveError> {
        let mut writer = SegmentWriter::create_with(path, configs, options.segment_frames)?;
        if let Some(hook) = maintenance {
            writer.set_maintenance(hook);
        }
        let shared = Arc::new(WriterShared {
            state: Mutex::new(QueueState {
                queue: VecDeque::with_capacity(options.queue_capacity.min(65_536)),
                closed: false,
            }),
            cond: Condvar::new(),
            failed: AtomicBool::new(false),
            capacity: options.queue_capacity.max(1),
            dropped: AtomicU64::new(0),
            frames_written: AtomicU64::new(0),
            segments_sealed: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = thread::Builder::new()
            .name("ps3-archive-writer".into())
            .spawn(move || Self::worker_loop(&worker_shared, writer))
            .map_err(ArchiveError::Io)?;
        Ok(Self {
            shared,
            worker: Some(worker),
        })
    }

    fn worker_loop(
        shared: &WriterShared,
        mut writer: SegmentWriter,
    ) -> Result<WriterStats, ArchiveError> {
        loop {
            let (batch, closed) = {
                let mut st = shared.state.lock();
                while st.queue.is_empty() && !st.closed {
                    shared.cond.wait_for(&mut st, Duration::from_millis(100));
                }
                (st.queue.drain(..).collect::<Vec<_>>(), st.closed)
            };
            if batch.is_empty() && closed {
                break;
            }
            for frame in batch {
                if let Err(e) = writer.push(frame) {
                    // ORDERING: Relaxed — advisory fail-fast flag;
                    // producers only use it to stop enqueueing, the
                    // authoritative error is returned via join.
                    shared.failed.store(true, Ordering::Relaxed);
                    return Err(e);
                }
            }
            // ORDERING: Relaxed — live progress counters for
            // monitoring only; no other memory is published through
            // them.
            shared
                .frames_written
                .store(writer.frames(), Ordering::Relaxed);
            // ORDERING: Relaxed — live progress counter, same
            // as frames_written above.
            shared
                .segments_sealed
                .store(writer.segments(), Ordering::Relaxed);
        }
        // ORDERING: Relaxed — final read after the queue is closed
        // and drained; the close handshake under the state lock
        // already ordered every producer's fetch_add before this.
        let dropped = shared.dropped.load(Ordering::Relaxed);
        match writer.finish_with_dropped(dropped) {
            Ok(stats) => Ok(stats),
            Err(e) => {
                // ORDERING: Relaxed — same advisory flag as above.
                shared.failed.store(true, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Enqueues one frame directly (the sink does the same). Returns
    /// `false` once the writer has failed or been closed.
    pub fn push(&self, frame: ArchiveFrame) -> bool {
        Self::enqueue(&self.shared, frame)
    }

    fn enqueue(shared: &WriterShared, frame: ArchiveFrame) -> bool {
        // ORDERING: Relaxed — advisory: a stale read here only means
        // one extra frame is queued and discarded by the worker.
        if shared.failed.load(Ordering::Relaxed) {
            return false;
        }
        let mut st = shared.state.lock();
        if st.closed {
            return false;
        }
        if st.queue.len() >= shared.capacity {
            // ORDERING: Relaxed — monotonic drop counter; the final
            // value is read only after the close handshake.
            shared.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            st.queue.push_back(frame);
            shared.cond.notify_one();
        }
        true
    }

    /// A frame sink that feeds this writer; pass it to
    /// [`PowerSensor::add_frame_sink`]. The sink detaches itself (by
    /// returning `false`) once the writer fails or is finished.
    pub fn sink(&self) -> impl FnMut(&FrameRecord) -> bool + Send + 'static {
        let shared = Arc::clone(&self.shared);
        move |record: &FrameRecord| {
            Self::enqueue(
                &shared,
                ArchiveFrame {
                    time: record.time,
                    raw: record.raw,
                    present: record.present,
                    marker: record.marker,
                },
            )
        }
    }

    /// Attaches this writer to a live sensor's acquisition path.
    pub fn attach(&self, sensor: &PowerSensor) {
        sensor.add_frame_sink(self.sink());
    }

    /// Frames dropped so far because the queue was full. Live and
    /// lock-free: readable while the capture runs, not just from the
    /// final [`WriterStats`].
    #[must_use]
    pub fn dropped(&self) -> u64 {
        // ORDERING: Relaxed — live monitoring read of a monotonic
        // counter; exactness is only guaranteed after finish().
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Frames the worker has accepted into the archive so far (sealed
    /// or pending in the current segment). Live and lock-free.
    #[must_use]
    pub fn frames_written(&self) -> u64 {
        // ORDERING: Relaxed — live monitoring read, same as dropped().
        self.shared.frames_written.load(Ordering::Relaxed)
    }

    /// Segments sealed on disk so far. Live and lock-free.
    #[must_use]
    pub fn segments_sealed(&self) -> u64 {
        // ORDERING: Relaxed — live monitoring read, same as dropped().
        self.shared.segments_sealed.load(Ordering::Relaxed)
    }

    /// Closes the queue, drains it, seals the tail segment, and
    /// returns the final counters.
    ///
    /// # Errors
    ///
    /// Surfaces any filesystem error the worker hit.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread itself panicked.
    pub fn finish(mut self) -> Result<WriterStats, ArchiveError> {
        self.close();
        let worker = self.worker.take().expect("finish runs once");
        worker.join().expect("archive writer thread panicked")
    }

    fn close(&self) {
        self.shared.state.lock().closed = true;
        self.shared.cond.notify_all();
    }
}

impl Drop for ArchiveWriter {
    fn drop(&mut self) {
        self.close();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for ArchiveWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArchiveWriter")
            .field("dropped", &self.dropped())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_stats_sidecar_roundtrips() {
        let stats = WriterStats {
            frames: 12_345,
            segments: 13,
            bytes: 987_654,
            dropped: 7,
        };
        assert_eq!(WriterStats::decode_text(&stats.encode_text()), Some(stats));
        // Unknown keys are tolerated; missing required keys are not.
        let extended = format!("{}future=1\n", stats.encode_text());
        assert_eq!(WriterStats::decode_text(&extended), Some(stats));
        assert_eq!(WriterStats::decode_text("frames=1\nsegments=2\n"), None);
        assert_eq!(WriterStats::decode_text("frames=x\n"), None);
    }

    #[test]
    fn stats_path_mirrors_index_naming() {
        assert_eq!(
            stats_path_for(Path::new("/x/trace.ps3a")),
            PathBuf::from("/x/trace.ps3s")
        );
        assert_eq!(
            stats_path_for(Path::new("/x/trace")),
            PathBuf::from("/x/trace.ps3s")
        );
    }
}
